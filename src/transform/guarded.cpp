#include "transform/guarded.hpp"

#include <algorithm>

#include "index/incremental.hpp"
#include "support/assert.hpp"
#include "support/strings.hpp"
#include "transform/postcheck.hpp"

namespace coalesce::transform {

using ir::AffineForm;
using ir::ExprRef;
using ir::Loop;
using ir::LoopNest;
using ir::LoopPtr;
using ir::VarId;
using support::i64;

namespace {

/// One analyzed band level.
struct LevelInfo {
  const Loop* loop = nullptr;
  AffineForm lower;        ///< affine in outer band variables
  AffineForm upper;
  bool lower_constant = false;
  bool upper_constant = false;
  i64 min_lower = 0;       ///< interval bounds over the outer box
  i64 max_upper = 0;
};

/// Interval of an affine form given per-variable value intervals.
struct Interval {
  i64 lo;
  i64 hi;
};

Interval affine_interval(const AffineForm& f,
                         const std::vector<const Loop*>& outer,
                         const std::vector<Interval>& outer_range) {
  Interval out{f.constant, f.constant};
  for (const auto& [v, c] : f.coeffs) {
    // Find the outer level for this variable.
    std::size_t idx = outer.size();
    for (std::size_t t = 0; t < outer.size(); ++t) {
      if (outer[t]->var == v) {
        idx = t;
        break;
      }
    }
    COALESCE_ASSERT_MSG(idx < outer.size(), "variable not in outer band");
    const Interval r = outer_range[idx];
    if (c >= 0) {
      out.lo += c * r.lo;
      out.hi += c * r.hi;
    } else {
      out.lo += c * r.hi;
      out.hi += c * r.lo;
    }
  }
  return out;
}

/// Affine view of a bound, restricted to outer band variables.
support::Expected<AffineForm> bound_affine(
    const ExprRef& bound, const std::vector<const Loop*>& outer,
    const char* which, std::size_t level) {
  auto form = ir::to_affine(ir::simplify(bound));
  if (!form) {
    return support::make_error(
        support::ErrorCode::kUnsupported,
        support::format("%s bound of band level %zu is not affine", which,
                        level));
  }
  for (const auto& [v, c] : form->coeffs) {
    const bool in_outer =
        std::any_of(outer.begin(), outer.end(),
                    [&](const Loop* l) { return l->var == v; });
    if (!in_outer) {
      return support::make_error(
          support::ErrorCode::kUnsupported,
          support::format("%s bound of band level %zu references a variable "
                          "outside the band",
                          which, level));
    }
  }
  return *form;
}

}  // namespace

support::Expected<GuardedCoalesceResult> coalesce_guarded(
    const LoopNest& nest, const CoalesceOptions& options) {
  COALESCE_ASSERT(nest.root != nullptr);

  const std::vector<const Loop*> parallel = ir::parallel_band(*nest.root);
  const std::size_t k = options.levels == 0 ? parallel.size() : options.levels;
  if (k < 2 || k > parallel.size()) {
    return support::make_error(
        support::ErrorCode::kIllegalTransform,
        support::format("guarded coalescing needs a parallel band of depth "
                        ">= 2 (band depth %zu, requested %zu)",
                        parallel.size(), k));
  }
  const std::vector<const Loop*> band(parallel.begin(),
                                      parallel.begin() +
                                          static_cast<std::ptrdiff_t>(k));

  // Analyze each level: affine bounds over outer levels, interval ranges.
  std::vector<LevelInfo> levels(k);
  std::vector<const Loop*> outer;
  std::vector<Interval> outer_range;
  std::vector<index::LevelGeometry> geometry;

  for (std::size_t t = 0; t < k; ++t) {
    LevelInfo& info = levels[t];
    info.loop = band[t];

    auto lower = bound_affine(band[t]->lower, outer, "lower", t);
    if (!lower.ok()) return lower.error();
    auto upper = bound_affine(band[t]->upper, outer, "upper", t);
    if (!upper.ok()) return upper.error();
    info.lower = std::move(lower).value();
    info.upper = std::move(upper).value();
    info.lower_constant = info.lower.is_constant();
    info.upper_constant = info.upper.is_constant();

    if ((!info.lower_constant || !info.upper_constant) &&
        band[t]->step != 1) {
      return support::make_error(
          support::ErrorCode::kUnsupported,
          support::format("band level %zu has variable bounds and a "
                          "non-unit step",
                          t));
    }

    const Interval lo_range = affine_interval(info.lower, outer, outer_range);
    const Interval hi_range = affine_interval(info.upper, outer, outer_range);
    info.min_lower = lo_range.lo;
    info.max_upper = hi_range.hi;
    if (info.max_upper < info.min_lower) {
      return support::make_error(
          support::ErrorCode::kIllegalTransform,
          support::format("band level %zu is empty over the whole box", t));
    }
    const i64 trips =
        (info.max_upper - info.min_lower) / band[t]->step + 1;
    geometry.push_back(
        index::LevelGeometry{info.min_lower, trips, band[t]->step});

    outer.push_back(band[t]);
    outer_range.push_back(Interval{info.min_lower, info.max_upper});
  }

  // The body must not assign any band variable (same rule as coalesce_nest).
  const std::vector<VarId> written = ir::scalars_written(*band.back());
  for (const Loop* loop : band) {
    if (std::find(written.begin(), written.end(), loop->var) !=
        written.end()) {
      return support::make_error(
          support::ErrorCode::kIllegalTransform,
          "loop body assigns induction variable of a coalesced level");
    }
  }

  auto space = index::CoalescedSpace::create(geometry);
  if (!space.ok()) return space.error();

  ir::SymbolTable symbols = nest.symbols;
  VarId j;
  if (!symbols.lookup(options.coalesced_name).has_value()) {
    j = symbols.declare(options.coalesced_name, ir::SymbolKind::kInduction);
  } else {
    j = symbols.fresh_induction(options.coalesced_name);
  }

  auto coalesced = std::make_shared<Loop>();
  coalesced->var = j;
  coalesced->lower = ir::int_const(1);
  coalesced->upper = ir::int_const(space.value().total());
  coalesced->step = 1;
  coalesced->parallel = true;

  std::vector<VarId> recovered;
  for (std::size_t t = 0; t < k; ++t) {
    recovered.push_back(band[t]->var);
    coalesced->body.push_back(ir::AssignStmt{
        band[t]->var,
        recovery_expression(space.value(), t, j, options.recovery)});
  }

  // Guard condition: conjunction of the non-trivial bound predicates. A
  // predicate is trivial when the bound is constant (the box edge is exact).
  ExprRef condition;
  std::size_t guards = 0;
  auto add_clause = [&](ExprRef clause) {
    ++guards;
    condition = condition == nullptr
                    ? std::move(clause)
                    : ir::logical_and(std::move(condition), std::move(clause));
  };
  for (std::size_t t = 0; t < k; ++t) {
    const VarId v = band[t]->var;
    if (!levels[t].lower_constant) {
      add_clause(ir::cmp_ge(ir::var_ref(v), ir::from_affine(levels[t].lower)));
    }
    if (!levels[t].upper_constant) {
      add_clause(ir::cmp_le(ir::var_ref(v), ir::from_affine(levels[t].upper)));
    }
  }

  std::vector<ir::Stmt> body;
  body.reserve(band.back()->body.size());
  for (const ir::Stmt& s : band.back()->body) body.push_back(ir::clone(s));

  if (condition != nullptr) {
    auto guard = std::make_shared<ir::IfStmt>();
    guard->condition = std::move(condition);
    guard->then_body = std::move(body);
    coalesced->body.push_back(std::move(guard));
  } else {
    for (ir::Stmt& s : body) coalesced->body.push_back(std::move(s));
  }

  // Exact active-point count: sweep the box once evaluating the affine
  // bounds numerically (cheap: pure integer arithmetic per point).
  const i64 box_points = space.value().total();
  i64 active = 0;
  {
    index::IncrementalDecoder decoder(space.value(), 1);
    std::vector<i64> value(k);
    for (i64 p = 1;; ++p) {
      const auto original = decoder.original();
      for (std::size_t t = 0; t < k; ++t) value[t] = original[t];
      bool ok = true;
      for (std::size_t t = 0; t < k && ok; ++t) {
        auto eval_affine = [&](const AffineForm& f) {
          i64 acc = f.constant;
          for (const auto& [var, coeff] : f.coeffs) {
            for (std::size_t u = 0; u < t; ++u) {
              if (band[u]->var == var) {
                acc += coeff * value[u];
                break;
              }
            }
          }
          return acc;
        };
        ok = value[t] >= eval_affine(levels[t].lower) &&
             value[t] <= eval_affine(levels[t].upper);
      }
      if (ok) ++active;
      if (p == box_points) break;
      decoder.advance();
    }
  }

  GuardedCoalesceResult result{
      LoopNest{std::move(symbols), std::move(coalesced)},
      std::move(space).value(),
      j,
      std::move(recovered),
      k,
      guards,
      box_points,
      active};
  if (auto checked = postcheck("coalesce-guarded", nest, result.nest);
      !checked.ok()) {
    return checked.error();
  }
  return result;
}

}  // namespace coalesce::transform
