// Guarded coalescing of non-rectangular (e.g. triangular) parallel bands.
//
// The closed-form index recovery requires a rectangular space. A band whose
// inner bounds depend affinely on outer band variables (the triangular
// update loops of LU/Gauss elimination, symmetric-matrix sweeps, ...) is
// coalesced by over-approximating it with its rectangular *bounding box* and
// guarding the body with the original bound predicates:
//
//   doall i = 1, N {              doall j = 1, N*N {
//     doall k = i, N {      ==>     i = <recover>; k = <recover over 1..N>;
//       B(i, k);                    if (k >= i) { B(i, k); }
//     }                           }
//   }
//
// The win is the paper's: one scheduling counter and near-perfect load
// balance even though iterations-per-row varies — at the price of decoding
// (and immediately discarding) the inactive box points. The result reports
// box vs active point counts so callers can judge the trade
// (active/box >= 1/2 for triangles; very sparse bands should not use this).
#pragma once

#include <cstdint>

#include "index/coalesced_space.hpp"
#include "ir/stmt.hpp"
#include "support/error.hpp"
#include "transform/coalesce.hpp"

namespace coalesce::transform {

struct GuardedCoalesceResult {
  ir::LoopNest nest;
  index::CoalescedSpace space;       ///< the bounding box
  ir::VarId coalesced_var;
  std::vector<ir::VarId> recovered;  ///< band vars, outermost first
  std::size_t levels = 0;
  std::size_t guards_emitted = 0;    ///< 0 when the band was rectangular
  support::i64 box_points = 0;       ///< iterations of the coalesced loop
  support::i64 active_points = 0;    ///< iterations whose guard passes
};

/// Coalesces the maximal parallel band at the nest's root, allowing inner
/// bounds that are affine in outer band variables. Falls back to exactly
/// plain coalescing when the band is rectangular (no guard emitted).
///
/// Preconditions beyond coalesce_nest's: affine-dependent levels must have
/// step 1; every bound must be constant or affine in outer band variables.
[[nodiscard]] support::Expected<GuardedCoalesceResult> coalesce_guarded(
    const ir::LoopNest& nest, const CoalesceOptions& options = {});

}  // namespace coalesce::transform
