#include "transform/interchange.hpp"

#include "analysis/dependence.hpp"
#include "support/assert.hpp"
#include "support/strings.hpp"
#include "transform/postcheck.hpp"

namespace coalesce::transform {

using ir::Loop;
using ir::LoopNest;
using ir::LoopPtr;

namespace {

/// Is the distance vector still lexicographically non-negative after
/// swapping entries l and l+1? Unknown entries are assumed hostile.
bool permutation_legal(
    const std::vector<std::optional<std::int64_t>>& distance, std::size_t l) {
  // Normalize direction: the stored vector may be the reverse dependence
  // (negative leading entry). Find the first known-nonzero entry.
  int sign = 0;
  for (const auto& d : distance) {
    if (!d.has_value()) {
      // Direction unknown. Safe only if the swap cannot change order:
      // both swapped entries known and equal.
      return distance[l].has_value() && distance[l + 1].has_value() &&
             *distance[l] == *distance[l + 1];
    }
    if (*d != 0) {
      sign = *d > 0 ? 1 : -1;
      break;
    }
  }
  if (sign == 0) return true;  // loop-independent: any permutation fine

  std::vector<std::int64_t> permuted;
  permuted.reserve(distance.size());
  for (const auto& d : distance) permuted.push_back(sign * *d);
  std::swap(permuted[l], permuted[l + 1]);

  for (std::int64_t d : permuted) {
    if (d > 0) return true;
    if (d < 0) return false;
  }
  return true;
}

support::Expected<bool> check(const LoopNest& nest, std::size_t outer,
                              std::vector<const Loop*>* band_out) {
  COALESCE_ASSERT(nest.root != nullptr);
  const std::vector<const Loop*> band = ir::perfect_band(*nest.root);
  if (outer + 1 >= band.size()) {
    return support::make_error(
        support::ErrorCode::kIllegalTransform,
        support::format("band depth %zu; cannot interchange levels %zu/%zu",
                        band.size(), outer, outer + 1));
  }
  const Loop* a = band[outer];
  const Loop* b = band[outer + 1];
  if (ir::references(b->lower, a->var) || ir::references(b->upper, a->var)) {
    return support::make_error(
        support::ErrorCode::kUnsupported,
        "inner bounds depend on the outer variable (non-rectangular)");
  }

  for (const auto& dep : analysis::compute_dependences(*nest.root)) {
    // The swap affects a dependence only if its common chain reaches both
    // levels.
    if (dep.common.size() <= outer + 1) continue;
    if (dep.common[outer] != a || dep.common[outer + 1] != b) continue;
    if (!permutation_legal(dep.distance, outer)) {
      if (band_out != nullptr) band_out->clear();
      return false;
    }
  }
  if (band_out != nullptr) *band_out = band;
  return true;
}

}  // namespace

support::Expected<bool> interchange_legal(const LoopNest& nest,
                                          std::size_t outer) {
  return check(nest, outer, nullptr);
}

support::Expected<ir::LoopNest> interchange(const LoopNest& nest,
                                            std::size_t outer) {
  std::vector<const Loop*> band;
  auto legal = check(nest, outer, &band);
  if (!legal.ok()) return legal.error();
  if (!legal.value()) {
    return support::make_error(support::ErrorCode::kIllegalTransform,
                               "a dependence forbids this interchange");
  }

  LoopPtr root = ir::clone(*nest.root);

  // Walk the cloned band and swap the loop headers at `outer` and
  // `outer + 1`; bodies stay attached to their structural position.
  std::vector<Loop*> chain;
  Loop* cur = root.get();
  while (true) {
    chain.push_back(cur);
    if (chain.size() > outer + 1) break;
    auto* inner = std::get_if<LoopPtr>(&cur->body.front());
    COALESCE_ASSERT(inner != nullptr);
    cur = inner->get();
  }
  Loop* a = chain[outer];
  Loop* b = chain[outer + 1];
  std::swap(a->var, b->var);
  std::swap(a->lower, b->lower);
  std::swap(a->upper, b->upper);
  std::swap(a->step, b->step);
  std::swap(a->parallel, b->parallel);

  LoopNest out{nest.symbols, std::move(root)};
  if (auto checked = postcheck("interchange", nest, out); !checked.ok()) {
    return checked.error();
  }
  return out;
}

}  // namespace coalesce::transform
