// Loop interchange of two adjacent levels of a perfect band.
//
// Interchange is the companion transformation the paper's setting assumes
// (move a parallel loop outward before coalescing). Legality: permuting the
// two levels must not make any dependence's distance vector lexicographically
// negative. Unknown distance entries are conservatively assumed hostile.
#pragma once

#include "ir/stmt.hpp"
#include "support/error.hpp"

namespace coalesce::transform {

/// Swaps band levels `outer` and `outer + 1` (0-based from the root) of the
/// maximal perfect band. Fails when the band is too shallow, the inner
/// loop's bounds depend on the outer variable (non-rectangular), or a
/// dependence forbids the permutation.
[[nodiscard]] support::Expected<ir::LoopNest> interchange(
    const ir::LoopNest& nest, std::size_t outer);

/// Legality check only (no rewrite).
[[nodiscard]] support::Expected<bool> interchange_legal(
    const ir::LoopNest& nest, std::size_t outer);

}  // namespace coalesce::transform
