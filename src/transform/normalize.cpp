#include "transform/normalize.hpp"

#include "support/assert.hpp"
#include "support/strings.hpp"
#include "transform/postcheck.hpp"

namespace coalesce::transform {

using ir::ExprRef;
using ir::Loop;
using ir::LoopNest;
using ir::LoopPtr;
using ir::VarId;

namespace {

ExprRef subst(const ExprRef& e, VarId v, const ExprRef& replacement) {
  return ir::simplify(ir::substitute(e, v, replacement));
}

ir::Stmt subst_stmt(const ir::Stmt& stmt, VarId v, const ExprRef& r);

LoopPtr subst_loop(const Loop& loop, VarId v, const ExprRef& r) {
  auto out = std::make_shared<Loop>();
  out->var = loop.var;
  out->lower = subst(loop.lower, v, r);
  out->upper = subst(loop.upper, v, r);
  out->step = loop.step;
  out->parallel = loop.parallel;
  out->body.reserve(loop.body.size());
  for (const ir::Stmt& s : loop.body) out->body.push_back(subst_stmt(s, v, r));
  return out;
}

ir::Stmt subst_stmt(const ir::Stmt& stmt, VarId v, const ExprRef& r) {
  if (const auto* assign = std::get_if<ir::AssignStmt>(&stmt)) {
    ir::AssignStmt out = *assign;
    out.rhs = subst(out.rhs, v, r);
    if (auto* access = std::get_if<ir::ArrayAccess>(&out.lhs)) {
      for (auto& sub : access->subscripts) sub = subst(sub, v, r);
    }
    return out;
  }
  if (const auto* guard = std::get_if<ir::IfPtr>(&stmt)) {
    auto out = std::make_shared<ir::IfStmt>();
    out->condition = subst((*guard)->condition, v, r);
    out->then_body.reserve((*guard)->then_body.size());
    for (const ir::Stmt& s : (*guard)->then_body) {
      out->then_body.push_back(subst_stmt(s, v, r));
    }
    return out;
  }
  return subst_loop(*std::get<LoopPtr>(stmt), v, r);
}

support::Expected<LoopPtr> normalize_tree(ir::SymbolTable& symbols,
                                          const Loop& loop) {
  if (ir::references(loop.upper, loop.var) ||
      ir::references(loop.lower, loop.var)) {
    return support::make_error(
        support::ErrorCode::kInvalidArgument,
        support::format("bounds of loop %s reference its own variable",
                        symbols.name(loop.var).c_str()));
  }

  const auto lo = ir::as_constant(loop.lower);
  const bool already = lo.has_value() && *lo == 1 && loop.step == 1;

  auto out = std::make_shared<Loop>();
  out->parallel = loop.parallel;

  std::vector<ir::Stmt> body;
  if (already || !lo.has_value()) {
    // Already normal, or non-constant lower bound (left as-is; coalescing
    // will reject it later with a precise message).
    out->var = loop.var;
    out->lower = loop.lower;
    out->upper = loop.upper;
    out->step = loop.step;
    body = loop.body;  // shallow: statements re-normalized below
  } else {
    // v' = 1 .. trips;  v := lo + (v' - 1) * step.
    const VarId fresh =
        symbols.fresh_induction(symbols.name(loop.var) + "_n");
    out->var = fresh;
    out->lower = ir::int_const(1);
    // trips = floor((hi - lo) / step) + 1 (folds when hi is constant).
    out->upper = ir::simplify(ir::add(
        ir::floor_div(ir::sub(loop.upper, ir::int_const(*lo)),
                      ir::int_const(loop.step)),
        ir::int_const(1)));
    out->step = 1;
    const ExprRef replacement = ir::simplify(ir::add(
        ir::int_const(*lo - loop.step),
        ir::mul(ir::int_const(loop.step), ir::var_ref(fresh))));
    body.reserve(loop.body.size());
    for (const ir::Stmt& s : loop.body)
      body.push_back(subst_stmt(s, loop.var, replacement));
  }

  // Recurse into child loops (also under guards).
  auto normalize_body = [&](const std::vector<ir::Stmt>& in,
                            std::vector<ir::Stmt>& dest,
                            auto&& self) -> std::optional<support::Error> {
    dest.reserve(in.size());
    for (const ir::Stmt& s : in) {
      if (const auto* inner = std::get_if<LoopPtr>(&s)) {
        auto normalized = normalize_tree(symbols, **inner);
        if (!normalized.ok()) return normalized.error();
        dest.push_back(std::move(normalized).value());
      } else if (const auto* guard = std::get_if<ir::IfPtr>(&s)) {
        auto rebuilt = std::make_shared<ir::IfStmt>();
        rebuilt->condition = (*guard)->condition;
        if (auto err = self((*guard)->then_body, rebuilt->then_body, self)) {
          return err;
        }
        dest.push_back(std::move(rebuilt));
      } else {
        dest.push_back(ir::clone(s));
      }
    }
    return std::nullopt;
  };
  if (auto err = normalize_body(body, out->body, normalize_body)) {
    return *err;
  }
  return out;
}

}  // namespace

support::Expected<LoopNest> normalize_nest(const LoopNest& nest) {
  COALESCE_ASSERT(nest.root != nullptr);
  ir::SymbolTable symbols = nest.symbols;
  auto root = normalize_tree(symbols, *nest.root);
  if (!root.ok()) return root.error();
  LoopNest out{std::move(symbols), std::move(root).value()};
  if (auto checked = postcheck("normalize", nest, out); !checked.ok()) {
    return checked.error();
  }
  return out;
}

bool fully_normalized(const Loop& root) {
  if (!ir::is_normalized(root)) return false;
  for (const ir::Stmt& s : root.body) {
    if (const auto* inner = std::get_if<LoopPtr>(&s)) {
      if (!fully_normalized(**inner)) return false;
    }
  }
  return true;
}

}  // namespace coalesce::transform
