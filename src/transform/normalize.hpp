// Loop normalization: rewrite `for v = lo, hi, s` (constant lo, s) as
// `for v' = 1, trips, 1` substituting v := lo + (v' - 1) * s in the body.
// Coalescing handles unnormalized geometry natively, but normalization is
// the standard preparation pass for other consumers (interchange legality,
// simpler codegen) and we expose it as its own transformation.
#pragma once

#include "ir/stmt.hpp"
#include "support/error.hpp"

namespace coalesce::transform {

/// Normalizes every loop in the tree whose lower bound folds to a constant.
/// Loops already in normal form are left untouched (no fresh variables).
/// Fails only when a loop's trip count cannot be computed because the upper
/// bound references the loop's own variable (malformed input).
[[nodiscard]] support::Expected<ir::LoopNest> normalize_nest(
    const ir::LoopNest& nest);

/// True when every loop in the tree has lower == 1 and step == 1.
[[nodiscard]] bool fully_normalized(const ir::Loop& root);

}  // namespace coalesce::transform
