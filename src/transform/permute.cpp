#include "transform/permute.hpp"

#include <algorithm>
#include <numeric>

#include "analysis/dependence.hpp"
#include "analysis/doall.hpp"
#include "support/assert.hpp"
#include "transform/postcheck.hpp"
#include "support/strings.hpp"

namespace coalesce::transform {

using ir::Loop;
using ir::LoopNest;
using ir::LoopPtr;

namespace {

bool is_permutation(const std::vector<std::size_t>& perm) {
  std::vector<bool> seen(perm.size(), false);
  for (std::size_t p : perm) {
    if (p >= perm.size() || seen[p]) return false;
    seen[p] = true;
  }
  return true;
}

/// Is a dependence's (partial) distance vector lexicographically
/// non-negative after applying `perm` to its leading `perm.size()` levels?
/// Unknown entries are hostile unless an earlier permuted entry is already
/// known positive.
bool vector_legal_after(const std::vector<std::optional<std::int64_t>>& dist,
                        const std::vector<std::size_t>& perm) {
  // Normalize direction first (stored vectors may lead negative only when
  // they contain unknowns; fully-known vectors are normalized already, but
  // be defensive).
  int sign = 0;
  for (const auto& d : dist) {
    if (!d.has_value()) break;
    if (*d != 0) {
      sign = *d > 0 ? 1 : -1;
      break;
    }
  }
  if (sign == 0) sign = 1;  // all-zero prefix or unknown-led: take as-is

  std::vector<std::optional<std::int64_t>> permuted(dist.size());
  for (std::size_t k = 0; k < dist.size(); ++k) {
    const std::size_t src = k < perm.size() ? perm[k] : k;
    permuted[k] = src < dist.size() ? dist[src] : std::nullopt;
  }
  for (const auto& d : permuted) {
    if (!d.has_value()) return false;  // could be negative: reject
    const std::int64_t v = sign * *d;
    if (v > 0) return true;
    if (v < 0) return false;
  }
  return true;  // all zero: loop-independent
}

support::Expected<std::vector<const Loop*>> check(
    const LoopNest& nest, const std::vector<std::size_t>& perm) {
  COALESCE_ASSERT(nest.root != nullptr);
  if (!is_permutation(perm)) {
    return support::make_error(support::ErrorCode::kInvalidArgument,
                               "perm is not a permutation of 0..k-1");
  }
  const std::vector<const Loop*> band = ir::perfect_band(*nest.root);
  if (perm.size() > band.size()) {
    return support::make_error(
        support::ErrorCode::kIllegalTransform,
        support::format("permutation touches %zu levels but the band has "
                        "depth %zu",
                        perm.size(), band.size()));
  }
  // Rectangularity over the permuted region: no bound may reference another
  // permuted level's variable (any order must be valid textually).
  for (std::size_t k = 0; k < perm.size(); ++k) {
    for (std::size_t other = 0; other < perm.size(); ++other) {
      if (other == k) continue;
      if (ir::references(band[k]->lower, band[other]->var) ||
          ir::references(band[k]->upper, band[other]->var)) {
        return support::make_error(
            support::ErrorCode::kUnsupported,
            "band is not rectangular over the permuted levels");
      }
    }
  }
  return band;
}

bool identity(const std::vector<std::size_t>& perm) {
  for (std::size_t k = 0; k < perm.size(); ++k) {
    if (perm[k] != k) return false;
  }
  return true;
}

}  // namespace

support::Expected<bool> permutation_legal(
    const LoopNest& nest, const std::vector<std::size_t>& perm) {
  auto band = check(nest, perm);
  if (!band.ok()) return band.error();
  if (identity(perm)) return true;

  for (const auto& dep : analysis::compute_dependences(*nest.root)) {
    // Only dependences whose common chain reaches into the permuted region
    // are affected.
    if (dep.common.empty()) continue;
    bool in_band = dep.common.size() >= 1 &&
                   dep.common[0] == band.value()[0];
    if (!in_band) continue;
    if (!vector_legal_after(dep.distance, perm)) return false;
  }
  return true;
}

support::Expected<LoopNest> permute(const LoopNest& nest,
                                    const std::vector<std::size_t>& perm) {
  auto legal = permutation_legal(nest, perm);
  if (!legal.ok()) return legal.error();
  if (!legal.value()) {
    return support::make_error(support::ErrorCode::kIllegalTransform,
                               "a dependence forbids this permutation");
  }

  LoopPtr root = ir::clone(*nest.root);
  std::vector<Loop*> chain;
  Loop* cur = root.get();
  while (chain.size() < perm.size()) {
    chain.push_back(cur);
    if (chain.size() == perm.size()) break;
    auto* inner = std::get_if<LoopPtr>(&cur->body.front());
    COALESCE_ASSERT(inner != nullptr);
    cur = inner->get();
  }

  // Snapshot headers, then rewrite each position with its source header.
  struct Header {
    ir::VarId var;
    ir::ExprRef lower;
    ir::ExprRef upper;
    std::int64_t step;
    bool parallel;
  };
  std::vector<Header> headers;
  headers.reserve(chain.size());
  for (Loop* loop : chain) {
    headers.push_back(Header{loop->var, loop->lower, loop->upper, loop->step,
                             loop->parallel});
  }
  for (std::size_t k = 0; k < perm.size(); ++k) {
    const Header& h = headers[perm[k]];
    chain[k]->var = h.var;
    chain[k]->lower = h.lower;
    chain[k]->upper = h.upper;
    chain[k]->step = h.step;
    chain[k]->parallel = h.parallel;
  }
  LoopNest out{nest.symbols, std::move(root)};
  if (auto checked = postcheck("permute", nest, out); !checked.ok()) {
    return checked.error();
  }
  return out;
}

std::vector<std::size_t> best_parallel_permutation(const LoopNest& nest,
                                                   std::size_t levels) {
  COALESCE_ASSERT(levels <= 6);
  std::vector<std::size_t> perm(levels);
  std::iota(perm.begin(), perm.end(), 0);
  std::vector<std::size_t> best = perm;
  std::size_t best_depth = 0;
  {
    LoopNest marked{nest.symbols, ir::clone(*nest.root)};
    analysis::analyze_and_mark(marked);
    best_depth = ir::parallel_band(*marked.root).size();
  }

  std::vector<std::size_t> candidate = perm;
  while (std::next_permutation(candidate.begin(), candidate.end())) {
    auto legal = permutation_legal(nest, candidate);
    if (!legal.ok() || !legal.value()) continue;
    auto permuted = permute(nest, candidate);
    if (!permuted.ok()) continue;
    analysis::analyze_and_mark(permuted.value());
    const std::size_t depth =
        ir::parallel_band(*permuted.value().root).size();
    if (depth > best_depth) {
      best_depth = depth;
      best = candidate;
    }
  }
  return best;
}

}  // namespace coalesce::transform
