// General loop permutation of a perfect band — the closure of interchange.
//
// Permuting a band reorders every dependence's distance vector by the same
// permutation; the permutation is legal iff every permuted vector remains
// lexicographically non-negative. Interchange is the adjacent-transposition
// special case; permutation composes them in one legality check, which is
// how a compiler moves the best parallel loop outward before coalescing.
#pragma once

#include <cstddef>
#include <vector>

#include "ir/stmt.hpp"
#include "support/error.hpp"

namespace coalesce::transform {

/// Applies `perm` to the outer levels of the maximal perfect band:
/// new level k gets old level perm[k]. `perm` must be a permutation of
/// 0..perm.size()-1 with perm.size() <= band depth. Fails on non-rectangular
/// bands (bounds referencing permuted variables) or dependence violations.
[[nodiscard]] support::Expected<ir::LoopNest> permute(
    const ir::LoopNest& nest, const std::vector<std::size_t>& perm);

/// Legality check only.
[[nodiscard]] support::Expected<bool> permutation_legal(
    const ir::LoopNest& nest, const std::vector<std::size_t>& perm);

/// Searches all permutations of the band's outer `levels` (<= 6) for one
/// that maximizes the depth of the leading parallel band after permutation
/// (re-analyzed), preferring the identity on ties. Returns the permutation
/// found (identity when nothing better is legal).
[[nodiscard]] std::vector<std::size_t> best_parallel_permutation(
    const ir::LoopNest& nest, std::size_t levels);

}  // namespace coalesce::transform
