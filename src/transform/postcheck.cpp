#include "transform/postcheck.hpp"

#include <atomic>
#include <bit>
#include <cstdint>
#include <map>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "analysis/race.hpp"
#include "ir/eval.hpp"
#include "ir/verify.hpp"
#include "support/int_math.hpp"

namespace coalesce::transform {
namespace {

using support::i64;

std::atomic<bool> g_post_verify{true};
#ifdef NDEBUG
std::atomic<bool> g_oracle{false};
#else
std::atomic<bool> g_oracle{true};
#endif
std::atomic<bool> g_race_check{true};

// ---- oracle eligibility ---------------------------------------------------

// The oracle interprets both sides, so it must refuse anything the
// evaluator cannot execute standalone: calls to builtins we did not
// register ourselves and parameters nobody bound.
struct Traits {
  bool has_call = false;
  bool reads_param = false;
};

void scan_expr(const ir::ExprRef& e, const ir::SymbolTable& symbols,
               Traits& t) {
  if (!e) return;
  if (e->op == ir::ExprOp::kCall) t.has_call = true;
  if (e->op == ir::ExprOp::kVarRef && e->var.valid() &&
      e->var.raw < symbols.size() &&
      symbols.kind(e->var) == ir::SymbolKind::kParam) {
    t.reads_param = true;
  }
  for (const auto& kid : e->kids) scan_expr(kid, symbols, t);
}

void scan_loop(const ir::Loop& loop, const ir::SymbolTable& symbols,
               Traits& t);

void scan_stmt(const ir::Stmt& stmt, const ir::SymbolTable& symbols,
               Traits& t) {
  if (const auto* assign = std::get_if<ir::AssignStmt>(&stmt)) {
    if (const auto* access = std::get_if<ir::ArrayAccess>(&assign->lhs)) {
      for (const auto& sub : access->subscripts) scan_expr(sub, symbols, t);
    }
    scan_expr(assign->rhs, symbols, t);
  } else if (const auto* inner = std::get_if<ir::LoopPtr>(&stmt)) {
    if (*inner) scan_loop(**inner, symbols, t);
  } else if (const auto* guard = std::get_if<ir::IfPtr>(&stmt)) {
    if (*guard) {
      scan_expr((*guard)->condition, symbols, t);
      for (const auto& s : (*guard)->then_body) scan_stmt(s, symbols, t);
    }
  }
}

void scan_loop(const ir::Loop& loop, const ir::SymbolTable& symbols,
               Traits& t) {
  scan_expr(loop.lower, symbols, t);
  scan_expr(loop.upper, symbols, t);
  for (const auto& stmt : loop.body) scan_stmt(stmt, symbols, t);
}

// ---- iteration budget -----------------------------------------------------

// Upper bound on total loop iterations via interval arithmetic over the
// live induction variables, so triangular nests (bounds reading outer
// variables) still get a finite estimate. nullopt = unbounded/unknown.
struct Interval {
  i64 lo = 0;
  i64 hi = 0;
};

std::optional<Interval> expr_range(const ir::ExprRef& e,
                                   const std::map<std::uint32_t, Interval>& env) {
  if (!e) return std::nullopt;
  switch (e->op) {
    case ir::ExprOp::kIntConst:
      return Interval{e->literal, e->literal};
    case ir::ExprOp::kVarRef: {
      const auto it = env.find(e->var.raw);
      if (it == env.end()) return std::nullopt;
      return it->second;
    }
    case ir::ExprOp::kAdd:
    case ir::ExprOp::kSub: {
      const auto a = expr_range(e->kids[0], env);
      const auto b = expr_range(e->kids[1], env);
      if (!a || !b) return std::nullopt;
      const bool add = e->op == ir::ExprOp::kAdd;
      const auto lo = add ? support::checked_add(a->lo, b->lo)
                          : support::checked_sub(a->lo, b->hi);
      const auto hi = add ? support::checked_add(a->hi, b->hi)
                          : support::checked_sub(a->hi, b->lo);
      if (!lo || !hi) return std::nullopt;
      return Interval{*lo, *hi};
    }
    case ir::ExprOp::kMul: {
      const auto a = expr_range(e->kids[0], env);
      const auto b = expr_range(e->kids[1], env);
      if (!a || !b) return std::nullopt;
      Interval out{INT64_MAX, INT64_MIN};
      for (const i64 x : {a->lo, a->hi}) {
        for (const i64 y : {b->lo, b->hi}) {
          const auto p = support::checked_mul(x, y);
          if (!p) return std::nullopt;
          out.lo = std::min(out.lo, *p);
          out.hi = std::max(out.hi, *p);
        }
      }
      return out;
    }
    case ir::ExprOp::kNeg: {
      const auto a = expr_range(e->kids[0], env);
      if (!a || a->lo == INT64_MIN) return std::nullopt;
      return Interval{-a->hi, -a->lo};
    }
    case ir::ExprOp::kMin:
    case ir::ExprOp::kMax: {
      const auto a = expr_range(e->kids[0], env);
      const auto b = expr_range(e->kids[1], env);
      if (!a || !b) return std::nullopt;
      if (e->op == ir::ExprOp::kMin) {
        return Interval{std::min(a->lo, b->lo), std::min(a->hi, b->hi)};
      }
      return Interval{std::max(a->lo, b->lo), std::max(a->hi, b->hi)};
    }
    default:
      return std::nullopt;  // division, reads, calls: give up conservatively
  }
}

std::optional<i64> max_iterations(const ir::Loop& loop,
                                  std::map<std::uint32_t, Interval>& env);

std::optional<i64> max_iterations_in(const std::vector<ir::Stmt>& body,
                                     std::map<std::uint32_t, Interval>& env) {
  i64 total = 0;
  for (const auto& stmt : body) {
    std::optional<i64> inner;
    if (const auto* loop = std::get_if<ir::LoopPtr>(&stmt)) {
      if (!*loop) return std::nullopt;
      inner = max_iterations(**loop, env);
    } else if (const auto* guard = std::get_if<ir::IfPtr>(&stmt)) {
      if (!*guard) return std::nullopt;
      inner = max_iterations_in((*guard)->then_body, env);
    } else {
      continue;
    }
    if (!inner) return std::nullopt;
    const auto sum = support::checked_add(total, *inner);
    if (!sum) return std::nullopt;
    total = *sum;
  }
  return total;
}

std::optional<i64> max_iterations(const ir::Loop& loop,
                                  std::map<std::uint32_t, Interval>& env) {
  const auto lower = expr_range(loop.lower, env);
  const auto upper = expr_range(loop.upper, env);
  if (!lower || !upper || loop.step < 1) return std::nullopt;
  const auto span = support::checked_sub(upper->hi, lower->lo);
  i64 trips = 0;
  if (span && *span >= 0) {
    trips = *span / loop.step + 1;
  }
  if (!span && upper->hi > lower->lo) return std::nullopt;  // span overflowed

  env[loop.var.raw] = Interval{lower->lo, std::max(lower->lo, upper->hi)};
  const auto inner = max_iterations_in(loop.body, env);
  env.erase(loop.var.raw);
  if (!inner) return std::nullopt;

  const auto per = support::checked_add(1, *inner);
  if (!per) return std::nullopt;
  return support::checked_mul(trips, *per);
}

// ---- shadow execution -----------------------------------------------------

// One side of the diff: a symbol table plus its roots in execution order.
struct Side {
  const ir::SymbolTable* symbols;
  std::vector<const ir::Loop*> roots;
};

bool side_oracle_eligible(const Side& side) {
  Traits traits;
  std::map<std::uint32_t, Interval> env;
  i64 total = 0;
  for (const ir::Loop* root : side.roots) {
    if (root == nullptr) return false;
    scan_loop(*root, *side.symbols, traits);
    const auto iters = max_iterations(*root, env);
    if (!iters) return false;
    const auto sum = support::checked_add(total, *iters);
    if (!sum) return false;
    total = *sum;
  }
  if (traits.has_call || traits.reads_param) return false;
  return static_cast<std::uint64_t>(total) <= kOracleIterationCap;
}

// Matches core's deterministic seeding so oracle runs and the public
// equivalence API exercise identical initial states.
void seed_arrays(ir::Evaluator& eval, const ir::SymbolTable& symbols) {
  for (std::uint32_t raw = 0; raw < symbols.size(); ++raw) {
    const ir::VarId id{raw};
    if (symbols.kind(id) != ir::SymbolKind::kArray) continue;
    auto data = eval.store().data(id);
    for (std::size_t q = 0; q < data.size(); ++q) {
      data[q] = static_cast<double>((q * 31 + 17) % 97) / 7.0;
    }
  }
}

bool bits_equal(double a, double b) noexcept {
  return std::bit_cast<std::uint64_t>(a) == std::bit_cast<std::uint64_t>(b);
}

bool values_equal(const ir::Value& a, const ir::Value& b) {
  const auto* ai = std::get_if<i64>(&a);
  const auto* bi = std::get_if<i64>(&b);
  if ((ai != nullptr) != (bi != nullptr)) return false;
  if (ai != nullptr) return *ai == *bi;
  return bits_equal(std::get<double>(a), std::get<double>(b));
}

std::optional<ir::VarId> find_symbol(const ir::SymbolTable& symbols,
                                     const std::string& name,
                                     ir::SymbolKind kind) {
  const auto id = symbols.lookup(name);
  if (!id || symbols.kind(*id) != kind) return std::nullopt;
  return id;
}

/// Runs both sides on identically seeded state and reports the first
/// divergence; nullopt = states match.
std::optional<std::string> diff_executions(const Side& before,
                                           const Side& after,
                                           const PostcheckOptions& options) {
  ir::Evaluator eval_before(*before.symbols);
  ir::Evaluator eval_after(*after.symbols);
  seed_arrays(eval_before, *before.symbols);
  seed_arrays(eval_after, *after.symbols);
  for (const ir::Loop* root : before.roots) eval_before.run(*root);
  for (const ir::Loop* root : after.roots) eval_after.run(*root);

  for (std::uint32_t raw = 0; raw < before.symbols->size(); ++raw) {
    const ir::VarId id{raw};
    const ir::Symbol& sym = (*before.symbols)[id];
    if (sym.kind == ir::SymbolKind::kArray) {
      const auto other =
          find_symbol(*after.symbols, sym.name, ir::SymbolKind::kArray);
      if (!other) return "array '" + sym.name + "' missing after the pass";
      const auto a = eval_before.store().data(id);
      const auto b = eval_after.store().data(*other);
      if (a.size() != b.size()) {
        return "array '" + sym.name + "' changed size across the pass";
      }
      for (std::size_t q = 0; q < a.size(); ++q) {
        if (!bits_equal(a[q], b[q])) {
          return "array '" + sym.name + "' diverges at flat index " +
                 std::to_string(q);
        }
      }
    } else if (sym.kind == ir::SymbolKind::kScalar && options.compare_scalars) {
      const auto va = eval_before.scalar_value(id);
      if (!va) continue;  // never written on the reference side
      const auto other =
          find_symbol(*after.symbols, sym.name, ir::SymbolKind::kScalar);
      // A scalar the pass retired (still declared, never written) only
      // matters when the reference side produced a value.
      const auto vb = other ? eval_after.scalar_value(*other)
                            : std::optional<ir::Value>{};
      if (!vb || !values_equal(*va, *vb)) {
        return "scalar '" + sym.name + "' diverges after the pass";
      }
    }
  }
  return std::nullopt;
}

/// Proven (definite) races across every root of one side.
std::size_t definite_races(const Side& side) {
  std::size_t total = 0;
  for (const ir::Loop* root : side.roots) {
    if (root == nullptr) continue;
    total += analysis::check_races(*side.symbols, *root).definite_count();
  }
  return total;
}

support::Expected<bool> postcheck_impl(const char* pass, const Side& before,
                                       const Side& after,
                                       const PostcheckOptions& options,
                                       const ir::Program* after_program,
                                       const ir::LoopNest* after_nest) {
  if (post_verify_enabled()) {
    auto verified = after_program != nullptr
                        ? ir::verify_ok(*after_program, pass)
                        : ir::verify_ok(*after_nest, pass);
    if (!verified) return verified.error();
  }
  // The race gate reasons over the dependence tests, which assume the
  // structural invariants the verifier just checked — so it only runs when
  // the verifier did (--no-verify turns both off).
  if (post_verify_enabled() && race_check_enabled() &&
      definite_races(after) > 0 && definite_races(before) == 0) {
    return support::make_error(
        support::ErrorCode::kVerifyFailed,
        std::string(pass) +
            ": race regression: the rewrite introduced a proven carried "
            "dependence on a parallel loop");
  }
  if (differential_oracle_enabled() && side_oracle_eligible(before) &&
      side_oracle_eligible(after)) {
    if (auto diverged = diff_executions(before, after, options)) {
      return support::make_error(
          support::ErrorCode::kVerifyFailed,
          std::string(pass) + ": differential oracle mismatch: " + *diverged);
    }
  }
  return true;
}

Side as_side(const ir::LoopNest& nest) {
  return Side{&nest.symbols, {nest.root.get()}};
}

Side as_side(const ir::Program& program) {
  Side side{&program.symbols, {}};
  side.roots.reserve(program.roots.size());
  for (const auto& root : program.roots) side.roots.push_back(root.get());
  return side;
}

}  // namespace

void set_post_verify(bool enabled) noexcept {
  g_post_verify.store(enabled, std::memory_order_relaxed);
}

bool post_verify_enabled() noexcept {
  return g_post_verify.load(std::memory_order_relaxed);
}

void set_differential_oracle(bool enabled) noexcept {
  g_oracle.store(enabled, std::memory_order_relaxed);
}

bool differential_oracle_enabled() noexcept {
  return g_oracle.load(std::memory_order_relaxed);
}

void set_race_check(bool enabled) noexcept {
  g_race_check.store(enabled, std::memory_order_relaxed);
}

bool race_check_enabled() noexcept {
  return g_race_check.load(std::memory_order_relaxed);
}

support::Expected<bool> postcheck(const char* pass, const ir::LoopNest& before,
                                  const ir::LoopNest& after,
                                  const PostcheckOptions& options) {
  return postcheck_impl(pass, as_side(before), as_side(after), options,
                        nullptr, &after);
}

support::Expected<bool> postcheck(const char* pass, const ir::LoopNest& before,
                                  const ir::Program& after,
                                  const PostcheckOptions& options) {
  return postcheck_impl(pass, as_side(before), as_side(after), options, &after,
                        nullptr);
}

support::Expected<bool> postcheck(const char* pass, const ir::Program& before,
                                  const ir::Program& after,
                                  const PostcheckOptions& options) {
  return postcheck_impl(pass, as_side(before), as_side(after), options, &after,
                        nullptr);
}

}  // namespace coalesce::transform
