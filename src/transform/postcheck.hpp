// Post-pass verification hooks.
//
// Every transformation pass in this directory re-validates its output
// before handing it back: the structural IR verifier (ir/verify.hpp) always,
// and — when the differential oracle is enabled — a shadow execution that
// interprets the nest before and after the rewrite on deterministically
// seeded arrays and diffs the resulting array and scalar state bit-exactly.
// A pass that corrupts the IR or miscompiles a small nest therefore fails
// at its own boundary with ErrorCode::kVerifyFailed instead of handing
// wrong code downstream.
//
// The oracle only runs on nests it can afford: constant bounds, no opaque
// calls or unbound parameters, and at most kOracleIterationCap loop
// iterations per side. Anything larger silently skips the oracle (the
// structural verifier still runs). Debug builds enable the oracle by
// default; release builds leave it opt-in (tests opt in, and coalescec's
// --no-verify opts everything out).
#pragma once

#include <cstdint>

#include "ir/stmt.hpp"
#include "support/error.hpp"

namespace coalesce::transform {

/// Iteration budget per side above which the oracle skips a nest.
inline constexpr std::uint64_t kOracleIterationCap = 1u << 14;

/// Structural verifier toggle (default on). --no-verify clears it.
void set_post_verify(bool enabled) noexcept;
[[nodiscard]] bool post_verify_enabled() noexcept;

/// Differential oracle toggle (default: on in debug builds, off otherwise).
void set_differential_oracle(bool enabled) noexcept;
[[nodiscard]] bool differential_oracle_enabled() noexcept;

/// Race-regression gate toggle (default on): a pass whose input had zero
/// *definite* races (analysis/race.hpp) must not produce output with one —
/// a transformation may lose precision (new kMaybe findings are fine) but
/// must never introduce a proven race.
void set_race_check(bool enabled) noexcept;
[[nodiscard]] bool race_check_enabled() noexcept;

struct PostcheckOptions {
  /// Compare final scalar bindings in addition to arrays. Passes that
  /// intentionally retire scalars (scalar expansion) turn this off.
  bool compare_scalars = true;
};

/// Verifies `after` structurally and, when the oracle is enabled and both
/// sides are small enough, diffs shadow executions of `before` and `after`.
/// Returns true, or a kVerifyFailed Error naming `pass`.
[[nodiscard]] support::Expected<bool> postcheck(
    const char* pass, const ir::LoopNest& before, const ir::LoopNest& after,
    const PostcheckOptions& options = {});

/// Same, for passes whose output is a multi-root program.
[[nodiscard]] support::Expected<bool> postcheck(
    const char* pass, const ir::LoopNest& before, const ir::Program& after,
    const PostcheckOptions& options = {});

/// Same, for program-to-program passes (root fusion).
[[nodiscard]] support::Expected<bool> postcheck(
    const char* pass, const ir::Program& before, const ir::Program& after,
    const PostcheckOptions& options = {});

}  // namespace coalesce::transform
