#include "transform/scalar_expand.hpp"

#include <algorithm>

#include "analysis/doall.hpp"
#include "support/assert.hpp"
#include "support/strings.hpp"
#include "transform/postcheck.hpp"

namespace coalesce::transform {

using ir::ExprRef;
using ir::Loop;
using ir::LoopNest;
using ir::LoopPtr;
using ir::VarId;

namespace {

/// Rewrites one statement: reads of `scalar` become reads of
/// `array[index]`, scalar-assignments to it become element stores.
ir::Stmt expand_stmt(const ir::Stmt& stmt, VarId scalar, VarId array,
                     const ExprRef& index) {
  const ExprRef replacement = ir::array_read(array, {index});
  if (const auto* assign = std::get_if<ir::AssignStmt>(&stmt)) {
    ir::AssignStmt out = *assign;
    out.rhs = ir::substitute(out.rhs, scalar, replacement);
    if (auto* access = std::get_if<ir::ArrayAccess>(&out.lhs)) {
      for (auto& sub : access->subscripts) {
        sub = ir::substitute(sub, scalar, replacement);
      }
    } else if (std::get<VarId>(out.lhs) == scalar) {
      out.lhs = ir::ArrayAccess{array, {index}};
    }
    return out;
  }
  if (const auto* guard = std::get_if<ir::IfPtr>(&stmt)) {
    auto out = std::make_shared<ir::IfStmt>();
    out->condition = ir::substitute((*guard)->condition, scalar, replacement);
    out->then_body.reserve((*guard)->then_body.size());
    for (const ir::Stmt& s : (*guard)->then_body) {
      out->then_body.push_back(expand_stmt(s, scalar, array, index));
    }
    return out;
  }
  const Loop& loop = *std::get<LoopPtr>(stmt);
  auto out = std::make_shared<Loop>();
  out->var = loop.var;
  out->lower = ir::substitute(loop.lower, scalar, replacement);
  out->upper = ir::substitute(loop.upper, scalar, replacement);
  out->step = loop.step;
  out->parallel = loop.parallel;
  out->body.reserve(loop.body.size());
  for (const ir::Stmt& s : loop.body) {
    out->body.push_back(expand_stmt(s, scalar, array, index));
  }
  return out;
}

}  // namespace

support::Expected<LoopNest> expand_scalar(const LoopNest& nest,
                                          VarId scalar) {
  COALESCE_ASSERT(nest.root != nullptr);
  if (nest.symbols.kind(scalar) != ir::SymbolKind::kScalar) {
    return support::make_error(support::ErrorCode::kInvalidArgument,
                               "expand_scalar requires a scalar symbol");
  }
  const Loop& root = *nest.root;
  const auto lo = ir::as_constant(root.lower);
  const auto trips = ir::constant_trip_count(root);
  if (!lo || !trips) {
    return support::make_error(
        support::ErrorCode::kUnsupported,
        "scalar expansion requires constant root bounds");
  }
  const std::vector<VarId> written = ir::scalars_written(root);
  if (std::find(written.begin(), written.end(), scalar) == written.end()) {
    return support::make_error(
        support::ErrorCode::kInvalidArgument,
        support::format("scalar %s is not assigned under the root loop",
                        nest.symbols.name(scalar).c_str()));
  }
  if (!analysis::scalar_privatizable(root, scalar)) {
    return support::make_error(
        support::ErrorCode::kIllegalTransform,
        support::format("scalar %s is read before assigned; its value flows "
                        "in from outside the iteration",
                        nest.symbols.name(scalar).c_str()));
  }

  ir::SymbolTable symbols = nest.symbols;
  std::string array_name = symbols.name(scalar) + "_x";
  while (symbols.lookup(array_name).has_value()) array_name += "x";
  const VarId array =
      symbols.declare(std::move(array_name), ir::SymbolKind::kArray,
                      {std::max<std::int64_t>(*trips, 1)});

  // Element index: the 1-based iteration ordinal of the root variable.
  ExprRef index = ir::var_ref(root.var);
  if (*lo != 1 || root.step != 1) {
    index = ir::add(ir::floor_div(ir::sub(std::move(index),
                                          ir::int_const(*lo)),
                                  ir::int_const(root.step)),
                    ir::int_const(1));
  }
  index = ir::simplify(index);

  auto out = std::make_shared<Loop>();
  out->var = root.var;
  out->lower = root.lower;
  out->upper = root.upper;
  out->step = root.step;
  out->parallel = root.parallel;
  out->body.reserve(root.body.size());
  for (const ir::Stmt& s : root.body) {
    out->body.push_back(expand_stmt(s, scalar, array, index));
  }
  LoopNest result{std::move(symbols), std::move(out)};
  // The scalar's value now lives in the expansion array and the scalar
  // itself goes dead, so final scalar state intentionally differs.
  if (auto checked = postcheck("scalar-expand", nest, result,
                               PostcheckOptions{.compare_scalars = false});
      !checked.ok()) {
    return checked.error();
  }
  return result;
}

support::Expected<ExpandAllResult> expand_all_scalars(const LoopNest& nest) {
  COALESCE_ASSERT(nest.root != nullptr);
  LoopNest current{nest.symbols, ir::clone(*nest.root)};
  std::size_t expanded = 0;
  // Re-scan after each expansion: ids stay valid (expansion only appends).
  while (true) {
    bool progressed = false;
    for (VarId s : ir::scalars_written(*current.root)) {
      if (current.symbols.kind(s) != ir::SymbolKind::kScalar) continue;
      if (!analysis::scalar_privatizable(*current.root, s)) continue;
      auto next = expand_scalar(current, s);
      if (!next.ok()) return next.error();
      current = std::move(next).value();
      ++expanded;
      progressed = true;
      break;
    }
    if (!progressed) break;
  }
  return ExpandAllResult{std::move(current), expanded};
}

}  // namespace coalesce::transform
