// Scalar expansion: replace a per-iteration temporary with an array indexed
// by the loop variable,
//
//   do i { t = A(i); A(i) = B(i); B(i) = t }
//     ==>  do i { T(i) = A(i); A(i) = B(i); B(i) = T(i) }
//
// eliminating the scalar's anti/output dependences. Two uses in this
// library: it makes loops with reused temporaries DOALL-able under
// execution models without privatization, and it removes the scalar "welds"
// that force loop distribution to keep statements together.
#pragma once

#include "ir/stmt.hpp"
#include "support/error.hpp"

namespace coalesce::transform {

/// Expands `scalar` over the nest's root loop. The root must have a
/// constant lower bound; the expansion array is named "<scalar>_x" (
/// uniquified) with one element per root iteration. Fails when `scalar`
/// is not a scalar symbol, is never assigned under the root, or is read
/// before its first assignment in an iteration (the value would have to
/// flow in from outside — expansion cannot represent that).
[[nodiscard]] support::Expected<ir::LoopNest> expand_scalar(
    const ir::LoopNest& nest, ir::VarId scalar);

/// Expands every privatizable scalar written under the root. Returns the
/// rewritten nest and how many scalars were expanded.
struct ExpandAllResult {
  ir::LoopNest nest;
  std::size_t expanded = 0;
};
[[nodiscard]] support::Expected<ExpandAllResult> expand_all_scalars(
    const ir::LoopNest& nest);

}  // namespace coalesce::transform
