#include "transform/stats.hpp"

#include <algorithm>

#include "support/assert.hpp"

namespace coalesce::transform {

namespace {

bool walk(const ir::Loop& loop, std::uint64_t enclosing_instances,
          std::size_t depth, NestStats& stats);

/// Guarded statements are counted as always executing — compute_stats is an
/// upper bound on dynamic counts for guarded code.
bool walk_body(const std::vector<ir::Stmt>& body, std::uint64_t instances,
               std::size_t depth, NestStats& stats) {
  for (const ir::Stmt& s : body) {
    if (const auto* assign = std::get_if<ir::AssignStmt>(&s)) {
      stats.assignment_instances += instances;
      std::uint64_t divisions = ir::division_count(assign->rhs);
      if (const auto* access = std::get_if<ir::ArrayAccess>(&assign->lhs)) {
        for (const auto& sub : access->subscripts)
          divisions += ir::division_count(sub);
      }
      stats.division_ops += divisions * instances;
    } else if (const auto* guard = std::get_if<ir::IfPtr>(&s)) {
      stats.division_ops +=
          ir::division_count((*guard)->condition) * instances;
      if (!walk_body((*guard)->then_body, instances, depth, stats)) {
        return false;
      }
    } else {
      if (!walk(*std::get<ir::LoopPtr>(s), instances, depth + 1, stats)) {
        return false;
      }
    }
  }
  return true;
}

/// Returns false when a loop's trip count is not constant.
bool walk(const ir::Loop& loop, std::uint64_t enclosing_instances,
          std::size_t depth, NestStats& stats) {
  stats.loops += 1;
  stats.max_depth = std::max(stats.max_depth, depth);
  if (loop.parallel) {
    stats.parallel_loops += 1;
    stats.fork_join_points += enclosing_instances;
  }

  const auto trips = ir::constant_trip_count(loop);
  if (!trips.has_value()) return false;
  const std::uint64_t instances =
      enclosing_instances * static_cast<std::uint64_t>(*trips);
  stats.loop_iterations += instances;

  return walk_body(loop.body, instances, depth, stats);
}

}  // namespace

NestStats compute_stats(const ir::LoopNest& nest) {
  auto stats = try_compute_stats(nest);
  COALESCE_ASSERT_MSG(stats.has_value(),
                      "compute_stats requires constant loop bounds");
  return *stats;
}

std::optional<NestStats> try_compute_stats(const ir::LoopNest& nest) {
  COALESCE_ASSERT(nest.root != nullptr);
  NestStats stats;
  if (!walk(*nest.root, 1, 1, stats)) return std::nullopt;
  return stats;
}

}  // namespace coalesce::transform
