// Static transformation metrics (experiment E8): what coalescing does to the
// *shape* of a program — fork/join points, scheduling counters, iteration
// counts, and index-recovery arithmetic — computed without executing it.
#pragma once

#include <cstdint>
#include <optional>

#include "ir/stmt.hpp"

namespace coalesce::transform {

struct NestStats {
  std::size_t loops = 0;           ///< loops in the tree
  std::size_t parallel_loops = 0;  ///< loops marked DOALL
  std::size_t max_depth = 0;       ///< deepest loop nesting

  /// Dynamic instance counts, assuming constant bounds (asserts otherwise):
  /// number of times a parallel loop header is *entered* during execution.
  /// Each entry is one fork/join (and one barrier, and one fresh dispatch
  /// counter) under nested-DOALL execution — the quantity coalescing
  /// collapses to 1 for a perfect parallel band.
  std::uint64_t fork_join_points = 0;
  /// Total loop-body iterations executed across all loops.
  std::uint64_t loop_iterations = 0;
  /// Assignment-statement instances executed (the "useful work" proxy).
  std::uint64_t assignment_instances = 0;
  /// Division-family operations executed by assignments (the index-recovery
  /// cost the transformation introduces; 0 for untransformed nests).
  std::uint64_t division_ops = 0;
};

[[nodiscard]] NestStats compute_stats(const ir::LoopNest& nest);

/// Like compute_stats, but returns nullopt when any loop's trip count is
/// not a compile-time constant (e.g. triangular bounds) instead of
/// asserting.
[[nodiscard]] std::optional<NestStats> try_compute_stats(
    const ir::LoopNest& nest);

}  // namespace coalesce::transform
