#include "transform/strip_mine.hpp"

#include "support/assert.hpp"
#include "support/int_math.hpp"
#include "support/strings.hpp"
#include "transform/postcheck.hpp"

namespace coalesce::transform {

using ir::Loop;
using ir::LoopNest;
using ir::LoopPtr;

support::Expected<LoopNest> strip_mine(const LoopNest& nest,
                                       std::int64_t strip_size) {
  COALESCE_ASSERT(nest.root != nullptr);
  if (strip_size < 1) {
    return support::make_error(support::ErrorCode::kInvalidArgument,
                               "strip size must be >= 1");
  }
  const Loop& loop = *nest.root;
  if (!ir::is_normalized(loop)) {
    return support::make_error(support::ErrorCode::kUnsupported,
                               "strip mining requires a normalized loop");
  }
  const auto n = ir::as_constant(loop.upper);
  if (!n) {
    return support::make_error(support::ErrorCode::kUnsupported,
                               "strip mining requires a constant bound");
  }

  ir::SymbolTable symbols = nest.symbols;
  const ir::VarId strip =
      symbols.fresh_induction(symbols.name(loop.var) + "_s");

  const std::int64_t strips = support::ceil_div(*n, strip_size);

  // Inner: i = (is-1)*S + 1 .. min(is*S, N), keeping the original variable
  // so the body is reused verbatim.
  auto inner = std::make_shared<Loop>();
  inner->var = loop.var;
  inner->lower = ir::simplify(
      ir::add(ir::mul(ir::sub(ir::var_ref(strip), ir::int_const(1)),
                      ir::int_const(strip_size)),
              ir::int_const(1)));
  inner->upper = ir::simplify(ir::min_expr(
      ir::mul(ir::var_ref(strip), ir::int_const(strip_size)),
      ir::int_const(*n)));
  inner->step = 1;
  inner->parallel = false;
  inner->body.reserve(loop.body.size());
  for (const ir::Stmt& s : loop.body) inner->body.push_back(ir::clone(s));

  auto outer = std::make_shared<Loop>();
  outer->var = strip;
  outer->lower = ir::int_const(1);
  outer->upper = ir::int_const(strips);
  outer->step = 1;
  outer->parallel = loop.parallel;
  outer->body.push_back(std::move(inner));

  LoopNest out{std::move(symbols), std::move(outer)};
  if (auto checked = postcheck("strip-mine", nest, out); !checked.ok()) {
    return checked.error();
  }
  return out;
}

}  // namespace coalesce::transform
