// Strip mining: split one loop into an outer loop over strips and an inner
// loop over elements of the strip. The inverse direction of coalescing —
// used as the chunking baseline in the experiments and as the building
// block for comparing "coalesce then chunk" against "strip-mine the nest".
#pragma once

#include <cstdint>

#include "ir/stmt.hpp"
#include "support/error.hpp"

namespace coalesce::transform {

/// Strip-mines the root loop with the given strip size:
///
///   doall i = 1, N          doall is = 1, ceil(N/S)
///     B(i)           ==>      do i = (is-1)*S + 1, min(is*S, N)
///                               B(i)
///
/// The outer loop inherits the parallel flag; the inner strip is sequential.
/// Requires a normalized root (lower 1, step 1) with constant bounds.
[[nodiscard]] support::Expected<ir::LoopNest> strip_mine(
    const ir::LoopNest& nest, std::int64_t strip_size);

}  // namespace coalesce::transform
