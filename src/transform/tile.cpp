#include "transform/tile.hpp"

#include "support/assert.hpp"
#include "support/int_math.hpp"
#include "support/strings.hpp"
#include "transform/postcheck.hpp"

namespace coalesce::transform {

using ir::ExprRef;
using ir::Loop;
using ir::LoopNest;
using ir::LoopPtr;
using ir::VarId;
using support::i64;

support::Expected<LoopNest> tile2(const LoopNest& nest, i64 tile_i,
                                  i64 tile_j) {
  COALESCE_ASSERT(nest.root != nullptr);
  if (tile_i < 1 || tile_j < 1) {
    return support::make_error(support::ErrorCode::kInvalidArgument,
                               "tile sizes must be >= 1");
  }
  const auto band = ir::parallel_band(*nest.root);
  if (band.size() < 2) {
    return support::make_error(
        support::ErrorCode::kIllegalTransform,
        "tiling needs a parallel band of depth >= 2 at the root");
  }
  const Loop* outer = band[0];
  const Loop* inner = band[1];
  for (const Loop* loop : {outer, inner}) {
    if (!ir::is_normalized(*loop) ||
        !ir::as_constant(loop->upper).has_value()) {
      return support::make_error(
          support::ErrorCode::kUnsupported,
          "tiling requires normalized levels with constant bounds "
          "(run normalize_nest first)");
    }
  }
  const i64 n = *ir::as_constant(outer->upper);
  const i64 m = *ir::as_constant(inner->upper);

  ir::SymbolTable symbols = nest.symbols;
  const VarId it = symbols.fresh_induction(symbols.name(outer->var) + "_t");
  const VarId jt = symbols.fresh_induction(symbols.name(inner->var) + "_t");

  auto strip_bounds = [](VarId tile_var, i64 tile, i64 extent)
      -> std::pair<ExprRef, ExprRef> {
    // (t-1)*T + 1 .. min(t*T, extent)
    ExprRef lower = ir::simplify(
        ir::add(ir::mul(ir::sub(ir::var_ref(tile_var), ir::int_const(1)),
                        ir::int_const(tile)),
                ir::int_const(1)));
    ExprRef upper = ir::simplify(ir::min_expr(
        ir::mul(ir::var_ref(tile_var), ir::int_const(tile)),
        ir::int_const(extent)));
    return {std::move(lower), std::move(upper)};
  };

  // Innermost: the original inner loop over its strip.
  auto [j_lo, j_hi] = strip_bounds(jt, tile_j, m);
  auto j_loop = std::make_shared<Loop>();
  j_loop->var = inner->var;
  j_loop->lower = std::move(j_lo);
  j_loop->upper = std::move(j_hi);
  j_loop->step = 1;
  j_loop->parallel = false;  // intra-tile: serial by design
  j_loop->body.reserve(inner->body.size());
  for (const ir::Stmt& s : inner->body) j_loop->body.push_back(ir::clone(s));

  auto [i_lo, i_hi] = strip_bounds(it, tile_i, n);
  auto i_loop = std::make_shared<Loop>();
  i_loop->var = outer->var;
  i_loop->lower = std::move(i_lo);
  i_loop->upper = std::move(i_hi);
  i_loop->step = 1;
  i_loop->parallel = false;
  i_loop->body.push_back(std::move(j_loop));

  auto jt_loop = std::make_shared<Loop>();
  jt_loop->var = jt;
  jt_loop->lower = ir::int_const(1);
  jt_loop->upper = ir::int_const(support::ceil_div(m, tile_j));
  jt_loop->step = 1;
  jt_loop->parallel = true;
  jt_loop->body.push_back(std::move(i_loop));

  auto it_loop = std::make_shared<Loop>();
  it_loop->var = it;
  it_loop->lower = ir::int_const(1);
  it_loop->upper = ir::int_const(support::ceil_div(n, tile_i));
  it_loop->step = 1;
  it_loop->parallel = true;
  it_loop->body.push_back(std::move(jt_loop));

  LoopNest out{std::move(symbols), std::move(it_loop)};
  if (auto checked = postcheck("tile2", nest, out); !checked.ok()) {
    return checked.error();
  }
  return out;
}

support::Expected<CoalesceResult> tile_and_coalesce(
    const LoopNest& nest, i64 tile_i, i64 tile_j,
    const CoalesceOptions& options) {
  auto tiled = tile2(nest, tile_i, tile_j);
  if (!tiled.ok()) return tiled.error();
  CoalesceOptions opts = options;
  opts.levels = 2;  // fuse exactly the inter-tile band
  return coalesce_nest(tiled.value(), opts);
}

}  // namespace coalesce::transform
