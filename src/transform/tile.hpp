// Tiling (blocking) of a 2-deep DOALL band, and the tile-then-coalesce
// composition.
//
//   doall i = 1, N {                doall it = 1, ceil(N/tx) {
//     doall j = 1, M {       ==>      doall jt = 1, ceil(M/ty) {
//       B(i, j);                        do i = (it-1)*tx+1, min(it*tx, N) {
//     }                                   do j = (jt-1)*ty+1, min(jt*ty, M) {
//   }                                       B(i, j); } } } }
//
// Both original levels being DOALL makes any iteration reordering legal, so
// tiling needs no dependence test beyond the band's existing flags. The
// inter-tile band is itself a perfect rectangular DOALL band — coalescing
// it (tile_and_coalesce) yields a single loop over tiles, which is exactly
// chunked self-scheduling expressed as a source transformation: each
// coalesced iteration owns a tx*ty block with unit-stride interior loops.
#pragma once

#include <cstdint>

#include "ir/stmt.hpp"
#include "support/error.hpp"
#include "transform/coalesce.hpp"

namespace coalesce::transform {

/// Tiles the outer two levels of the maximal parallel band. Requires the
/// band to be >= 2 deep, normalized (lower 1, step 1), with constant
/// bounds. Tile sizes must be >= 1 (they need not divide the extents).
[[nodiscard]] support::Expected<ir::LoopNest> tile2(const ir::LoopNest& nest,
                                                    std::int64_t tile_i,
                                                    std::int64_t tile_j);

/// tile2 followed by coalescing the inter-tile band: one parallel loop over
/// tiles, serial unit-stride loops inside each tile.
[[nodiscard]] support::Expected<CoalesceResult> tile_and_coalesce(
    const ir::LoopNest& nest, std::int64_t tile_i, std::int64_t tile_j,
    const CoalesceOptions& options = {});

}  // namespace coalesce::transform
