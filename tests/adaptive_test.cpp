// Tests for the adaptive schedule controller behind Schedule::kAuto.
//
// The controller is deterministic — a pure function of its resolve/report
// call sequence — so the unit tests drive it with synthetic ForStats and
// pin the state machine down exactly: explore order, settling, drift
// retuning, stale-epoch drops, and LRU eviction. The launch-surface tests
// then check the redesigned kAuto entry points end to end: run() and
// Engine::submit resolve kAuto to a dispatchable schedule, feedback trains
// the controller, and results stay bit-exact against a static schedule.
#include <gtest/gtest.h>

#include <cstdint>
#include <numeric>
#include <string>
#include <vector>

#include "index/coalesced_space.hpp"
#include "runtime/adaptive.hpp"
#include "runtime/engine.hpp"
#include "runtime/launch.hpp"
#include "runtime/thread_pool.hpp"
#include "support/int_math.hpp"

namespace coalesce::runtime {
namespace {

using support::i64;

/// A completed run: `iters` iterations on one worker in `wall_s` seconds.
ForStats completed_stats(double wall_s, std::uint64_t iters) {
  ForStats stats;
  stats.iterations_requested = iters;
  stats.iterations_per_worker = {iters};
  stats.wall_seconds = wall_s;
  return stats;
}

constexpr i64 kTotal = 10'000;
constexpr std::size_t kWorkers = 4;

// ---- candidate menu --------------------------------------------------------

TEST(AdaptiveCandidates, MenuCoversTheScheduleFamilies) {
  const ScheduleParams base{Schedule::kAuto, 1};

  const ScheduleParams c0 =
      AdaptiveController::candidate(0, base, kTotal, kWorkers);
  EXPECT_EQ(c0.kind, Schedule::kChunked);
  EXPECT_EQ(c0.chunk_size, (kTotal + kWorkers - 1) / kWorkers);

  const ScheduleParams c1 =
      AdaptiveController::candidate(1, base, kTotal, kWorkers);
  EXPECT_EQ(c1.kind, Schedule::kChunked);
  EXPECT_EQ(c1.chunk_size, kTotal / (8 * static_cast<i64>(kWorkers)));

  EXPECT_EQ(AdaptiveController::candidate(2, base, kTotal, kWorkers).kind,
            Schedule::kGuided);
  EXPECT_EQ(AdaptiveController::candidate(3, base, kTotal, kWorkers).kind,
            Schedule::kFactoring);
  EXPECT_EQ(AdaptiveController::candidate(4, base, kTotal, kWorkers).kind,
            Schedule::kTrapezoid);
}

TEST(AdaptiveCandidates, ChunkSizesStayPositiveOnTinyTotals) {
  const ScheduleParams base{Schedule::kAuto, 1};
  for (std::size_t c = 0; c < AdaptiveController::kCandidates; ++c) {
    for (const i64 total : {i64{0}, i64{1}, i64{3}, i64{7}}) {
      const ScheduleParams params =
          AdaptiveController::candidate(c, base, total, 8);
      EXPECT_GE(params.chunk_size, 1) << "candidate " << c << " N=" << total;
    }
  }
}

TEST(AdaptiveCandidates, PreservesSerializedAndShardedBits) {
  ScheduleParams base{Schedule::kAuto, 1};
  base.serialized = true;
  base.sharded = true;
  for (std::size_t c = 0; c < AdaptiveController::kCandidates; ++c) {
    const ScheduleParams params =
        AdaptiveController::candidate(c, base, kTotal, kWorkers);
    EXPECT_TRUE(params.serialized) << "candidate " << c;
    EXPECT_TRUE(params.sharded) << "candidate " << c;
  }
}

// ---- resolution ------------------------------------------------------------

TEST(AdaptiveResolve, NonAutoPassesThroughUntouched) {
  AdaptiveController controller;
  const ScheduleParams params{Schedule::kGuided, 7};
  const auto resolution = controller.resolve(params, "k", kTotal, kWorkers);
  EXPECT_EQ(resolution.params.kind, Schedule::kGuided);
  EXPECT_EQ(resolution.params.chunk_size, 7);
  EXPECT_FALSE(resolution.ticket.active());
  EXPECT_EQ(controller.key_count(), 0u);  // non-auto must not allocate keys
}

TEST(AdaptiveResolve, AutoAlwaysReturnsDispatchableParams) {
  AdaptiveController controller;
  const ScheduleParams auto_params{Schedule::kAuto, 1};
  for (int i = 0; i < 20; ++i) {
    const auto resolution =
        controller.resolve(auto_params, "k", kTotal, kWorkers);
    EXPECT_NE(resolution.params.kind, Schedule::kAuto);
    EXPECT_TRUE(resolution.ticket.active());
    const auto dispatcher =
        make_dispatcher(resolution.params, kTotal, kWorkers);
    EXPECT_TRUE(dispatcher.ok()) << dispatcher.error().to_string();
  }
}

TEST(AdaptiveResolve, ColdStartExploresRoundRobin) {
  AdaptiveController controller(AdaptiveConfig{.explore_trials = 2});
  const ScheduleParams auto_params{Schedule::kAuto, 1};
  // With explore_trials = 2 the hand-out order is 0 0 1 1 2 2 3 3 4 4.
  for (std::size_t c = 0; c < AdaptiveController::kCandidates; ++c) {
    for (int trial = 0; trial < 2; ++trial) {
      const auto resolution =
          controller.resolve(auto_params, "k", kTotal, kWorkers);
      EXPECT_EQ(resolution.ticket.candidate, c) << "trial " << trial;
    }
  }
  EXPECT_EQ(controller.hits(), 0u);  // still exploring, nothing settled
}

TEST(AdaptiveResolve, DistinctShapesGetDistinctKeys) {
  AdaptiveController controller;
  const ScheduleParams auto_params{Schedule::kAuto, 1};
  (void)controller.resolve(auto_params, "k", 100, kWorkers);
  (void)controller.resolve(auto_params, "k", 200, kWorkers);
  (void)controller.resolve(auto_params, "k", 100, 2 * kWorkers);
  (void)controller.resolve(auto_params, "other", 100, kWorkers);
  EXPECT_EQ(controller.key_count(), 4u);
}

TEST(AdaptiveResolve, EmptyKeyFallsBackToAnon) {
  AdaptiveController controller;
  (void)controller.resolve({Schedule::kAuto, 1}, "", kTotal, kWorkers);
  const auto snaps = controller.snapshot();
  ASSERT_EQ(snaps.size(), 1u);
  EXPECT_EQ(snaps[0].key.rfind("anon/", 0), 0u) << snaps[0].key;
}

// ---- feedback and settling -------------------------------------------------

/// Runs one full exploration round (explore_trials = 1) where candidate
/// `winner` reports cost 1x and everyone else 10x, then returns the
/// controller's post-settle resolution.
AdaptiveController::Resolution explore_and_settle(
    AdaptiveController& controller, std::size_t winner) {
  const ScheduleParams auto_params{Schedule::kAuto, 1};
  for (std::size_t c = 0; c < AdaptiveController::kCandidates; ++c) {
    const auto resolution =
        controller.resolve(auto_params, "k", kTotal, kWorkers);
    EXPECT_EQ(resolution.ticket.candidate, c);
    const double wall = c == winner ? 0.001 : 0.010;
    controller.report(resolution.ticket, completed_stats(wall, kTotal));
  }
  return controller.resolve(auto_params, "k", kTotal, kWorkers);
}

TEST(AdaptiveFeedback, SettlesOnTheCheapestCandidate) {
  for (std::size_t winner = 0; winner < AdaptiveController::kCandidates;
       ++winner) {
    AdaptiveController controller(AdaptiveConfig{.explore_trials = 1});
    const auto resolution = explore_and_settle(controller, winner);
    EXPECT_EQ(resolution.ticket.candidate, winner);
    EXPECT_EQ(controller.hits(), 1u);

    const auto snaps = controller.snapshot();
    ASSERT_EQ(snaps.size(), 1u);
    EXPECT_TRUE(snaps[0].settled);
    EXPECT_EQ(snaps[0].choice, winner);
    EXPECT_EQ(snaps[0].epoch, 0u);
  }
}

TEST(AdaptiveFeedback, IncompleteRunsReportNothing) {
  AdaptiveController controller(AdaptiveConfig{.explore_trials = 1});
  const ScheduleParams auto_params{Schedule::kAuto, 1};
  const auto resolution =
      controller.resolve(auto_params, "k", kTotal, kWorkers);

  ForStats cancelled = completed_stats(0.001, kTotal);
  cancelled.cancelled = true;
  controller.report(resolution.ticket, cancelled);

  ForStats expired = completed_stats(0.001, kTotal);
  expired.deadline_expired = true;
  controller.report(resolution.ticket, expired);

  ForStats partial = completed_stats(0.001, kTotal);
  partial.iterations_per_worker = {kTotal / 2};  // short of requested
  controller.report(resolution.ticket, partial);

  controller.report(resolution.ticket, completed_stats(0.0, kTotal));

  const auto snaps = controller.snapshot();
  ASSERT_EQ(snaps.size(), 1u);
  for (const double ema : snaps[0].ema_ns_per_iter) {
    EXPECT_LT(ema, 0.0);  // every sample above must have been dropped
  }
}

TEST(AdaptiveFeedback, SettlesEvenWhenSomeCandidatesNeverReported) {
  AdaptiveController controller(AdaptiveConfig{.explore_trials = 1});
  const ScheduleParams auto_params{Schedule::kAuto, 1};
  // Only candidate 2 ever reports back (the rest were cancelled, say).
  for (std::size_t c = 0; c < AdaptiveController::kCandidates; ++c) {
    const auto resolution =
        controller.resolve(auto_params, "k", kTotal, kWorkers);
    if (c == 2) {
      controller.report(resolution.ticket, completed_stats(0.002, kTotal));
    }
  }
  const auto resolution =
      controller.resolve(auto_params, "k", kTotal, kWorkers);
  EXPECT_EQ(resolution.ticket.candidate, 2u);
  EXPECT_EQ(controller.hits(), 1u);
}

TEST(AdaptiveFeedback, SilentExplorationRoundRestartsInsteadOfSettling) {
  AdaptiveController controller(AdaptiveConfig{.explore_trials = 1});
  const ScheduleParams auto_params{Schedule::kAuto, 1};
  // A whole round with zero feedback must not settle on garbage; the
  // cursor wraps and exploration starts over at candidate 0.
  for (std::size_t c = 0; c < AdaptiveController::kCandidates; ++c) {
    (void)controller.resolve(auto_params, "k", kTotal, kWorkers);
  }
  const auto resolution =
      controller.resolve(auto_params, "k", kTotal, kWorkers);
  EXPECT_EQ(resolution.ticket.candidate, 0u);
  EXPECT_EQ(controller.hits(), 0u);
}

TEST(AdaptiveFeedback, DriftTriggersRetuneWithBumpedEpoch) {
  AdaptiveController controller(
      AdaptiveConfig{.explore_trials = 1, .ema_alpha = 1.0});
  const auto settled = explore_and_settle(controller, /*winner=*/2);
  EXPECT_EQ(controller.retunes(), 0u);

  // alpha = 1.0 makes the EMA jump straight to the new sample: 10x the
  // settle-time cost clears retune_factor (1.5) immediately.
  controller.report(settled.ticket, completed_stats(0.010, kTotal));
  EXPECT_EQ(controller.retunes(), 1u);

  const auto snaps = controller.snapshot();
  ASSERT_EQ(snaps.size(), 1u);
  EXPECT_FALSE(snaps[0].settled);
  EXPECT_EQ(snaps[0].epoch, 1u);

  // The next resolve re-enters exploration at candidate 0, new epoch.
  const auto resolution =
      controller.resolve({Schedule::kAuto, 1}, "k", kTotal, kWorkers);
  EXPECT_EQ(resolution.ticket.candidate, 0u);
  EXPECT_EQ(resolution.ticket.epoch, 1u);
}

TEST(AdaptiveFeedback, StaleEpochReportsAreDropped) {
  AdaptiveController controller(
      AdaptiveConfig{.explore_trials = 1, .ema_alpha = 1.0});
  const auto settled = explore_and_settle(controller, /*winner=*/1);
  controller.report(settled.ticket, completed_stats(0.010, kTotal));
  ASSERT_EQ(controller.retunes(), 1u);

  // `settled.ticket` belongs to epoch 0; the retune moved the key to
  // epoch 1, so reporting through it again must not touch the fresh state.
  controller.report(settled.ticket, completed_stats(0.0001, kTotal));
  const auto snaps = controller.snapshot();
  ASSERT_EQ(snaps.size(), 1u);
  for (const double ema : snaps[0].ema_ns_per_iter) {
    EXPECT_LT(ema, 0.0);
  }
}

TEST(AdaptiveFeedback, GoodFeedbackNeverRetunes) {
  AdaptiveController controller(AdaptiveConfig{.explore_trials = 1});
  (void)explore_and_settle(controller, /*winner=*/2);
  const ScheduleParams auto_params{Schedule::kAuto, 1};
  for (int i = 0; i < 50; ++i) {
    const auto resolution =
        controller.resolve(auto_params, "k", kTotal, kWorkers);
    EXPECT_EQ(resolution.ticket.candidate, 2u);
    controller.report(resolution.ticket, completed_stats(0.001, kTotal));
  }
  EXPECT_EQ(controller.retunes(), 0u);
  EXPECT_GE(controller.hits(), 50u);
}

// ---- eviction --------------------------------------------------------------

TEST(AdaptiveEviction, LeastRecentlyResolvedKeyIsEvicted) {
  AdaptiveController controller(AdaptiveConfig{.max_keys = 2});
  const ScheduleParams auto_params{Schedule::kAuto, 1};
  (void)controller.resolve(auto_params, "a", kTotal, kWorkers);
  (void)controller.resolve(auto_params, "b", kTotal, kWorkers);
  (void)controller.resolve(auto_params, "a", kTotal, kWorkers);  // refresh a
  (void)controller.resolve(auto_params, "c", kTotal, kWorkers);  // evicts b

  EXPECT_EQ(controller.key_count(), 2u);
  const auto snaps = controller.snapshot();
  ASSERT_EQ(snaps.size(), 2u);
  EXPECT_EQ(snaps[0].key.rfind("a/", 0), 0u) << snaps[0].key;
  EXPECT_EQ(snaps[1].key.rfind("c/", 0), 0u) << snaps[1].key;
}

TEST(AdaptiveEviction, TicketOutlivesEviction) {
  AdaptiveController controller(AdaptiveConfig{.max_keys = 1});
  const ScheduleParams auto_params{Schedule::kAuto, 1};
  const auto doomed = controller.resolve(auto_params, "a", kTotal, kWorkers);
  (void)controller.resolve(auto_params, "b", kTotal, kWorkers);  // evicts a
  EXPECT_EQ(controller.key_count(), 1u);
  // The ticket's shared_ptr kept the orphaned KeyState alive; reporting
  // into it must be safe and must not resurrect the key.
  controller.report(doomed.ticket, completed_stats(0.001, kTotal));
  EXPECT_EQ(controller.key_count(), 1u);
}

// ---- launch surface (concurrency) ------------------------------------------

TEST(AdaptiveLaunch, RunResolvesAutoAndCompletes) {
  ThreadPool pool(4);
  std::vector<std::int64_t> out(1000, 0);
  const ForStats stats =
      run(pool, static_cast<i64>(out.size()),
          [&](i64 j) { out[static_cast<std::size_t>(j - 1)] = j; },
          {.schedule = {Schedule::kAuto, 1}});
  EXPECT_TRUE(stats.completed());
  for (std::size_t j = 0; j < out.size(); ++j) {
    EXPECT_EQ(out[j], static_cast<std::int64_t>(j + 1));
  }
}

TEST(AdaptiveLaunch, EngineTrainsItsOwnController) {
  Engine engine(4);
  EXPECT_EQ(engine.adaptive_controller().key_count(), 0u);

  const i64 n = 5000;
  std::vector<double> data(static_cast<std::size_t>(n), 0.0);
  // Enough launches of one recurring shape to explore the full menu
  // (5 candidates x 2 trials) and settle; later submissions are hits.
  const int launches = 16;
  for (int r = 0; r < launches; ++r) {
    auto future = engine.submit(
        n, [&](i64 j) { data[static_cast<std::size_t>(j - 1)] += 1.0; },
        {.schedule = {Schedule::kAuto, 1}});
    const ForStats stats = future.get();
    EXPECT_TRUE(stats.completed()) << "launch " << r;
  }
  EXPECT_EQ(engine.adaptive_controller().key_count(), 1u);
  EXPECT_GT(engine.adaptive_controller().hits(), 0u);

  const auto snaps = engine.adaptive_controller().snapshot();
  ASSERT_EQ(snaps.size(), 1u);
  EXPECT_TRUE(snaps[0].settled);

  for (const double v : data) {
    EXPECT_EQ(v, static_cast<double>(launches));
  }
}

TEST(AdaptiveLaunch, AutoIsBitExactAgainstStaticSchedules) {
  // DOALL bodies write disjoint elements, so the result is schedule
  // independent; sweep shapes and repeats so kAuto cycles through every
  // candidate while the reference uses a plain static schedule.
  ThreadPool pool(4);
  const std::vector<std::vector<i64>> shapes = {
      {64}, {7, 11}, {5, 6, 7}, {1, 13}, {257}};
  for (const auto& extents : shapes) {
    const auto space = index::CoalescedSpace::create(extents).value();
    const std::size_t volume = static_cast<std::size_t>(space.total());

    std::vector<double> expected(volume, 0.0);
    const auto body_into = [&](std::vector<double>& sink) {
      return [&sink, &space](std::span<const i64> idx) {
        double acc = 0.0;
        for (std::size_t k = 0; k < idx.size(); ++k) {
          acc = acc * 31.0 + static_cast<double>(idx[k]);
        }
        // encode_original is 1-based (the paper's j in [1, N]).
        sink[static_cast<std::size_t>(space.encode_original(idx) - 1)] = acc;
      };
    };
    const ForStats ref = run(pool, space, body_into(expected),
                             {.schedule = {Schedule::kStaticBlock, 1}});
    ASSERT_TRUE(ref.completed());

    // Same shape resolved repeatedly: exploration hands out every
    // candidate across these repeats (default explore_trials = 2).
    for (int repeat = 0; repeat < 12; ++repeat) {
      std::vector<double> actual(volume, 0.0);
      const ForStats stats = run(pool, space, body_into(actual),
                                 {.schedule = {Schedule::kAuto, 1}});
      ASSERT_TRUE(stats.completed());
      EXPECT_EQ(actual, expected)
          << "shape " << extents.size() << "D repeat " << repeat;
    }
  }
}

TEST(AdaptiveLaunch, AutoComposesWithReduction) {
  ThreadPool pool(4);
  const i64 n = 4096;
  const ReduceResult result = run_sum(
      pool, n, [](i64 j) { return static_cast<double>(j); },
      {.schedule = {Schedule::kAuto, 1}});
  EXPECT_TRUE(result.stats.completed());
  EXPECT_DOUBLE_EQ(result.value,
                   static_cast<double>(n) * static_cast<double>(n + 1) / 2.0);
}

}  // namespace
}  // namespace coalesce::runtime
