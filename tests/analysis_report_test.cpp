// Tests for the analysis report renderers (text + DOT).
#include <gtest/gtest.h>

#include "analysis/report.hpp"
#include "ir/builder.hpp"

namespace coalesce::analysis {
namespace {

TEST(Report, TextListsDependencesAndVerdicts) {
  ir::LoopNest nest = ir::make_matmul(4, 4, 4);
  const auto report = analyze_parallelism(nest);
  const std::string text = render_report(nest, report);
  EXPECT_NE(text.find("dependences:"), std::string::npos);
  EXPECT_NE(text.find("flow   C"), std::string::npos);
  EXPECT_NE(text.find("distance (0, 0)"), std::string::npos);
  EXPECT_NE(text.find("i        DOALL"), std::string::npos);
  EXPECT_NE(text.find("k        serial"), std::string::npos);
  EXPECT_NE(text.find("may be carried"), std::string::npos);
}

TEST(Report, DirectionVectorsRendered) {
  ir::LoopNest nest = ir::make_recurrence(8);
  const auto report = analyze_parallelism(nest);
  const std::string text = render_report(nest, report);
  EXPECT_NE(text.find("direction (<)"), std::string::npos);
}

TEST(DirectionString, AllSymbolClasses) {
  Dependence dep;
  dep.distance = {std::optional<std::int64_t>{0},
                  std::optional<std::int64_t>{2},
                  std::optional<std::int64_t>{-1}, std::nullopt};
  EXPECT_EQ(dep.direction_string(), "(=, <, >, *)");
  dep.distance.clear();
  EXPECT_EQ(dep.direction_string(), "()");
}

TEST(Report, UnknownDistancesRenderAsStars) {
  ir::LoopNest nest = ir::make_matmul(4, 4, 4);
  const auto report = analyze_parallelism(nest);
  const std::string text = render_report(nest, report);
  EXPECT_NE(text.find("(0, 0, *)"), std::string::npos);
}

TEST(Report, ReductionUpgradeAppended) {
  ir::LoopNest nest = ir::make_matmul(4, 4, 4);
  const auto report = analyze_with_reductions(nest);
  const std::string text = render_report(nest, report);
  EXPECT_NE(text.find("reductions: 1"), std::string::npos);
  EXPECT_NE(text.find("C[...] += ..."), std::string::npos);
  EXPECT_NE(text.find("foldable at {k}"), std::string::npos);
  EXPECT_NE(text.find("loop k: parallelizable AS REDUCTION"),
            std::string::npos);
}

TEST(Report, CleanNestReportsNoBlockers) {
  ir::LoopNest nest = ir::make_rectangular_witness({3, 4});
  const auto report = analyze_parallelism(nest);
  const std::string text = render_report(nest, report);
  EXPECT_EQ(text.find("serial"), std::string::npos);
  EXPECT_NE(text.find("DOALL"), std::string::npos);
}

TEST(Dot, WellFormedGraphWithStyledEdges) {
  ir::LoopNest nest = ir::make_matmul(4, 4, 4);
  const std::string dot = dependence_graph_dot(nest);
  EXPECT_EQ(dot.find("digraph dependences {"), 0u);
  EXPECT_NE(dot.find("}"), std::string::npos);
  // Node for each statement/loop header, labelled with source text.
  EXPECT_NE(dot.find("C[i][j] = 0;"), std::string::npos);
  EXPECT_NE(dot.find("doall j"), std::string::npos);
  // Flow solid, anti dashed, output dotted.
  EXPECT_NE(dot.find("style=solid"), std::string::npos);
  EXPECT_NE(dot.find("style=dashed"), std::string::npos);
  EXPECT_NE(dot.find("style=dotted"), std::string::npos);
  // Quotes in labels are escaped (no raw quote-in-quote).
  EXPECT_EQ(dot.find("\"\""), std::string::npos);
}

TEST(Dot, IndependentNestHasNoEdges) {
  ir::LoopNest nest = ir::make_rectangular_witness({4, 4});
  const std::string dot = dependence_graph_dot(nest);
  EXPECT_EQ(dot.find("->"), std::string::npos);
}

TEST(Dot, EveryEdgeEndpointIsADeclaredNode) {
  for (const auto& nest :
       {ir::make_matmul(3, 3, 3), ir::make_pi_strips(3, 4),
        ir::make_pivot_update(5, 2), ir::make_recurrence(6)}) {
    const std::string dot = dependence_graph_dot(nest);
    // Parse naive: every "sN ->" or "-> sN" must have a matching
    // "sN [label=" declaration.
    std::size_t pos = 0;
    while ((pos = dot.find("s", pos)) != std::string::npos) {
      if (pos > 0 && (dot[pos - 1] == ' ' || dot[pos - 1] == '>')) {
        std::size_t end = pos + 1;
        while (end < dot.size() && std::isdigit(dot[end])) ++end;
        if (end > pos + 1) {
          const std::string node = dot.substr(pos, end - pos);
          EXPECT_NE(dot.find(node + " [label="), std::string::npos)
              << node << " undeclared in:\n" << dot;
        }
      }
      ++pos;
    }
  }
}

}  // namespace
}  // namespace coalesce::analysis
