// Tests for the dependence analyzer and DOALL legality: the soundness
// foundation under the coalescing transformation.
#include <gtest/gtest.h>

#include "analysis/contiguity.hpp"
#include "analysis/dependence.hpp"
#include "analysis/doall.hpp"
#include "analysis/subscript.hpp"
#include "ir/builder.hpp"

namespace coalesce::analysis {
namespace {

using ir::int_const;
using ir::LoopNest;
using ir::NestBuilder;
using ir::VarId;
using ir::var_ref;

/// Finds the verdict for the loop with the given induction-variable name.
const LoopVerdict& verdict_for(const ParallelismReport& report,
                               const LoopNest& nest, const char* name) {
  const VarId v = nest.symbols.lookup(name).value();
  for (const auto& lv : report.loops) {
    if (lv.loop->var == v) return lv;
  }
  ADD_FAILURE() << "no verdict for loop " << name;
  static LoopVerdict dummy;
  return dummy;
}

// ---- reference collection ---------------------------------------------------

TEST(Subscripts, CollectsReadsAndWrites) {
  const LoopNest nest = ir::make_matmul(4, 5, 6);
  const auto refs = collect_array_refs(*nest.root);
  // init: write C. accumulate: reads C, A, B + write C.
  std::size_t writes = 0, reads = 0;
  for (const auto& r : refs) {
    (r.kind == RefKind::kWrite ? writes : reads) += 1;
  }
  EXPECT_EQ(writes, 2u);
  EXPECT_EQ(reads, 3u);
}

TEST(Subscripts, AffineViewsExtracted) {
  const LoopNest nest = ir::make_gauss_jordan_backsolve(4, 3);
  const auto refs = collect_array_refs(*nest.root);
  for (const auto& r : refs) {
    for (const auto& sub : r.subscripts) {
      EXPECT_TRUE(sub.has_value());  // all subscripts here are affine
    }
  }
}

TEST(Subscripts, ConstantBoundsExtracted) {
  const LoopNest nest = ir::make_rectangular_witness({7});
  const auto cb = constant_bounds(*nest.root);
  ASSERT_TRUE(cb.has_value());
  EXPECT_EQ(cb->lower, 1);
  EXPECT_EQ(cb->upper, 7);
}

// ---- pairwise tests ----------------------------------------------------------

TEST(Dependence, DistinctColumnsProvenIndependent) {
  // A(i, 1) = A(i, 2): ZIV on dim 2 proves independence.
  NestBuilder b;
  const VarId a = b.array("A", {8, 2});
  const VarId i = b.begin_parallel_loop("i", 1, 8);
  b.assign(b.element_expr(a, {var_ref(i), int_const(1)}),
           ir::array_read(a, {var_ref(i), int_const(2)}));
  b.end_loop();
  const LoopNest nest = b.build();
  EXPECT_TRUE(compute_dependences(*nest.root).empty());
}

TEST(Dependence, RecurrenceHasCarriedFlowDistanceOne) {
  const LoopNest nest = ir::make_recurrence(10);
  const auto deps = compute_dependences(*nest.root);
  ASSERT_FALSE(deps.empty());
  bool found = false;
  for (const auto& dep : deps) {
    if (dep.kind != DepKind::kFlow) continue;
    ASSERT_EQ(dep.distance.size(), 1u);
    ASSERT_TRUE(dep.distance[0].has_value());
    EXPECT_EQ(std::abs(*dep.distance[0]), 1);
    EXPECT_TRUE(dep.may_be_carried_at(0));
    found = true;
  }
  EXPECT_TRUE(found);
}

TEST(Dependence, GcdTestDisprovesOffsetStrideConflict) {
  // A(2i) = A(2i+1): 2i == 2i'+1 has no integer solution (gcd 2 ∤ 1).
  NestBuilder b;
  const VarId a = b.array("A", {50});
  const VarId i = b.begin_parallel_loop("i", 1, 20);
  b.assign(
      b.element_expr(a, {ir::mul(int_const(2), var_ref(i))}),
      ir::array_read(a, {ir::add(ir::mul(int_const(2), var_ref(i)),
                                 int_const(1))}));
  b.end_loop();
  const LoopNest nest = b.build();
  EXPECT_TRUE(compute_dependences(*nest.root).empty());
}

TEST(Dependence, BanerjeeDisprovesOutOfRangeShift) {
  // A(i) = A(i + 100) with i in 1..20: ranges do not overlap.
  NestBuilder b;
  const VarId a = b.array("A", {200});
  const VarId i = b.begin_parallel_loop("i", 1, 20);
  b.assign(b.element(a, {i}),
           ir::array_read(a, {ir::add(var_ref(i), int_const(100))}));
  b.end_loop();
  const LoopNest nest = b.build();
  EXPECT_TRUE(compute_dependences(*nest.root).empty());
}

TEST(Dependence, InRangeShiftIsCarried) {
  // A(i) = A(i + 3), i in 1..20: anti dependence, distance 3.
  NestBuilder b;
  const VarId a = b.array("A", {30});
  const VarId i = b.begin_parallel_loop("i", 1, 20);
  b.assign(b.element(a, {i}),
           ir::array_read(a, {ir::add(var_ref(i), int_const(3))}));
  b.end_loop();
  const LoopNest nest = b.build();
  const auto deps = compute_dependences(*nest.root);
  ASSERT_FALSE(deps.empty());
  bool carried = false;
  for (const auto& dep : deps) carried = carried || dep.may_be_carried_at(0);
  EXPECT_TRUE(carried);
}

TEST(Dependence, MatmulReductionCarriedOnlyByK) {
  LoopNest nest = ir::make_matmul(4, 4, 4);
  const auto report = analyze_parallelism(nest);
  EXPECT_TRUE(verdict_for(report, nest, "i").parallelizable);
  EXPECT_TRUE(verdict_for(report, nest, "j").parallelizable);
  EXPECT_FALSE(verdict_for(report, nest, "k").parallelizable);
}

TEST(Dependence, SivInconsistentDistancesProveIndependence) {
  // A(i, i) = A(i - 1, i - 2): dim1 demands distance 1 at i, dim2 demands 2.
  NestBuilder b;
  const VarId a = b.array("A", {20, 20});
  const VarId i = b.begin_parallel_loop("i", 3, 18);
  b.assign(b.element_expr(a, {var_ref(i), var_ref(i)}),
           ir::array_read(a, {ir::sub(var_ref(i), int_const(1)),
                              ir::sub(var_ref(i), int_const(2))}));
  b.end_loop();
  const LoopNest nest = b.build();
  EXPECT_TRUE(compute_dependences(*nest.root).empty());
}

TEST(Dependence, LoopIndependentIntraStatement) {
  // C(i) = C(i) + 1: read and write same element in one iteration only.
  NestBuilder b;
  const VarId c = b.array("C", {8});
  const VarId i = b.begin_parallel_loop("i", 1, 8);
  b.assign(b.element(c, {i}), ir::add(b.read(c, {i}), int_const(1)));
  b.end_loop();
  const LoopNest nest = b.build();
  const auto deps = compute_dependences(*nest.root);
  for (const auto& dep : deps) {
    EXPECT_TRUE(dep.is_loop_independent());
    EXPECT_FALSE(dep.may_be_carried_at(0));
  }
}

TEST(Dependence, NonAffineSubscriptIsConservative) {
  // A(B-indexed) writes: subscript is an array read -> must stay kMaybe.
  NestBuilder b;
  const VarId a = b.array("A", {10});
  const VarId idx = b.array("IDX", {10});
  const VarId i = b.begin_parallel_loop("i", 1, 10);
  b.assign(b.element_expr(a, {ir::array_read(idx, {var_ref(i)})}),
           int_const(1));
  b.end_loop();
  const LoopNest nest = b.build();
  const auto deps = compute_dependences(*nest.root);
  ASSERT_FALSE(deps.empty());
  bool maybe_carried = false;
  for (const auto& dep : deps) {
    if (dep.answer == DepAnswer::kMaybe && dep.may_be_carried_at(0)) {
      maybe_carried = true;
    }
  }
  EXPECT_TRUE(maybe_carried);
}

TEST(Dependence, BanerjeeBoundaryExactlyOutOfReach) {
  // A(2i) = A(2i + 8), i in 1..3: max |2i - 2i'| = 4 < 8 -> independent.
  NestBuilder b;
  const VarId a = b.array("A", {20});
  const VarId i = b.begin_parallel_loop("i", 1, 3);
  b.assign(
      b.element_expr(a, {ir::mul(int_const(2), var_ref(i))}),
      ir::array_read(a, {ir::add(ir::mul(int_const(2), var_ref(i)),
                                 int_const(8))}));
  b.end_loop();
  const LoopNest nest = b.build();
  EXPECT_TRUE(compute_dependences(*nest.root).empty());

  // Same with offset 4: reachable (i=1 writes A(2)... i'=3 reads A(2*3+4)?
  // 2i = 2i' + 4 -> i = i' + 2: i=3, i'=1 works -> dependence.
  NestBuilder b2;
  const VarId a2 = b2.array("A", {20});
  const VarId i2 = b2.begin_parallel_loop("i", 1, 3);
  b2.assign(
      b2.element_expr(a2, {ir::mul(int_const(2), var_ref(i2))}),
      ir::array_read(a2, {ir::add(ir::mul(int_const(2), var_ref(i2)),
                                  int_const(4))}));
  b2.end_loop();
  const LoopNest nest2 = b2.build();
  EXPECT_FALSE(compute_dependences(*nest2.root).empty());
}

TEST(Dependence, WeakSivDifferentCoefficientsStaysConservative) {
  // A(2i) = A(i): gcd(2,1)=1 divides 0 and ranges overlap: kMaybe, serial.
  NestBuilder b;
  const VarId a = b.array("A", {30});
  const VarId i = b.begin_parallel_loop("i", 1, 10);
  b.assign(b.element_expr(a, {ir::mul(int_const(2), var_ref(i))}),
           b.read(a, {i}));
  b.end_loop();
  LoopNest nest = b.build();
  const auto report = analyze_parallelism(nest);
  EXPECT_FALSE(verdict_for(report, nest, "i").parallelizable);
}

TEST(Dependence, SteppedLatticeDistanceConversion) {
  // Step 2, offset 2: value distance 2 = 1 iteration -> carried, serial.
  NestBuilder b;
  const VarId a = b.array("A", {30});
  const VarId i = b.begin_parallel_loop("i", 3, 21, 2);
  b.assign(b.element(a, {i}),
           ir::array_read(a, {ir::sub(var_ref(i), int_const(2))}));
  b.end_loop();
  LoopNest nest = b.build();
  EXPECT_FALSE(
      verdict_for(analyze_parallelism(nest), nest, "i").parallelizable);

  // Step 3, offset 2: 2 is not a multiple of 3 -> no two lattice points
  // conflict -> DOALL.
  NestBuilder b2;
  const VarId a2 = b2.array("A", {30});
  const VarId i2 = b2.begin_parallel_loop("i", 3, 21, 3);
  b2.assign(b2.element(a2, {i2}),
            ir::array_read(a2, {ir::sub(var_ref(i2), int_const(2))}));
  b2.end_loop();
  LoopNest nest2 = b2.build();
  EXPECT_TRUE(
      verdict_for(analyze_parallelism(nest2), nest2, "i").parallelizable);
}

TEST(Dependence, SymbolicParamOffsetsAreConservative) {
  // A(i + n) = A(i): the difference leaves an unresolved n term -> kMaybe.
  NestBuilder b;
  const VarId n = b.param("n");
  const VarId a = b.array("A", {40});
  const VarId i = b.begin_parallel_loop("i", 1, 10);
  b.assign(b.element_expr(a, {ir::add(var_ref(i), var_ref(n))}),
           b.read(a, {i}));
  b.end_loop();
  LoopNest nest = b.build();
  EXPECT_FALSE(
      verdict_for(analyze_parallelism(nest), nest, "i").parallelizable);

  // Equal symbolic offsets on both sides cancel: A(i+n) = A(i+n) + 1 is a
  // loop-independent self dependence -> DOALL.
  NestBuilder b2;
  const VarId n2 = b2.param("n");
  const VarId a2 = b2.array("A", {40});
  const VarId i2 = b2.begin_parallel_loop("i", 1, 10);
  b2.assign(
      b2.element_expr(a2, {ir::add(var_ref(i2), var_ref(n2))}),
      ir::add(ir::array_read(a2, {ir::add(var_ref(i2), var_ref(n2))}),
              int_const(1)));
  b2.end_loop();
  LoopNest nest2 = b2.build();
  EXPECT_TRUE(
      verdict_for(analyze_parallelism(nest2), nest2, "i").parallelizable);
}

// ---- scalar privatization -----------------------------------------------------

TEST(ScalarPrivatization, SwapTempIsPrivatizable) {
  // t = A(i); A(i) = B(i); B(i) = t — the scalar-expansion classic.
  NestBuilder b;
  const VarId a = b.array("A", {8});
  const VarId bb = b.array("B", {8});
  const VarId t = b.scalar("t");
  const VarId i = b.begin_parallel_loop("i", 1, 8);
  b.assign(t, b.read(a, {i}));
  b.assign(b.element(a, {i}), b.read(bb, {i}));
  b.assign(b.element(bb, {i}), var_ref(t));
  b.end_loop();
  LoopNest nest = b.build();
  EXPECT_TRUE(scalar_privatizable(*nest.root, t));
  const auto report = analyze_parallelism(nest);
  EXPECT_TRUE(verdict_for(report, nest, "i").parallelizable);
}

TEST(ScalarPrivatization, ReadBeforeWriteBlocks) {
  // A(i) = t; t = A(i): t read before assigned -> not privatizable.
  NestBuilder b;
  const VarId a = b.array("A", {8});
  const VarId t = b.scalar("t");
  const VarId i = b.begin_parallel_loop("i", 1, 8);
  b.assign(b.element(a, {i}), var_ref(t));
  b.assign(t, b.read(a, {i}));
  b.end_loop();
  LoopNest nest = b.build();
  EXPECT_FALSE(scalar_privatizable(*nest.root, t));
  const auto report = analyze_parallelism(nest);
  EXPECT_FALSE(verdict_for(report, nest, "i").parallelizable);
  EXPECT_FALSE(verdict_for(report, nest, "i").blockers.empty());
}

TEST(ScalarPrivatization, AssignmentInsideMaybeEmptyInnerLoopDoesNotCount) {
  // The inner loop assigning t may run zero times; a later read is unsafe...
  // here the read comes after a provably non-empty inner loop instead.
  NestBuilder b;
  const VarId a = b.array("A", {8, 8});
  const VarId t = b.scalar("t");
  const VarId i = b.begin_parallel_loop("i", 1, 8);
  const VarId j = b.begin_loop("j", 1, 8);  // non-empty: 8 iterations
  b.assign(t, b.read(a, {i, j}));
  b.end_loop();
  b.assign(b.element(a, {i, i}), var_ref(t));
  b.end_loop();
  LoopNest nest = b.build();
  EXPECT_TRUE(scalar_privatizable(*nest.root, t));
}

// ---- whole-nest verdicts -------------------------------------------------------

TEST(Doall, WitnessNestFullyParallel) {
  LoopNest nest = ir::make_rectangular_witness({3, 4, 5});
  const auto report = analyze_parallelism(nest);
  for (const auto& lv : report.loops) {
    EXPECT_TRUE(lv.parallelizable);
  }
}

TEST(Doall, GaussJordanBacksolveFullyParallel) {
  LoopNest nest = ir::make_gauss_jordan_backsolve(6, 4);
  const auto report = analyze_parallelism(nest);
  EXPECT_TRUE(verdict_for(report, nest, "i").parallelizable);
  EXPECT_TRUE(verdict_for(report, nest, "j").parallelizable);
}

TEST(Doall, JacobiStepFullyParallel) {
  // Reads A, writes B: no dependence between distinct arrays.
  LoopNest nest = ir::make_jacobi_step(6);
  const auto report = analyze_parallelism(nest);
  EXPECT_TRUE(verdict_for(report, nest, "i").parallelizable);
  EXPECT_TRUE(verdict_for(report, nest, "j").parallelizable);
}

TEST(Doall, RecurrenceStaysSerial) {
  LoopNest nest = ir::make_recurrence(10);
  const auto report = analyze_parallelism(nest);
  EXPECT_FALSE(verdict_for(report, nest, "i").parallelizable);
}

TEST(Doall, PiStripsOuterParallelInnerSerial) {
  LoopNest nest = ir::make_pi_strips(4, 16);
  const auto report = analyze_parallelism(nest);
  EXPECT_TRUE(verdict_for(report, nest, "t").parallelizable);
  // The interval loop accumulates into SUM(t): carried flow dependence.
  EXPECT_FALSE(verdict_for(report, nest, "r").parallelizable);
}

TEST(Doall, AnalyzeAndMarkSetsFlags) {
  // Build matmul with every parallel flag stripped; analysis must prove
  // i and j parallel and keep k serial.
  LoopNest nest = ir::make_matmul(4, 4, 4);
  std::function<void(ir::Loop&)> strip = [&](ir::Loop& loop) {
    loop.parallel = false;
    for (auto& s : loop.body) {
      if (auto* inner = std::get_if<ir::LoopPtr>(&s)) strip(**inner);
    }
  };
  strip(*nest.root);
  analyze_and_mark(nest);
  const auto band = ir::parallel_band(*nest.root);
  EXPECT_EQ(band.size(), 2u);  // i, j proven parallel; k not
}

TEST(Doall, JacobiInPlaceIsNotParallel) {
  // In-place relaxation A(i,j) = avg(A(i±1,j),...) carries dependences.
  NestBuilder b;
  const VarId a = b.array("A", {10, 10});
  const VarId i = b.begin_parallel_loop("i", 2, 9);
  const VarId j = b.begin_parallel_loop("j", 2, 9);
  b.assign(b.element(a, {i, j}),
           ir::array_read(a, {ir::sub(var_ref(i), int_const(1)), var_ref(j)}));
  b.end_loop();
  b.end_loop();
  LoopNest nest = b.build();
  const auto report = analyze_parallelism(nest);
  EXPECT_FALSE(verdict_for(report, nest, "i").parallelizable);
  // j-level: the dependence has distance (1, 0): carried by i, not j.
  EXPECT_TRUE(verdict_for(report, nest, "j").parallelizable);
}

// ---- negative-coefficient (reversed-traversal) subscripts -------------------

TEST(Dependence, ZivNegativeConstantsProvenIndependent) {
  // A(i, -5) = A(i, -7) after folding: ZIV on distinct negative constants.
  NestBuilder b;
  const VarId a = b.array("A", {8, 16});
  const VarId i = b.begin_parallel_loop("i", 1, 8);
  b.assign(b.element_expr(a, {var_ref(i), ir::neg(int_const(5))}),
           ir::array_read(a, {var_ref(i), ir::neg(int_const(7))}));
  b.end_loop();
  const LoopNest nest = b.build();
  EXPECT_TRUE(compute_dependences(*nest.root).empty());
}

TEST(Dependence, SivNegativeCoefficientCarried) {
  // A(22 - 2i) = A(24 - 2i), i in 1..10: 22-2i == 24-2i' at i = i'+1 ->
  // strong SIV with coefficient -2, |distance| 1, carried.
  NestBuilder b;
  const VarId a = b.array("A", {30});
  const VarId i = b.begin_parallel_loop("i", 1, 10);
  b.assign(b.element_expr(
               a, {ir::sub(int_const(22), ir::mul(int_const(2), var_ref(i)))}),
           ir::array_read(a, {ir::sub(int_const(24),
                                      ir::mul(int_const(2), var_ref(i)))}));
  b.end_loop();
  const LoopNest nest = b.build();
  const auto deps = compute_dependences(*nest.root);
  ASSERT_FALSE(deps.empty());
  bool carried = false;
  for (const auto& dep : deps) {
    if (!dep.may_be_carried_at(0)) continue;
    carried = true;
    ASSERT_EQ(dep.distance.size(), 1u);
    if (dep.distance[0].has_value()) {
      EXPECT_TRUE(*dep.distance[0] == 1 || *dep.distance[0] == -1);
    }
  }
  EXPECT_TRUE(carried);
}

TEST(Dependence, SivNegativeCoefficientGcdDisproven) {
  // A(22 - 2i) = A(23 - 2i): -2i + 22 == -2i' + 23 needs gcd 2 | 1 -> never.
  NestBuilder b;
  const VarId a = b.array("A", {30});
  const VarId i = b.begin_parallel_loop("i", 1, 10);
  b.assign(b.element_expr(
               a, {ir::sub(int_const(22), ir::mul(int_const(2), var_ref(i)))}),
           ir::array_read(a, {ir::sub(int_const(23),
                                      ir::mul(int_const(2), var_ref(i)))}));
  b.end_loop();
  const LoopNest nest = b.build();
  EXPECT_TRUE(compute_dependences(*nest.root).empty());
}

TEST(Dependence, OpposedCoefficientsOutOfRange) {
  // A(i) = A(40 - i), i in 1..10: i == 40 - i' needs i + i' == 40, but
  // max(i + i') == 20 -> Banerjee range disproves it.
  NestBuilder b;
  const VarId a = b.array("A", {40});
  const VarId i = b.begin_parallel_loop("i", 1, 10);
  b.assign(b.element(a, {i}),
           ir::array_read(a, {ir::sub(int_const(40), var_ref(i))}));
  b.end_loop();
  const LoopNest nest = b.build();
  EXPECT_TRUE(compute_dependences(*nest.root).empty());
}

// ---- INT64_MAX-adjacent trip counts: overflow must degrade to kMaybe -------
// (The UBSan CI job fails these loudly if any intermediate wraps.)

TEST(Dependence, HugeTripCountStrongSivStaysExact) {
  // A(i) = A(i + 1) with i in 1..INT64_MAX-2: the distance-1 answer fits
  // even though bound arithmetic brushes against the i64 edge.
  NestBuilder b;
  const VarId a = b.array("A", {4});  // never executed; analysis only
  const VarId i = b.begin_parallel_loop("i", 1, INT64_MAX - 2);
  b.assign(b.element(a, {i}),
           ir::array_read(a, {ir::add(var_ref(i), int_const(1))}));
  b.end_loop();
  const LoopNest nest = b.build();
  const auto deps = compute_dependences(*nest.root);
  ASSERT_FALSE(deps.empty());
  EXPECT_TRUE(deps[0].may_be_carried_at(0));
}

TEST(Dependence, HugeTripCountScaledBoundsDegradeToMaybe) {
  // A(2i) = A(3i + 1) with i up to 2^61: Banerjee's coeff * bound products
  // overflow; the test must answer kMaybe (serial), not wrap and "prove"
  // independence.
  NestBuilder b;
  const VarId a = b.array("A", {4});
  const VarId i = b.begin_parallel_loop("i", 1, std::int64_t{1} << 61);
  b.assign(b.element_expr(a, {ir::mul(int_const(2), var_ref(i))}),
           ir::array_read(a, {ir::add(ir::mul(int_const(3), var_ref(i)),
                                      int_const(1))}));
  b.end_loop();
  LoopNest nest = b.build();
  const auto deps = compute_dependences(*nest.root);
  ASSERT_FALSE(deps.empty());
  EXPECT_EQ(deps[0].answer, DepAnswer::kMaybe);
  EXPECT_FALSE(verdict_for(analyze_parallelism(nest), nest, "i").parallelizable);
}

TEST(Dependence, HugeConstantDifferenceDegradesToMaybe) {
  // Subscript constants straddle the i64 range so their difference
  // overflows: the SIV test must refuse to answer, conservatively.
  const std::int64_t huge = std::int64_t{1} << 62;
  NestBuilder b;
  const VarId a = b.array("A", {4});
  const VarId i = b.begin_parallel_loop("i", 1, 10);
  b.assign(b.element_expr(a, {ir::add(var_ref(i), int_const(huge))}),
           ir::array_read(a, {ir::sub(var_ref(i), int_const(huge))}));
  b.end_loop();
  const LoopNest nest = b.build();
  const auto deps = compute_dependences(*nest.root);
  ASSERT_FALSE(deps.empty());
  EXPECT_EQ(deps[0].answer, DepAnswer::kMaybe);
}

TEST(Doall, ReportFindByPointer) {
  LoopNest nest = ir::make_matmul(3, 3, 3);
  const auto report = analyze_parallelism(nest);
  EXPECT_NE(report.find(nest.root.get()), nullptr);
  EXPECT_EQ(report.find(nullptr), nullptr);
}

// ---- access contiguity ------------------------------------------------------

TEST(Contiguity, UnitStrideAxisIsCheapRowStrideAxisIsExpensive) {
  NestBuilder b;
  const VarId a = b.array("A", {64, 64});
  const VarId i = b.begin_parallel_loop("i", 1, 64);
  const VarId j = b.begin_parallel_loop("j", 1, 64);
  b.assign(b.element(a, {i, j}), var_ref(j));
  b.end_loop();
  b.end_loop();
  const auto info = analyze_contiguity(b.build());
  ASSERT_EQ(info.axes.size(), 2u);
  EXPECT_FALSE(info.conservative);
  EXPECT_EQ(info.refs_total, 1u);
  EXPECT_EQ(info.refs_skipped, 0u);
  // i moves A[i][j] by a whole 64-element row: saturated miss, doubled for
  // the write. j moves it by one element: 1/8 of a line, doubled.
  EXPECT_DOUBLE_EQ(info.axes[0].miss_cost, 2.0);
  EXPECT_DOUBLE_EQ(info.axes[1].miss_cost, 0.25);
  EXPECT_EQ(info.axes[0].moving_refs, 1u);
  EXPECT_EQ(info.axes[1].moving_refs, 1u);
  // Most-expensive-first ranking: i outermost, j innermost.
  EXPECT_EQ(info.ranked, (std::vector<std::size_t>{0, 1}));
  EXPECT_EQ(info.innermost(), 1u);
}

TEST(Contiguity, ReadsCostHalfOfWrites) {
  NestBuilder b;
  const VarId a = b.array("A", {64, 64});
  const VarId s = b.scalar("s");
  const VarId i = b.begin_parallel_loop("i", 1, 64);
  const VarId j = b.begin_parallel_loop("j", 1, 64);
  b.assign(ir::LValue{s}, b.read(a, {i, j}));
  b.end_loop();
  b.end_loop();
  const auto info = analyze_contiguity(b.build());
  ASSERT_EQ(info.axes.size(), 2u);
  // Same strides as the write case above, but unweighted.
  EXPECT_DOUBLE_EQ(info.axes[0].miss_cost, 1.0);
  EXPECT_DOUBLE_EQ(info.axes[1].miss_cost, 0.125);
}

TEST(Contiguity, StationaryAxisCostsNothing) {
  NestBuilder b;
  const VarId a = b.array("A", {64});
  const VarId i = b.begin_parallel_loop("i", 1, 64);
  const VarId j = b.begin_parallel_loop("j", 1, 64);
  b.assign(b.element(a, {j}), var_ref(i));
  b.end_loop();
  b.end_loop();
  const auto info = analyze_contiguity(b.build());
  ASSERT_EQ(info.axes.size(), 2u);
  // A[j] does not mention i: stride 0, no misses charged to that axis.
  EXPECT_DOUBLE_EQ(info.axes[0].miss_cost, 0.0);
  EXPECT_EQ(info.axes[0].moving_refs, 0u);
  EXPECT_GT(info.axes[1].miss_cost, 0.0);
}

TEST(Contiguity, TiedRankingKeepsBandOrder) {
  NestBuilder b;
  const VarId a = b.array("A", {32, 32});
  const VarId i = b.begin_parallel_loop("i", 1, 32);
  const VarId j = b.begin_parallel_loop("j", 1, 32);
  b.assign(b.element(a, {i, j}), ir::add(var_ref(i), var_ref(j)));
  const VarId a2 = a;  // same array, transposed access in a second stmt
  b.assign(b.element(a2, {j, i}), var_ref(i));
  b.end_loop();
  b.end_loop();
  const auto info = analyze_contiguity(b.build());
  ASSERT_EQ(info.axes.size(), 2u);
  // Each axis is unit-stride for one write and row-stride for the other:
  // identical totals, so the stable sort keeps band order (identity).
  EXPECT_DOUBLE_EQ(info.axes[0].miss_cost, info.axes[1].miss_cost);
  EXPECT_EQ(info.ranked, (std::vector<std::size_t>{0, 1}));
}

TEST(Contiguity, NonAffineSubscriptFlipsConservative) {
  NestBuilder b;
  const VarId a = b.array("A", {16, 16});
  const VarId i = b.begin_parallel_loop("i", 1, 16);
  const VarId j = b.begin_parallel_loop("j", 1, 16);
  b.assign(b.element_expr(a, {ir::mul(var_ref(i), var_ref(i)), var_ref(j)}),
           int_const(0));
  b.assign(b.element(a, {i, j}), int_const(1));
  b.end_loop();
  b.end_loop();
  const auto info = analyze_contiguity(b.build());
  EXPECT_TRUE(info.conservative);
  EXPECT_EQ(info.refs_total, 2u);
  EXPECT_EQ(info.refs_skipped, 1u);
  // The affine reference still contributes a usable per-axis verdict.
  ASSERT_EQ(info.axes.size(), 2u);
  EXPECT_GT(info.axes[0].miss_cost, info.axes[1].miss_cost);
}

TEST(Contiguity, LoopStepScalesElementStride) {
  NestBuilder b;
  const VarId a = b.array("A", {4096});
  const VarId i = b.begin_parallel_loop("i", 1, 4096, 16);
  b.assign(b.element(a, {i}), var_ref(i));
  b.end_loop();
  const auto info = analyze_contiguity(b.build());
  ASSERT_EQ(info.axes.size(), 1u);
  // Step 16 jumps two cache lines per iteration: saturated, write-weighted.
  EXPECT_DOUBLE_EQ(info.axes[0].miss_cost, 2.0);
}

}  // namespace
}  // namespace coalesce::analysis
