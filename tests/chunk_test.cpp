// Tests for chunk algebra and the self-scheduling chunk-size policies
// (unit, fixed, guided, trapezoid) that both the runtime and the simulator
// consume.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "index/chunk.hpp"

namespace coalesce::index {
namespace {

TEST(Chunk, SizeAndEmptiness) {
  EXPECT_EQ((Chunk{1, 5}).size(), 4);
  EXPECT_TRUE((Chunk{3, 3}).empty());
  EXPECT_FALSE((Chunk{3, 4}).empty());
}

TEST(StaticBlocks, EvenSplit) {
  const auto blocks = static_blocks(12, 4);
  ASSERT_EQ(blocks.size(), 4u);
  for (const auto& b : blocks) EXPECT_EQ(b.size(), 3);
  EXPECT_EQ(blocks[0].first, 1);
  EXPECT_EQ(blocks[3].last, 13);
}

TEST(StaticBlocks, RemainderGoesToLeadingBlocks) {
  const auto blocks = static_blocks(10, 4);
  ASSERT_EQ(blocks.size(), 4u);
  EXPECT_EQ(blocks[0].size(), 3);
  EXPECT_EQ(blocks[1].size(), 3);
  EXPECT_EQ(blocks[2].size(), 2);
  EXPECT_EQ(blocks[3].size(), 2);
}

TEST(StaticBlocks, MorePartsThanWork) {
  const auto blocks = static_blocks(2, 5);
  ASSERT_EQ(blocks.size(), 5u);
  EXPECT_EQ(blocks[0].size(), 1);
  EXPECT_EQ(blocks[1].size(), 1);
  for (std::size_t p = 2; p < 5; ++p) EXPECT_TRUE(blocks[p].empty());
}

TEST(StaticBlocks, CoversExactlyOnce) {
  for (i64 total : {0, 1, 7, 100}) {
    for (i64 parts : {1, 3, 8}) {
      const auto blocks = static_blocks(total, parts);
      std::set<i64> seen;
      for (const auto& b : blocks) {
        for (i64 j = b.first; j < b.last; ++j) {
          EXPECT_TRUE(seen.insert(j).second);
        }
      }
      EXPECT_EQ(seen.size(), static_cast<std::size_t>(total));
    }
  }
}

TEST(StaticCyclic, RoundRobinAssignment) {
  const auto lists = static_cyclic(7, 3);
  ASSERT_EQ(lists.size(), 3u);
  EXPECT_EQ(lists[0], (std::vector<i64>{1, 4, 7}));
  EXPECT_EQ(lists[1], (std::vector<i64>{2, 5}));
  EXPECT_EQ(lists[2], (std::vector<i64>{3, 6}));
}

TEST(ForEachInChunk, VisitsOriginalIndicesInOrder) {
  const auto space = CoalescedSpace::create(std::vector<i64>{3, 4}).value();
  std::vector<std::vector<i64>> visited;
  for_each_in_chunk(space, Chunk{5, 9}, [&](std::span<const i64> idx) {
    visited.emplace_back(idx.begin(), idx.end());
  });
  ASSERT_EQ(visited.size(), 4u);
  EXPECT_EQ(visited[0], (std::vector<i64>{2, 1}));  // j=5
  EXPECT_EQ(visited[1], (std::vector<i64>{2, 2}));
  EXPECT_EQ(visited[2], (std::vector<i64>{2, 3}));
  EXPECT_EQ(visited[3], (std::vector<i64>{2, 4}));  // j=8
}

TEST(ForEachInChunk, EmptyChunkVisitsNothing) {
  const auto space = CoalescedSpace::create(std::vector<i64>{3, 4}).value();
  int count = 0;
  for_each_in_chunk(space, Chunk{5, 5},
                    [&](std::span<const i64>) { ++count; });
  EXPECT_EQ(count, 0);
}

// ---- policies ----------------------------------------------------------------

TEST(Policies, UnitAlwaysOne) {
  UnitPolicy p;
  EXPECT_EQ(p.next_chunk(100), 1);
  EXPECT_EQ(p.next_chunk(1), 1);
}

TEST(Policies, FixedClampsToRemaining) {
  FixedChunkPolicy p(8);
  EXPECT_EQ(p.next_chunk(100), 8);
  EXPECT_EQ(p.next_chunk(5), 5);
}

TEST(Policies, GuidedTakesCeilRemainingOverP) {
  GuidedPolicy p(4);
  EXPECT_EQ(p.next_chunk(100), 25);
  EXPECT_EQ(p.next_chunk(75), 19);   // ceil(75/4)
  EXPECT_EQ(p.next_chunk(3), 1);
  EXPECT_EQ(p.next_chunk(1), 1);
}

TEST(Policies, GuidedRespectsMinChunk) {
  GuidedPolicy p(4, /*min_chunk=*/5);
  EXPECT_EQ(p.next_chunk(100), 25);
  EXPECT_EQ(p.next_chunk(8), 5);   // guided would be 2; floor at 5
  EXPECT_EQ(p.next_chunk(3), 3);   // cannot exceed remaining
}

TEST(DispatchSequence, CoversSpaceExactlyOnce) {
  for (i64 total : {1, 10, 97, 1000}) {
    UnitPolicy unit;
    FixedChunkPolicy fixed(7);
    GuidedPolicy guided(4);
    TrapezoidPolicy tss(total, 4);
    for (ChunkPolicy* p :
         std::initializer_list<ChunkPolicy*>{&unit, &fixed, &guided, &tss}) {
      const auto chunks = dispatch_sequence(*p, total);
      i64 expected_next = 1;
      for (const auto& c : chunks) {
        EXPECT_EQ(c.first, expected_next) << p->name();
        EXPECT_GE(c.size(), 1) << p->name();
        expected_next = c.last;
      }
      EXPECT_EQ(expected_next, total + 1) << p->name();
    }
  }
}

TEST(DispatchSequence, UnitCountEqualsTotal) {
  UnitPolicy p;
  EXPECT_EQ(dispatch_sequence(p, 64).size(), 64u);
}

TEST(DispatchSequence, FixedCountIsCeil) {
  FixedChunkPolicy p(10);
  EXPECT_EQ(dispatch_sequence(p, 95).size(), 10u);  // 9 full + 1 partial
}

TEST(DispatchSequence, GuidedSizesNonIncreasing) {
  GuidedPolicy p(8);
  const auto chunks = dispatch_sequence(p, 10000);
  for (std::size_t i = 1; i < chunks.size(); ++i) {
    EXPECT_LE(chunks[i].size(), chunks[i - 1].size());
  }
}

TEST(DispatchSequence, GuidedDispatchCountIsLogarithmic) {
  // GSS dispatches O(P * ln(N/P)) chunks: dramatically fewer than N.
  const i64 n = 100000;
  const i64 procs = 16;
  GuidedPolicy p(procs);
  const auto chunks = dispatch_sequence(p, n);
  const double bound =
      static_cast<double>(procs) *
          (std::log(static_cast<double>(n) / static_cast<double>(procs)) + 2.0) +
      static_cast<double>(procs);
  EXPECT_LT(static_cast<double>(chunks.size()), bound);
  EXPECT_LT(chunks.size(), 300u);
}

TEST(DispatchSequence, TrapezoidSizesNonIncreasing) {
  TrapezoidPolicy p(10000, 8);
  const auto chunks = dispatch_sequence(p, 10000);
  for (std::size_t i = 1; i + 1 < chunks.size(); ++i) {
    EXPECT_LE(chunks[i].size(), chunks[i - 1].size());
  }
}

TEST(DispatchSequence, TrapezoidFirstChunkIsNOver2P) {
  TrapezoidPolicy p(1000, 5);
  const auto chunks = dispatch_sequence(p, 1000);
  EXPECT_EQ(chunks.front().size(), 100);  // N / (2P)
}

TEST(DispatchSequence, TrapezoidFewerDispatchesThanUnit) {
  TrapezoidPolicy p(10000, 8);
  EXPECT_LT(dispatch_sequence(p, 10000).size(), 200u);
}

}  // namespace
}  // namespace coalesce::index
