// Tests for the C emitter and cost model, including end-to-end integration:
// compile the emitted original and coalesced programs with the host C
// compiler, run both, and demand identical output streams.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

#include "codegen/c_emitter.hpp"
#include "codegen/cost_model.hpp"
#include "ir/builder.hpp"
#include "ir/printer.hpp"
#include "ir/verify.hpp"
#include "transform/coalesce.hpp"
#include "transform/distribute.hpp"

namespace coalesce::codegen {
namespace {

using ir::int_const;
using ir::LoopNest;
using ir::VarId;
using ir::var_ref;

// ---- expression emission -----------------------------------------------------

class EmitExprTest : public ::testing::Test {
 protected:
  ir::SymbolTable symbols;
  VarId i = symbols.declare("i", ir::SymbolKind::kInduction);
  VarId a = symbols.declare("A", ir::SymbolKind::kArray, {10});
};

TEST_F(EmitExprTest, ArithmeticAndPrecedence) {
  const auto e = ir::mul(ir::add(var_ref(i), int_const(1)), int_const(2));
  EXPECT_EQ(emit_expr_c(e, symbols), "(i + INT64_C(1)) * INT64_C(2)");
}

TEST_F(EmitExprTest, DivFamilyUsesHelpers) {
  EXPECT_EQ(emit_expr_c(ir::ceil_div(var_ref(i), int_const(3)), symbols),
            "cg_cdiv(i, INT64_C(3))");
  EXPECT_EQ(emit_expr_c(ir::floor_div(var_ref(i), int_const(3)), symbols),
            "cg_fdiv(i, INT64_C(3))");
  EXPECT_EQ(emit_expr_c(ir::mod(var_ref(i), int_const(3)), symbols),
            "cg_mod(i, INT64_C(3))");
  EXPECT_EQ(emit_expr_c(ir::min_expr(var_ref(i), int_const(3)), symbols),
            "cg_min(i, INT64_C(3))");
}

TEST_F(EmitExprTest, ArrayReadShiftsToZeroBased) {
  const auto e = ir::array_read(a, {ir::add(var_ref(i), int_const(1))});
  EXPECT_EQ(emit_expr_c(e, symbols), "A[i + INT64_C(1) - 1]");
}

// ---- unit emission -------------------------------------------------------------

TEST(EmitC, ContainsKernelArraysAndLoops) {
  const LoopNest nest = ir::make_rectangular_witness({3, 4});
  const std::string src = emit_c(nest);
  EXPECT_NE(src.find("static double OUT[3][4];"), std::string::npos);
  EXPECT_NE(src.find("static void kernel(void)"), std::string::npos);
  EXPECT_NE(src.find("for (int64_t i0 = INT64_C(1); i0 <= INT64_C(3); i0 += 1)"),
            std::string::npos);
  EXPECT_NE(src.find("/* doall */"), std::string::npos);
  EXPECT_NE(src.find("int main(void)"), std::string::npos);
}

TEST(EmitC, OpenMpModeEmitsCollapsePragmas) {
  const LoopNest nest = ir::make_rectangular_witness({3, 4});
  EmitOptions options;
  options.openmp = true;
  const std::string src = emit_c(nest, options);
  // A 2-deep perfect parallel band becomes ONE pragma with collapse(2) —
  // the modern spelling of the paper's transformation.
  EXPECT_NE(src.find("#pragma omp parallel for collapse(2)"),
            std::string::npos);
  EXPECT_EQ(src.find("/* doall */"), std::string::npos);
  // Exactly one pragma: the inner band loop must not repeat it.
  const auto first = src.find("#pragma");
  EXPECT_EQ(src.find("#pragma", first + 1), std::string::npos);
}

TEST(EmitC, OpenMpCollapseDepthMatchesBand) {
  const LoopNest nest = ir::make_rectangular_witness({2, 3, 4});
  EmitOptions options;
  options.openmp = true;
  const std::string src = emit_c(nest, options);
  EXPECT_NE(src.find("collapse(3)"), std::string::npos);
}

TEST(EmitC, OpenMpNoCollapseOnSingleLoopOrCoalescedOutput) {
  EmitOptions options;
  options.openmp = true;
  // Single parallel loop: plain pragma, no collapse clause.
  const LoopNest single = ir::make_rectangular_witness({8});
  const std::string s1 = emit_c(single, options);
  EXPECT_NE(s1.find("#pragma omp parallel for"), std::string::npos);
  EXPECT_EQ(s1.find("collapse"), std::string::npos);
  // Coalesced output is a single loop too (with private recovery vars).
  const auto result =
      transform::coalesce_nest(ir::make_rectangular_witness({3, 4}));
  ASSERT_TRUE(result.ok());
  const std::string s2 = emit_c(result.value().nest, options);
  EXPECT_EQ(s2.find("collapse"), std::string::npos);
  EXPECT_NE(s2.find("private(i0, i1)"), std::string::npos);
}

TEST(EmitC, OpenMpMatmulPragmaOnlyOnTheBand) {
  // matmul: band {i, j} collapses; the serial k loop gets no pragma.
  const LoopNest nest = ir::make_matmul(4, 4, 4);
  EmitOptions options;
  options.openmp = true;
  const std::string src = emit_c(nest, options);
  EXPECT_NE(src.find("collapse(2)"), std::string::npos);
  const auto first = src.find("#pragma");
  EXPECT_EQ(src.find("#pragma", first + 1), std::string::npos);
}

TEST(EmitC, CoalescedKernelDeclaresRecoveredScalars) {
  const LoopNest nest = ir::make_rectangular_witness({3, 4});
  const auto result = transform::coalesce_nest(nest);
  ASSERT_TRUE(result.ok());
  const std::string src = emit_c(result.value().nest);
  EXPECT_NE(src.find("int64_t i0 = 0;"), std::string::npos);
  EXPECT_NE(src.find("int64_t i1 = 0;"), std::string::npos);
  EXPECT_NE(src.find("cg_cdiv"), std::string::npos);
  EXPECT_NE(src.find("cg_fdiv"), std::string::npos);
}

TEST(EmitC, KernelOnlyModeOmitsMain) {
  const LoopNest nest = ir::make_rectangular_witness({2, 2});
  EmitOptions options;
  options.standalone_main = false;
  options.kernel_name = "witness";
  const std::string src = emit_c(nest, options);
  EXPECT_EQ(src.find("int main"), std::string::npos);
  EXPECT_NE(src.find("static void witness(void)"), std::string::npos);
}

// ---- cost model ------------------------------------------------------------------

TEST(CostModel, CountsExpressionOps) {
  ir::SymbolTable symbols;
  const VarId i = symbols.declare("i", ir::SymbolKind::kInduction);
  const VarId a = symbols.declare("A", ir::SymbolKind::kArray, {8});
  const auto e = ir::add(ir::mul(ir::array_read(a, {var_ref(i)}),
                                 int_const(2)),
                         ir::mod(var_ref(i), int_const(3)));
  const OpCounts c = count_ops(e);
  EXPECT_EQ(c.adds, 1u);
  EXPECT_EQ(c.muls, 1u);
  EXPECT_EQ(c.divisions, 1u);
  EXPECT_EQ(c.memory, 1u);
  EXPECT_EQ(c.total(), 4u);
}

TEST(CostModel, BodyOpsExcludeNestedLoops) {
  const LoopNest nest = ir::make_matmul(4, 4, 4);
  // Body of the j loop: the init assignment only (the k loop is nested).
  const auto band = ir::perfect_band(*nest.root);
  const OpCounts c = count_body_ops(*band[1]);
  EXPECT_EQ(c.assigns, 1u);
  EXPECT_EQ(c.memory, 1u);  // store to C
}

TEST(CostModel, CoalescedBodyPaysRecoveryDivisions) {
  const LoopNest nest = ir::make_rectangular_witness({6, 5});
  const auto result = transform::coalesce_nest(nest);
  ASSERT_TRUE(result.ok());
  const OpCounts c = count_body_ops(*result.value().nest.root);
  EXPECT_EQ(c.assigns, 3u);      // 2 recovery + 1 body
  EXPECT_EQ(c.divisions, 3u);    // 2 (outer) + 1 (inner, cdiv/1 folded)
  const OpCounts original = count_body_ops(*ir::perfect_band(*nest.root)[1]);
  EXPECT_EQ(original.divisions, 0u);
}

TEST(CostModel, SummaryMentionsAllClasses) {
  OpCounts c;
  c.adds = 1;
  const std::string s = c.summary();
  EXPECT_NE(s.find("adds=1"), std::string::npos);
  EXPECT_NE(s.find("total=1"), std::string::npos);
}

// ---- locality permutation choice ---------------------------------------------------

/// i-outer walk over A(j,i)-shaped references: the written order strides by
/// N innermost, the reversal is stride 1.
LoopNest transposed_nest(std::int64_t n) {
  ir::NestBuilder b;
  const VarId a = b.array("A", {n, n});
  const VarId out = b.array("B", {n, n});
  const VarId i = b.begin_parallel_loop("i", 1, n);
  const VarId j = b.begin_parallel_loop("j", 1, n);
  b.assign(b.element(out, {j, i}), b.read(a, {j, i}));
  b.end_loop();
  b.end_loop();
  return b.build();
}

TEST(ChoosePermutation, PicksReversalForTransposedAccesses) {
  const auto choice = choose_permutation(transposed_nest(64));
  EXPECT_EQ(choice.perm, (std::vector<std::size_t>{1, 0}));
  EXPECT_TRUE(choice.legal);
  EXPECT_FALSE(choice.conservative);
  EXPECT_LT(choice.cost_after, choice.cost_before);
  EXPECT_TRUE(choice.worthwhile());
}

TEST(ChoosePermutation, KeepsIdentityForContiguousAccesses) {
  ir::NestBuilder b;
  const VarId a = b.array("A", {32, 32});
  const VarId i = b.begin_parallel_loop("i", 1, 32);
  const VarId j = b.begin_parallel_loop("j", 1, 32);
  b.assign(b.element(a, {i, j}), ir::add(var_ref(i), var_ref(j)));
  b.end_loop();
  b.end_loop();
  const auto choice = choose_permutation(b.build());
  EXPECT_TRUE(choice.is_identity());
  EXPECT_FALSE(choice.worthwhile());
}

TEST(ChoosePermutation, ConservativeOnNonAffineSubscripts) {
  ir::NestBuilder b;
  const VarId a = b.array("A", {16, 16});
  const VarId i = b.begin_parallel_loop("i", 1, 16);
  const VarId j = b.begin_parallel_loop("j", 1, 16);
  b.assign(b.element_expr(a, {ir::mul(var_ref(j), var_ref(j)),
                              var_ref(i)}),
           int_const(1));
  b.end_loop();
  b.end_loop();
  const auto choice = choose_permutation(b.build());
  EXPECT_TRUE(choice.conservative);
  EXPECT_TRUE(choice.is_identity());
  EXPECT_FALSE(choice.worthwhile());
}

TEST(ChoosePermutation, TileHintIsEdgeSizedAndClamped) {
  // 64x64: innermost tile edge 64, outer edge 8.
  const auto big = choose_permutation(transposed_nest(64));
  ASSERT_EQ(big.tile_hint.size(), 2u);
  EXPECT_EQ(big.tile_hint[0], 8);
  EXPECT_EQ(big.tile_hint[1], 64);
  // 5x5: both edges clamp to the trip count.
  const auto small = choose_permutation(transposed_nest(5));
  ASSERT_EQ(small.tile_hint.size(), 2u);
  EXPECT_EQ(small.tile_hint[0], 5);
  EXPECT_EQ(small.tile_hint[1], 5);
}

TEST(PermuteForLocality, AppliesChosenOrderAndVerifies) {
  const LoopNest nest = transposed_nest(6);
  const LoopNest permuted = permute_for_locality(nest);
  ASSERT_NE(permuted.root, nullptr);
  // Outermost is now the formerly inner j loop.
  EXPECT_EQ(permuted.symbols.name(permuted.root->var), "j");
  EXPECT_TRUE(ir::verify_nest(permuted).empty());
}

TEST(PermuteForLocality, IdentityChoiceReturnsClone) {
  ir::NestBuilder b;
  const VarId a = b.array("A", {8, 8});
  const VarId i = b.begin_parallel_loop("i", 1, 8);
  const VarId j = b.begin_parallel_loop("j", 1, 8);
  b.assign(b.element(a, {i, j}), ir::add(var_ref(i), var_ref(j)));
  b.end_loop();
  b.end_loop();
  const LoopNest nest = b.build();
  const LoopNest same = permute_for_locality(nest);
  ASSERT_NE(same.root, nullptr);
  EXPECT_NE(same.root.get(), nest.root.get());  // a clone, not an alias
  EXPECT_EQ(ir::to_string(same), ir::to_string(nest));
}

TEST(MemoryCost, InnermostAxisDominates) {
  const auto info = analysis::analyze_contiguity(transposed_nest(64));
  ASSERT_EQ(info.axes.size(), 2u);
  // Identity order ends on the stride-N axis; the reversal ends stride-1.
  EXPECT_GT(memory_cost_per_iteration(info, {0, 1}),
            memory_cost_per_iteration(info, {1, 0}));
}

// ---- end-to-end: compile and run emitted code -------------------------------------

/// Writes source, compiles with the host cc, runs, returns stdout.
std::string compile_and_run(const std::string& source, const char* tag,
                            const char* extra_flags = "",
                            const char* run_env = "") {
  const std::string dir = ::testing::TempDir();
  const std::string c_path = dir + "/emit_" + tag + ".c";
  const std::string bin_path = dir + "/emit_" + tag + ".bin";
  const std::string out_path = dir + "/emit_" + tag + ".out";
  {
    std::ofstream out(c_path);
    out << source;
  }
  const std::string compile = std::string("cc -O1 -std=c11 ") + extra_flags +
                              " -o " + bin_path + " " + c_path + " 2>&1";
  if (std::system(compile.c_str()) != 0) {
    ADD_FAILURE() << "compilation failed for " << c_path;
    return {};
  }
  const std::string run =
      std::string(run_env) + " " + bin_path + " > " + out_path;
  if (std::system(run.c_str()) != 0) {
    ADD_FAILURE() << "execution failed for " << bin_path;
    return {};
  }
  std::ifstream in(out_path);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

struct EndToEndCase {
  const char* name;
  LoopNest (*make)();
};

LoopNest make_witness_3d() { return ir::make_rectangular_witness({3, 4, 5}); }
LoopNest make_matmul_small() { return ir::make_matmul(5, 6, 4); }
LoopNest make_jacobi_small() { return ir::make_jacobi_step(5); }
LoopNest make_gauss_small() { return ir::make_gauss_jordan_backsolve(5, 3); }

class EmittedEquivalence : public ::testing::TestWithParam<EndToEndCase> {};

TEST_P(EmittedEquivalence, OriginalAndCoalescedProgramsPrintIdenticalOutput) {
  const LoopNest nest = GetParam().make();
  const auto result = transform::coalesce_nest(nest);
  ASSERT_TRUE(result.ok()) << result.error().to_string();

  const std::string original =
      compile_and_run(emit_c(nest), (std::string(GetParam().name) + "_orig").c_str());
  const std::string coalesced = compile_and_run(
      emit_c(result.value().nest),
      (std::string(GetParam().name) + "_coal").c_str());
  ASSERT_FALSE(original.empty());
  EXPECT_EQ(original, coalesced);
}

INSTANTIATE_TEST_SUITE_P(
    Kernels, EmittedEquivalence,
    ::testing::Values(EndToEndCase{"witness3d", &make_witness_3d},
                      EndToEndCase{"matmul", &make_matmul_small},
                      EndToEndCase{"jacobi", &make_jacobi_small},
                      EndToEndCase{"gauss", &make_gauss_small}),
    [](const ::testing::TestParamInfo<EndToEndCase>& info) {
      return info.param.name;
    });

TEST(EmittedEquivalence, OpenMpCollapseMatchesSequential) {
  // The emitted collapse(2) program, run with real OpenMP threads, must
  // produce exactly the sequential emission's output (disjoint writes).
  const LoopNest nest = ir::make_matmul(6, 5, 4);
  EmitOptions omp;
  omp.openmp = true;
  const std::string sequential = compile_and_run(emit_c(nest), "omp_seq");
  const std::string parallel =
      compile_and_run(emit_c(nest, omp), "omp_par", "-fopenmp",
                      "OMP_NUM_THREADS=3");
  ASSERT_FALSE(sequential.empty());
  EXPECT_EQ(sequential, parallel);
}

TEST(EmittedEquivalence, OpenMpCoalescedLoopMatchesSequential) {
  // And the coalesced single loop under OpenMP (private recovery vars).
  const LoopNest nest = ir::make_rectangular_witness({7, 9});
  const auto result = transform::coalesce_nest(nest);
  ASSERT_TRUE(result.ok());
  EmitOptions omp;
  omp.openmp = true;
  const std::string sequential = compile_and_run(emit_c(nest), "ompc_seq");
  const std::string parallel =
      compile_and_run(emit_c(result.value().nest, omp), "ompc_par",
                      "-fopenmp", "OMP_NUM_THREADS=4");
  ASSERT_FALSE(sequential.empty());
  EXPECT_EQ(sequential, parallel);
}

TEST(EmittedEquivalence, ProgramEmissionMatchesSingleNest) {
  // make_perfect splits matmul into two roots; the emitted multi-kernel
  // program must print exactly what the untransformed emission prints.
  const LoopNest nest = ir::make_matmul(5, 4, 3);
  auto program = transform::make_perfect(nest);
  ASSERT_TRUE(program.ok());
  const auto coalesced = transform::coalesce_program(program.value());
  ASSERT_EQ(coalesced.program.roots.size(), 2u);

  const std::string single = compile_and_run(emit_c(nest), "prog_single");
  const std::string multi =
      compile_and_run(emit_c_program(coalesced.program), "prog_multi");
  ASSERT_FALSE(single.empty());
  EXPECT_EQ(single, multi);
}

TEST(EmitC, ProgramEmissionStructure) {
  const LoopNest nest = ir::make_matmul(4, 4, 4);
  auto program = transform::make_perfect(nest);
  ASSERT_TRUE(program.ok());
  EmitOptions options;
  options.standalone_main = false;
  options.kernel_name = "pipeline";
  const std::string src = emit_c_program(program.value(), options);
  EXPECT_NE(src.find("static void pipeline_0(void)"), std::string::npos);
  EXPECT_NE(src.find("static void pipeline_1(void)"), std::string::npos);
  EXPECT_NE(src.find("static void pipeline(void)"), std::string::npos);
  EXPECT_NE(src.find("pipeline_0();"), std::string::npos);
  EXPECT_NE(src.find("pipeline_1();"), std::string::npos);
  EXPECT_EQ(src.find("int main"), std::string::npos);
}

TEST(EmittedEquivalence, MixedRadixStyleAlsoMatches) {
  const LoopNest nest = ir::make_rectangular_witness({4, 3});
  transform::CoalesceOptions options;
  options.recovery = transform::RecoveryStyle::kMixedRadix;
  const auto result = transform::coalesce_nest(nest, options);
  ASSERT_TRUE(result.ok());
  const std::string original = compile_and_run(emit_c(nest), "mr_orig");
  const std::string coalesced =
      compile_and_run(emit_c(result.value().nest), "mr_coal");
  ASSERT_FALSE(original.empty());
  EXPECT_EQ(original, coalesced);
}

// ---- portability of the standalone emission ---------------------------------

TEST(EmitC, StandaloneMainUsesPortableFormatMacros) {
  // int64_t values must print via <inttypes.h> PRId64, never a hardwired
  // %lld (wrong on LP64 printf checking, and -Werror fodder below).
  const std::string src = emit_c(ir::make_rectangular_witness({3, 4}));
  EXPECT_NE(src.find("#include <inttypes.h>"), std::string::npos);
  EXPECT_NE(src.find("PRId64"), std::string::npos);
  EXPECT_EQ(src.find("%lld"), std::string::npos);
}

TEST(EmittedEquivalence, StandaloneProgramsCompileWarningFree) {
  // Every witness emission must survive the strictest practical flag set;
  // this is what keeps the emitter honest about types and formats.
  const LoopNest nests[] = {make_witness_3d(), make_matmul_small(),
                            make_jacobi_small(), make_gauss_small()};
  int k = 0;
  for (const LoopNest& nest : nests) {
    const std::string tag = "werror_" + std::to_string(k++);
    const std::string out = compile_and_run(emit_c(nest), tag.c_str(),
                                            "-Wall -Wextra -Werror");
    EXPECT_FALSE(out.empty()) << "warning-free compile failed for " << tag;
    const auto coalesced = transform::coalesce_nest(nest);
    ASSERT_TRUE(coalesced.ok());
    const std::string tag2 = tag + "_coal";
    const std::string out2 =
        compile_and_run(emit_c(coalesced.value().nest), tag2.c_str(),
                        "-Wall -Wextra -Werror");
    EXPECT_EQ(out, out2);
  }
}

}  // namespace
}  // namespace coalesce::codegen
