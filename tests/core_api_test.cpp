// Tests for the façade API: the analyze -> coalesce -> verify pipeline,
// plus the deprecated-shim equivalence contract for the launch API.
#include <gtest/gtest.h>

#include <atomic>
#include <span>
#include <vector>

#include "core/api.hpp"
#include "index/coalesced_space.hpp"
#include "ir/builder.hpp"
#include "ir/printer.hpp"
#include "runtime/launch.hpp"
#include "runtime/parallel_for.hpp"
#include "runtime/reduce.hpp"
#include "runtime/thread_pool.hpp"

namespace coalesce::core {
namespace {

TEST(Api, VersionIsNonEmpty) {
  EXPECT_NE(version(), nullptr);
  EXPECT_GT(std::string(version()).size(), 0u);
}

TEST(Pipeline, WitnessSucceedsAndVerifies) {
  const ir::LoopNest nest = ir::make_rectangular_witness({6, 7});
  const auto result = analyze_coalesce_verify(nest);
  ASSERT_TRUE(result.ok()) << result.error().to_string();
  EXPECT_TRUE(result.value().verified);
  EXPECT_EQ(result.value().coalesced.space.total(), 42);
  EXPECT_NE(result.value().original_source.find("doall"), std::string::npos);
  EXPECT_NE(result.value().coalesced_source.find("cdiv"), std::string::npos);
}

TEST(Pipeline, ProvesParallelismWithoutPreMarkedFlags) {
  // Strip all parallel flags; the pipeline's analysis must restore them.
  ir::LoopNest nest = ir::make_gauss_jordan_backsolve(5, 3);
  std::function<void(ir::Loop&)> strip = [&](ir::Loop& loop) {
    loop.parallel = false;
    for (auto& s : loop.body) {
      if (auto* inner = std::get_if<ir::LoopPtr>(&s)) strip(**inner);
    }
  };
  strip(*nest.root);
  const auto result = analyze_coalesce_verify(nest);
  ASSERT_TRUE(result.ok()) << result.error().to_string();
  EXPECT_TRUE(result.value().verified);
}

TEST(Pipeline, RefusesGenuinelySerialNest) {
  const ir::LoopNest nest = ir::make_recurrence(10);
  const auto result = analyze_coalesce_verify(nest);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code, support::ErrorCode::kIllegalTransform);
}

TEST(Pipeline, MatmulKeepsReductionInside) {
  const ir::LoopNest nest = ir::make_matmul(4, 4, 4);
  const auto result = analyze_coalesce_verify(nest);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().coalesced.levels, 2u);
  // The reduction loop survives inside the coalesced body.
  EXPECT_NE(result.value().coalesced_source.find("do k = 1, 4"),
            std::string::npos);
}

TEST(Pipeline, DoesNotModifyInput) {
  const ir::LoopNest nest = ir::make_matmul(3, 3, 3);
  const std::string before = ir::to_string(nest);
  (void)analyze_coalesce_verify(nest);
  EXPECT_EQ(ir::to_string(nest), before);
}

TEST(EquivalentByExecution, DetectsDifferences) {
  const ir::LoopNest a = ir::make_rectangular_witness({3, 3});
  ir::LoopNest b = ir::make_rectangular_witness({3, 3});
  EXPECT_TRUE(equivalent_by_execution(a, b));
  // Perturb b: write a constant instead of the digit encoding.
  auto& inner = *std::get<ir::LoopPtr>(b.root->body.front());
  std::get<ir::AssignStmt>(inner.body.front()).rhs = ir::int_const(0);
  EXPECT_FALSE(equivalent_by_execution(a, b));
}

TEST(EquivalentByExecution, MismatchedArraysAreUnequal) {
  const ir::LoopNest a = ir::make_rectangular_witness({3, 3});
  const ir::LoopNest b = ir::make_rectangular_witness({3, 4});
  EXPECT_FALSE(equivalent_by_execution(a, b));
}

// ---- deprecated launch shims ------------------------------------------
//
// The pre-LaunchOptions entry points (parallel_for*, parallel_reduce*,
// parallel_sum*) survive as [[deprecated]] forwarding shims. These tests
// pin the contract that makes the deprecation painless: a shim call and
// the equivalent run()/run_reduce()/run_sum() call produce byte-identical
// region reports (modulo wall-clock time) and identical side effects.
// Deterministic schedules are used so the comparison is exact.

namespace {

/// Every ForStats field except wall_seconds (timing) and trace (a borrowed
/// recorder pointer) must match exactly.
void expect_same_stats(const runtime::ForStats& a, const runtime::ForStats& b) {
  EXPECT_EQ(a.dispatch_ops, b.dispatch_ops);
  EXPECT_EQ(a.chunks_executed, b.chunks_executed);
  EXPECT_EQ(a.iterations_per_worker, b.iterations_per_worker);
  EXPECT_EQ(a.iterations_requested, b.iterations_requested);
  EXPECT_EQ(a.cancelled, b.cancelled);
  EXPECT_EQ(a.deadline_expired, b.deadline_expired);
  EXPECT_EQ(a.region_id, b.region_id);
}

}  // namespace

#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"

TEST(DeprecatedShims, ParallelForMatchesRun) {
  runtime::ThreadPool pool(2);
  const support::i64 n = 10'000;
  std::vector<double> via_shim(static_cast<std::size_t>(n), 0.0);
  std::vector<double> via_run(static_cast<std::size_t>(n), 0.0);

  // The coalesced index is 1-based.
  const auto old_stats = runtime::parallel_for(
      pool, n, {runtime::Schedule::kStaticBlock}, [&](support::i64 i) {
        via_shim[static_cast<std::size_t>(i - 1)] = 2.0 * i;
      });
  const auto new_stats = runtime::run(
      pool, n,
      [&](support::i64 i) {
        via_run[static_cast<std::size_t>(i - 1)] = 2.0 * i;
      },
      {.schedule = {runtime::Schedule::kStaticBlock}});

  expect_same_stats(old_stats, new_stats);
  EXPECT_EQ(via_shim, via_run);
}

TEST(DeprecatedShims, ParallelForCollapsedMatchesRun) {
  runtime::ThreadPool pool(2);
  const auto space =
      index::CoalescedSpace::create(std::vector<support::i64>{12, 9}).value();
  std::atomic<support::i64> shim_sum{0};
  std::atomic<support::i64> run_sum_acc{0};

  const auto old_stats = runtime::parallel_for_collapsed(
      pool, space, {runtime::Schedule::kStaticBlock},
      [&](std::span<const support::i64> ij) {
        shim_sum.fetch_add(ij[0] * 31 + ij[1], std::memory_order_relaxed);
      });
  const auto new_stats = runtime::run(
      pool, space,
      [&](std::span<const support::i64> ij) {
        run_sum_acc.fetch_add(ij[0] * 31 + ij[1], std::memory_order_relaxed);
      },
      {.schedule = {runtime::Schedule::kStaticBlock}});

  expect_same_stats(old_stats, new_stats);
  EXPECT_EQ(shim_sum.load(), run_sum_acc.load());
}

TEST(DeprecatedShims, ParallelSumMatchesRunSum) {
  runtime::ThreadPool pool(2);
  auto body = [](support::i64 i) { return 1.0 / (1.0 + i); };

  const auto old_result = runtime::parallel_sum(
      pool, 50'000, {runtime::Schedule::kStaticBlock}, body);
  const auto new_result =
      runtime::run_sum(pool, 50'000, body,
                       {.schedule = {runtime::Schedule::kStaticBlock}});

  // Same partial-per-worker fold order under a deterministic schedule, so
  // the doubles are bitwise equal, not merely close.
  EXPECT_EQ(old_result.value, new_result.value);
  expect_same_stats(old_result.stats, new_result.stats);
}

TEST(DeprecatedShims, ParallelReduceMatchesRunReduce) {
  runtime::ThreadPool pool(2);
  auto body = [](support::i64 i) { return static_cast<double>(i % 11); };
  auto combine = [](double a, double b) { return a > b ? a : b; };

  const auto old_result = runtime::parallel_reduce(
      pool, 8'192, {runtime::Schedule::kStaticBlock}, 0.0, body, combine);
  const auto new_result =
      runtime::run_reduce(pool, 8'192, 0.0, body, combine,
                          {.schedule = {runtime::Schedule::kStaticBlock}});

  EXPECT_EQ(old_result.value, new_result.value);
  expect_same_stats(old_result.stats, new_result.stats);
}

#pragma GCC diagnostic pop

}  // namespace
}  // namespace coalesce::core
