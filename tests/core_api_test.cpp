// Tests for the façade API: the analyze -> coalesce -> verify pipeline.
#include <gtest/gtest.h>

#include <functional>
#include <string>
#include <vector>

#include "core/api.hpp"
#include "ir/builder.hpp"
#include "ir/printer.hpp"

namespace coalesce::core {
namespace {

TEST(Api, VersionIsNonEmpty) {
  EXPECT_NE(version(), nullptr);
  EXPECT_GT(std::string(version()).size(), 0u);
}

TEST(Pipeline, WitnessSucceedsAndVerifies) {
  const ir::LoopNest nest = ir::make_rectangular_witness({6, 7});
  const auto result = analyze_coalesce_verify(nest);
  ASSERT_TRUE(result.ok()) << result.error().to_string();
  EXPECT_TRUE(result.value().verified);
  EXPECT_EQ(result.value().coalesced.space.total(), 42);
  EXPECT_NE(result.value().original_source.find("doall"), std::string::npos);
  EXPECT_NE(result.value().coalesced_source.find("cdiv"), std::string::npos);
}

TEST(Pipeline, ProvesParallelismWithoutPreMarkedFlags) {
  // Strip all parallel flags; the pipeline's analysis must restore them.
  ir::LoopNest nest = ir::make_gauss_jordan_backsolve(5, 3);
  std::function<void(ir::Loop&)> strip = [&](ir::Loop& loop) {
    loop.parallel = false;
    for (auto& s : loop.body) {
      if (auto* inner = std::get_if<ir::LoopPtr>(&s)) strip(**inner);
    }
  };
  strip(*nest.root);
  const auto result = analyze_coalesce_verify(nest);
  ASSERT_TRUE(result.ok()) << result.error().to_string();
  EXPECT_TRUE(result.value().verified);
}

TEST(Pipeline, RefusesGenuinelySerialNest) {
  const ir::LoopNest nest = ir::make_recurrence(10);
  const auto result = analyze_coalesce_verify(nest);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code, support::ErrorCode::kIllegalTransform);
}

TEST(Pipeline, MatmulKeepsReductionInside) {
  const ir::LoopNest nest = ir::make_matmul(4, 4, 4);
  const auto result = analyze_coalesce_verify(nest);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().coalesced.levels, 2u);
  // The reduction loop survives inside the coalesced body.
  EXPECT_NE(result.value().coalesced_source.find("do k = 1, 4"),
            std::string::npos);
}

TEST(Pipeline, DoesNotModifyInput) {
  const ir::LoopNest nest = ir::make_matmul(3, 3, 3);
  const std::string before = ir::to_string(nest);
  (void)analyze_coalesce_verify(nest);
  EXPECT_EQ(ir::to_string(nest), before);
}

TEST(EquivalentByExecution, DetectsDifferences) {
  const ir::LoopNest a = ir::make_rectangular_witness({3, 3});
  ir::LoopNest b = ir::make_rectangular_witness({3, 3});
  EXPECT_TRUE(equivalent_by_execution(a, b));
  // Perturb b: write a constant instead of the digit encoding.
  auto& inner = *std::get<ir::LoopPtr>(b.root->body.front());
  std::get<ir::AssignStmt>(inner.body.front()).rhs = ir::int_const(0);
  EXPECT_FALSE(equivalent_by_execution(a, b));
}

TEST(EquivalentByExecution, MismatchedArraysAreUnequal) {
  const ir::LoopNest a = ir::make_rectangular_witness({3, 3});
  const ir::LoopNest b = ir::make_rectangular_witness({3, 4});
  EXPECT_FALSE(equivalent_by_execution(a, b));
}

}  // namespace
}  // namespace coalesce::core
