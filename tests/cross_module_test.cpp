// Cross-module property tests: independent re-implementations checked
// against the library (grid search vs closed-form divisor scan), random
// chunk traversal vs reference decode, and transformed-IR workloads pushed
// through the parallel executor.
#include <gtest/gtest.h>

#include "core/coalesce.hpp"

namespace coalesce {
namespace {

using support::i64;
using support::Rng;

// ---- grid search vs independent 2-level brute force ---------------------------

TEST(CrossCheck, BestGridMatchesDivisorScanFor2Levels) {
  Rng rng(101);
  for (int trial = 0; trial < 100; ++trial) {
    const i64 n1 = rng.uniform_int(1, 40);
    const i64 n2 = rng.uniform_int(1, 40);
    const i64 p = rng.uniform_int(1, 24);
    const auto grid = index::best_grid({n1, n2}, p);

    i64 best = INT64_MAX;
    for (i64 d = 1; d <= p; ++d) {
      if (p % d != 0) continue;
      best = std::min(best, support::ceil_div(n1, d) *
                                support::ceil_div(n2, p / d));
    }
    ASSERT_EQ(grid.max_load, best)
        << n1 << "x" << n2 << " P=" << p;
    // And the coalesced load never exceeds the best grid's.
    ASSERT_LE(index::coalesced_max_load({n1, n2}, p), best);
  }
}

// ---- random chunk traversal vs reference decode --------------------------------

TEST(CrossCheck, ForEachInChunkMatchesReferenceDecode) {
  Rng rng(202);
  for (int trial = 0; trial < 50; ++trial) {
    const std::size_t depth = static_cast<std::size_t>(rng.uniform_int(1, 4));
    std::vector<index::LevelGeometry> levels;
    for (std::size_t k = 0; k < depth; ++k) {
      levels.push_back(index::LevelGeometry{rng.uniform_int(-4, 4),
                                            rng.uniform_int(1, 5),
                                            rng.uniform_int(1, 3)});
    }
    const auto space = index::CoalescedSpace::create(levels).value();
    const i64 first = rng.uniform_int(1, space.total());
    const i64 last = rng.uniform_int(first, space.total() + 1);

    std::vector<std::vector<i64>> walked;
    index::for_each_in_chunk(space, index::Chunk{first, last},
                             [&](std::span<const i64> idx) {
                               walked.emplace_back(idx.begin(), idx.end());
                             });
    ASSERT_EQ(walked.size(), static_cast<std::size_t>(last - first));
    std::vector<i64> expect(depth);
    for (i64 j = first; j < last; ++j) {
      space.decode_original(j, expect);
      ASSERT_EQ(walked[static_cast<std::size_t>(j - first)], expect);
    }
  }
}

// ---- transformed IR through the parallel executor -------------------------------

TEST(CrossCheck, GuardedTriangleExecutesInParallel) {
  const ir::LoopNest nest = ir::make_triangular_witness(9);
  const auto result = transform::coalesce_guarded(nest);
  ASSERT_TRUE(result.ok());

  ir::Evaluator sequential(nest.symbols);
  sequential.run(*nest.root);

  runtime::ThreadPool pool(4);
  ir::ArrayStore store(result.value().nest.symbols);
  const auto stats = runtime::execute_parallel(
      pool, result.value().nest, {runtime::Schedule::kGuided, 1}, store);
  ASSERT_TRUE(stats.ok()) << stats.error().to_string();

  const auto a = sequential.store().data(nest.symbols.lookup("OUT").value());
  const auto b =
      store.data(result.value().nest.symbols.lookup("OUT").value());
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t q = 0; q < a.size(); ++q) EXPECT_EQ(a[q], b[q]);
}

TEST(CrossCheck, JacobiPipelineEndToEndParallel) {
  // analyze -> coalesce -> parallel interpretation == sequential original,
  // with nontrivial input data.
  const ir::LoopNest nest = ir::make_jacobi_step(10);
  const auto pipeline = core::analyze_coalesce_verify(nest);
  ASSERT_TRUE(pipeline.ok());

  auto seed = [](ir::ArrayStore& store, const ir::SymbolTable& symbols) {
    auto data = store.data(symbols.lookup("A").value());
    for (std::size_t q = 0; q < data.size(); ++q) {
      data[q] = static_cast<double>((q * 17 + 5) % 23);
    }
  };
  ir::Evaluator sequential(nest.symbols);
  seed(sequential.store(), nest.symbols);
  sequential.run(*nest.root);

  runtime::ThreadPool pool(4);
  const auto& coalesced = pipeline.value().coalesced.nest;
  ir::ArrayStore store(coalesced.symbols);
  seed(store, coalesced.symbols);
  const auto stats = runtime::execute_parallel(
      pool, coalesced, {runtime::Schedule::kChunked, 16}, store);
  ASSERT_TRUE(stats.ok());

  const auto expect = sequential.store().data(nest.symbols.lookup("B").value());
  const auto got = store.data(coalesced.symbols.lookup("B").value());
  for (std::size_t q = 0; q < expect.size(); ++q) {
    EXPECT_EQ(expect[q], got[q]);
  }
}

TEST(CrossCheck, TiledRuntimeMatchesSimulatedTileCount) {
  // The runtime's tiled executor and the IR-level tile_and_coalesce agree
  // on the number of scheduling units for the same tile sizes.
  const i64 n = 24, m = 18, ti = 5, tj = 4;
  const auto result =
      transform::tile_and_coalesce(ir::make_rectangular_witness({n, m}), ti,
                                   tj);
  ASSERT_TRUE(result.ok());

  runtime::ThreadPool pool(2);
  const auto space =
      index::CoalescedSpace::create(std::vector<i64>{n, m}).value();
  const auto stats =
      runtime::run(pool, space, [](std::span<const i64>) {},
                   {.schedule = {runtime::Schedule::kSelf, 1},
                    .tile_sizes = std::vector<i64>{ti, tj}});
  EXPECT_EQ(static_cast<i64>(stats.dispatch_ops),
            result.value().space.total());
}

TEST(CrossCheck, SimulatorAndRuntimeAgreeOnDispatchCounts) {
  // For deterministic policies the simulator's dispatch count must equal
  // the real runtime's (same chunk sequence, machine-independent).
  const auto space =
      index::CoalescedSpace::create(std::vector<i64>{30, 20}).value();
  const sim::Workload work = sim::Workload::constant(space.total(), 5);
  sim::CostModel costs;
  runtime::ThreadPool pool(4);

  const auto sim_self = sim::simulate_coalesced_dynamic(
      space, 4, {sim::SimSchedule::kSelf, 1}, costs, work);
  const auto run_self =
      runtime::run(pool, space, [](std::span<const i64>) {},
                   {.schedule = {runtime::Schedule::kSelf, 1}});
  EXPECT_EQ(sim_self.dispatch_ops, run_self.dispatch_ops);

  const auto sim_chunk = sim::simulate_coalesced_dynamic(
      space, 4, {sim::SimSchedule::kChunked, 7}, costs, work);
  const auto run_chunk =
      runtime::run(pool, space, [](std::span<const i64>) {},
                   {.schedule = {runtime::Schedule::kChunked, 7}});
  EXPECT_EQ(sim_chunk.dispatch_ops, run_chunk.dispatch_ops);
}

}  // namespace
}  // namespace coalesce
