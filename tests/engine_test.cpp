// Tests for the asynchronous region engine: queued submission, futures,
// priority classes, backpressure, per-region cancellation, exception
// propagation through futures, and teardown with pending work.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <thread>
#include <vector>

#include "index/coalesced_space.hpp"
#include "ir/builder.hpp"
#include "ir/eval.hpp"
#include "runtime/engine.hpp"
#include "runtime/ir_executor.hpp"
#include "runtime/launch.hpp"
#include "support/cancel.hpp"

namespace coalesce::runtime {
namespace {

using support::i64;

/// A one-iteration region body that parks the worker executing it until
/// release(). Holding a single-worker engine inside a gated region lets a
/// test stage the queue behind it deterministically.
struct Gate {
  std::mutex m;
  std::condition_variable cv;
  bool open = false;
  std::atomic<bool> entered{false};

  void release() {
    {
      std::lock_guard<std::mutex> lk(m);
      open = true;
    }
    cv.notify_all();
  }

  void wait_entered() {
    while (!entered.load(std::memory_order_acquire)) std::this_thread::yield();
  }

  auto body() {
    return [this](i64) {
      entered.store(true, std::memory_order_release);
      std::unique_lock<std::mutex> lk(m);
      cv.wait(lk, [this] { return open; });
    };
  }
};

TEST(Engine, SingleRegionRunsToCompletion) {
  Engine engine(2);
  EXPECT_EQ(engine.concurrency(), 2u);

  std::atomic<i64> count{0};
  auto future = engine.submit(10'000, [&](i64) {
    count.fetch_add(1, std::memory_order_relaxed);
  });
  ASSERT_TRUE(future.valid());
  const ForStats stats = future.get();
  EXPECT_TRUE(stats.completed());
  EXPECT_EQ(stats.iterations_requested, 10'000u);
  EXPECT_EQ(stats.iterations_done(), 10'000u);
  EXPECT_EQ(count.load(), 10'000);
  EXPECT_GT(stats.dispatch_ops, 0u);
  // Async submissions carry the engine-assigned (1-based) region id, both
  // on the future and inside the stats it resolves to.
  EXPECT_GE(future.region_id(), 1u);
  EXPECT_EQ(stats.region_id, future.region_id());
}

TEST(Engine, RegionIdsAreMonotonic) {
  Engine engine(1);
  auto a = engine.submit(16, [](i64) {});
  auto b = engine.submit(16, [](i64) {});
  auto c = engine.submit(16, [](i64) {});
  EXPECT_LT(a.region_id(), b.region_id());
  EXPECT_LT(b.region_id(), c.region_id());
  engine.wait_all();
  EXPECT_TRUE(a.ready() && b.ready() && c.ready());
}

TEST(Engine, SubmissionOrderIsFifoWithinAClass) {
  Engine engine(1);
  Gate gate;
  auto blocker = engine.submit(1, gate.body());
  gate.wait_entered();

  std::mutex order_mutex;
  std::vector<int> order;
  auto record = [&](int tag) {
    return [&order, &order_mutex, tag](i64) {
      std::lock_guard<std::mutex> lk(order_mutex);
      order.push_back(tag);
    };
  };
  auto first = engine.submit(1, record(1));
  auto second = engine.submit(1, record(2));
  auto third = engine.submit(1, record(3));

  gate.release();
  engine.wait_all();
  (void)blocker.get();
  EXPECT_TRUE(first.get().completed());
  EXPECT_TRUE(second.get().completed());
  EXPECT_TRUE(third.get().completed());
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Engine, HighPriorityOvertakesQueuedNormalRegions) {
  Engine engine(1);
  Gate gate;
  auto blocker = engine.submit(1, gate.body());
  gate.wait_entered();

  std::mutex order_mutex;
  std::vector<char> order;
  auto record = [&](char tag) {
    return [&order, &order_mutex, tag](i64) {
      std::lock_guard<std::mutex> lk(order_mutex);
      order.push_back(tag);
    };
  };
  auto normal_a = engine.submit(1, record('a'));
  auto normal_b = engine.submit(1, record('b'));
  auto high = engine.submit(1, record('h'), {.priority = Priority::kHigh});

  gate.release();
  engine.wait_all();
  (void)blocker.get();
  // The high-priority region was submitted last but dispatches first; the
  // two normal regions keep their FIFO order behind it.
  EXPECT_EQ(order, (std::vector<char>{'h', 'a', 'b'}));
  EXPECT_TRUE(normal_a.get().completed());
  EXPECT_TRUE(normal_b.get().completed());
  EXPECT_TRUE(high.get().completed());
}

TEST(Engine, TrySubmitRefusesWhenQueueIsFull) {
  Engine engine(1, /*queue_capacity=*/2);
  EXPECT_EQ(engine.queue_capacity(), 2u);

  Gate gate;
  auto blocker = engine.submit(1, gate.body());
  gate.wait_entered();

  // The gated region is *running*, so it does not occupy a queue slot.
  auto queued_a = engine.try_submit(8, [](i64) {});
  auto queued_b = engine.try_submit(8, [](i64) {});
  ASSERT_TRUE(queued_a.has_value());
  ASSERT_TRUE(queued_b.has_value());
  EXPECT_EQ(engine.queue_depth(), 2u);
  EXPECT_EQ(engine.inflight(), 3u);

  auto refused = engine.try_submit(8, [](i64) {});
  EXPECT_FALSE(refused.has_value());

  gate.release();
  engine.wait_all();
  EXPECT_EQ(engine.queue_depth(), 0u);
  EXPECT_EQ(engine.inflight(), 0u);

  // Space freed: the same call is accepted again.
  auto accepted = engine.try_submit(8, [](i64) {});
  ASSERT_TRUE(accepted.has_value());
  EXPECT_TRUE(accepted->get().completed());
  (void)blocker.get();
  (void)queued_a->get();
  (void)queued_b->get();
}

TEST(Engine, SubmitBlocksUntilAQueueSlotFrees) {
  Engine engine(1, /*queue_capacity=*/1);
  Gate gate;
  auto blocker = engine.submit(1, gate.body());
  gate.wait_entered();
  auto filler = engine.submit(8, [](i64) {});  // takes the only queue slot

  std::atomic<bool> accepted{false};
  RegionFuture<ForStats> blocked_future;
  std::thread submitter([&] {
    blocked_future = engine.submit(8, [](i64) {});
    accepted.store(true, std::memory_order_release);
  });

  // The queue is full, so the submitter must still be blocked inside
  // submit(). (A wrongly non-blocking submit would trip this reliably.)
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(accepted.load(std::memory_order_acquire));

  gate.release();
  submitter.join();
  EXPECT_TRUE(accepted.load());
  ASSERT_TRUE(blocked_future.valid());
  EXPECT_TRUE(blocked_future.get().completed());
  (void)blocker.get();
  (void)filler.get();
}

TEST(Engine, CancellingOneRegionLeavesSiblingsIntact) {
  Engine engine(2);
  support::CancellationSource source;
  std::atomic<bool> victim_started{false};

  // The victim is large enough that it cannot finish before the cancel
  // lands; cancellation is observed at chunk-grant granularity.
  auto victim = engine.submit(
      i64{1} << 40,
      [&](i64) { victim_started.store(true, std::memory_order_release); },
      {.schedule = {Schedule::kChunked, 64},
       .control = RunControl{source.token(), {}}});

  std::atomic<i64> sibling_count{0};
  auto sibling = engine.submit(50'000, [&](i64) {
    sibling_count.fetch_add(1, std::memory_order_relaxed);
  });

  while (!victim_started.load(std::memory_order_acquire)) {
    std::this_thread::yield();
  }
  source.request_cancel();

  const ForStats victim_stats = victim.get();
  EXPECT_TRUE(victim_stats.cancelled);
  EXPECT_FALSE(victim_stats.completed());
  EXPECT_LT(victim_stats.iterations_done(), victim_stats.iterations_requested);

  const ForStats sibling_stats = sibling.get();
  EXPECT_TRUE(sibling_stats.completed());
  EXPECT_EQ(sibling_count.load(), 50'000);

  // The engine survives a cancelled region and keeps accepting work.
  EXPECT_TRUE(engine.submit(64, [](i64) {}).get().completed());
}

TEST(Engine, BodyExceptionPropagatesThroughTheFuture) {
  Engine engine(2);
  auto throwing = engine.submit(1'000, [](i64 i) {
    if (i == 373) throw std::runtime_error("engine body boom");
  });
  auto healthy = engine.submit(1'000, [](i64) {});

  bool caught = false;
  try {
    (void)throwing.get();
  } catch (const std::runtime_error& e) {
    caught = true;
    EXPECT_STREQ(e.what(), "engine body boom");
  }
  EXPECT_TRUE(caught);

  // First-exception-wins inside the region; the sibling region and the
  // engine itself are unaffected.
  EXPECT_TRUE(healthy.get().completed());
  EXPECT_TRUE(engine.submit(64, [](i64) {}).get().completed());
}

TEST(Engine, DestructorDrainsPendingRegions) {
  std::atomic<i64> count{0};
  std::vector<RegionFuture<ForStats>> futures;
  {
    Engine engine(2, /*queue_capacity=*/64);
    for (int r = 0; r < 16; ++r) {
      futures.push_back(engine.submit(10'000, [&](i64) {
        count.fetch_add(1, std::memory_order_relaxed);
      }));
    }
    // No wait_all(): destruction must drain every accepted region.
  }
  for (auto& f : futures) {
    ASSERT_TRUE(f.valid());
    EXPECT_TRUE(f.ready());
    EXPECT_TRUE(f.get().completed());
  }
  EXPECT_EQ(count.load(), 16 * 10'000);
}

TEST(Engine, DrainClosesTheEngine) {
  Engine engine(1);
  EXPECT_TRUE(engine.submit(128, [](i64) {}).get().completed());

  engine.drain();
  auto rejected = engine.submit(8, [](i64) {});
  EXPECT_FALSE(rejected.valid());
  EXPECT_EQ(rejected.region_id(), 0u);
  EXPECT_FALSE(engine.try_submit(8, [](i64) {}).has_value());

  // drain() is idempotent and wait_all() on a closed engine returns.
  engine.drain();
  engine.wait_all();
}

TEST(Engine, WaitAllResolvesEverySubmittedFuture) {
  Engine engine(2);
  std::vector<RegionFuture<ForStats>> futures;
  for (int r = 0; r < 12; ++r) {
    futures.push_back(engine.submit(4'096, [](i64) {}));
  }
  engine.wait_all();
  EXPECT_EQ(engine.inflight(), 0u);
  EXPECT_EQ(engine.queue_depth(), 0u);
  for (auto& f : futures) {
    EXPECT_TRUE(f.ready());
    EXPECT_TRUE(f.get().completed());
  }
}

TEST(Engine, SubmitSumAndReduceFold) {
  Engine engine(2);
  auto sum = engine.submit_sum(100'000, [](i64) { return 1.0; });
  auto reduced = engine.submit_reduce(
      1'000, 1.0, [](i64 i) { return static_cast<double>((i % 7) + 1); },
      [](double a, double b) { return a > b ? a : b; });

  const ReduceResult sum_result = sum.get();
  EXPECT_TRUE(sum_result.stats.completed());
  EXPECT_DOUBLE_EQ(sum_result.value, 100'000.0);

  const ReduceResult max_result = reduced.get();
  EXPECT_TRUE(max_result.stats.completed());
  EXPECT_DOUBLE_EQ(max_result.value, 7.0);
}

TEST(Engine, CollapsedSpaceSubmission) {
  Engine engine(2);
  const auto space =
      index::CoalescedSpace::create(std::vector<i64>{7, 9}).value();

  std::atomic<i64> sum{0};
  auto future = engine.submit(space, [&](std::span<const i64> ij) {
    sum.fetch_add(ij[0] * 100 + ij[1], std::memory_order_relaxed);
  });
  const ForStats stats = future.get();
  EXPECT_TRUE(stats.completed());
  EXPECT_EQ(stats.iterations_requested, 63u);

  i64 expected = 0;
  for (i64 i = 1; i <= 7; ++i) {
    for (i64 j = 1; j <= 9; ++j) expected += i * 100 + j;
  }
  EXPECT_EQ(sum.load(), expected);
}

TEST(Engine, TiledSubmissionCoversEveryIndexOnce) {
  Engine engine(2);
  const auto space =
      index::CoalescedSpace::create(std::vector<i64>{8, 6}).value();
  const std::vector<i64> tiles{4, 3};

  std::vector<std::atomic<int>> visits(48);
  auto future = engine.submit(
      space,
      [&](std::span<const i64> ij) {
        visits[static_cast<std::size_t>((ij[0] - 1) * 6 + (ij[1] - 1))]
            .fetch_add(1, std::memory_order_relaxed);
      },
      {.tile_sizes = tiles});
  const ForStats stats = future.get();
  EXPECT_TRUE(stats.completed());
  EXPECT_EQ(stats.iterations_requested, 48u);
  for (const auto& v : visits) EXPECT_EQ(v.load(), 1);
}

TEST(Engine, StaticSchedulesAreRemappedForDynamicJoining) {
  // Engine workers join a region dynamically, so the static schedules are
  // remapped at submission (kStaticBlock -> equivalent chunked grants,
  // kStaticCyclic -> self-scheduling); the region still covers all of N.
  Engine engine(2);
  std::atomic<i64> block_count{0};
  auto block = engine.submit(
      1'000, [&](i64) { block_count.fetch_add(1, std::memory_order_relaxed); },
      {.schedule = {Schedule::kStaticBlock}});
  std::atomic<i64> cyclic_count{0};
  auto cyclic = engine.submit(
      1'000, [&](i64) { cyclic_count.fetch_add(1, std::memory_order_relaxed); },
      {.schedule = {Schedule::kStaticCyclic}});

  const ForStats block_stats = block.get();
  EXPECT_TRUE(block_stats.completed());
  EXPECT_EQ(block_count.load(), 1'000);
  // Block-sized chunked grants: a handful of dispatch ops, not one per
  // iteration.
  EXPECT_LE(block_stats.dispatch_ops, 8u);

  EXPECT_TRUE(cyclic.get().completed());
  EXPECT_EQ(cyclic_count.load(), 1'000);
}

TEST(Engine, SubmitIrMatchesSequentialEvaluation) {
  const ir::LoopNest nest = ir::make_rectangular_witness({5, 4});
  ir::Evaluator sequential(nest.symbols);
  sequential.run(*nest.root);

  Engine engine(2);
  ir::ArrayStore store(nest.symbols);
  auto submitted = submit_ir(engine, nest, store);
  ASSERT_TRUE(submitted.ok()) << submitted.error().to_string();
  const ForStats stats = submitted.value().get();
  EXPECT_TRUE(stats.completed());
  EXPECT_TRUE(ir::ArrayStore::identical(sequential.store(), store));
}

TEST(Engine, SubmitAfterDrainFailsCleanlyOnEveryEntryPoint) {
  // The daemon's shutdown path drains the shared engine while connection
  // threads may still be submitting: every late submission must fail
  // cleanly — invalid future / nullopt / kUnavailable — never hang.
  const ir::LoopNest nest = ir::make_rectangular_witness({4, 3});
  Engine engine(1);
  engine.drain();

  EXPECT_FALSE(engine.submit(8, [](i64) {}).valid());
  EXPECT_FALSE(engine.try_submit(8, [](i64) {}).has_value());
  EXPECT_FALSE(engine.submit_sum(8, [](i64) { return 1.0; }).valid());

  ir::ArrayStore store(nest.symbols);
  auto submitted = submit_ir(engine, nest, store);
  ASSERT_FALSE(submitted.ok());
  EXPECT_EQ(submitted.error().code, support::ErrorCode::kUnavailable);

  auto tried = try_submit_ir(engine, nest, store);
  ASSERT_TRUE(tried.ok());
  EXPECT_FALSE(tried.value().has_value());
}

TEST(Engine, SubmitBlockedOnBackpressureObservesDrain) {
  // A submitter parked on a full queue must wake when drain() closes the
  // engine and come back with an invalid future (or, if it won the race,
  // a future that still resolves) — not deadlock against the drainer.
  Engine engine(1, /*queue_capacity=*/1);
  Gate gate;
  auto running = engine.submit(1, gate.body());
  gate.wait_entered();
  auto queued = engine.submit(1, [](i64) {});  // fills the only queue slot

  RegionFuture<ForStats> late;
  std::thread submitter([&] { late = engine.submit(1, [](i64) {}); });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  std::thread drainer([&] { engine.drain(); });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  gate.release();
  submitter.join();
  drainer.join();

  EXPECT_TRUE(running.get().completed());
  EXPECT_TRUE(queued.get().completed());
  if (late.valid()) EXPECT_TRUE(late.get().completed());
}

}  // namespace
}  // namespace coalesce::runtime
