// Fault-tolerance property suite: cancellation, deadlines, exception
// propagation, and the deterministic fault-injection harness.
//
// The properties under test are the runtime's robustness contract
// (docs/ROBUSTNESS.md):
//  * a body exception is rethrown EXACTLY once, at the join point, and the
//    pool is reusable afterwards;
//  * cancel latency is bounded by one chunk per worker (chunk-grant
//    granularity);
//  * deadline overshoot is bounded the same way;
//  * partial runs report honest, monotonic ForStats;
//  * every injected fault is deterministic in its coordinate (which
//    iteration throws, which grant cancels) under a fixed seed.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <functional>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "runtime/dispatcher.hpp"
#include "runtime/fault.hpp"
#include "runtime/launch.hpp"
#include "runtime/thread_pool.hpp"
#include "support/cancel.hpp"
#include "trace/recorder.hpp"

namespace coalesce::runtime {
namespace {

using support::CancellationSource;
using support::Deadline;

// ---- cancellation --------------------------------------------------------------

TEST(Cancel, AlreadyCancelledTokenRunsNothing) {
  ThreadPool pool(4);
  CancellationSource source;
  source.request_cancel();
  std::atomic<std::uint64_t> ran{0};
  const ForStats stats = run(
      pool, 10'000, [&](i64) { ran.fetch_add(1); },
      {.schedule = {Schedule::kChunked, 64},
       .control = RunControl{source.token(), {}}});
  EXPECT_EQ(ran.load(), 0u);
  EXPECT_TRUE(stats.cancelled);
  EXPECT_FALSE(stats.deadline_expired);
  EXPECT_FALSE(stats.completed());
  EXPECT_EQ(stats.iterations_done(), 0u);
}

TEST(Cancel, SingleWorkerStopsAtExactChunkBoundary) {
  // One worker, fixed chunks of 10 aligned at 1-10, 11-20, ...: a cancel
  // requested at j == 55 is observed at the next grant, so the worker
  // finishes exactly chunk [51, 60] and stops — done == 60, not one more.
  ThreadPool pool(1);
  CancellationSource source;
  std::atomic<std::uint64_t> ran{0};
  const ForStats stats = run(
      pool, 1'000,
      [&](i64 j) {
        ran.fetch_add(1);
        if (j == 55) source.request_cancel();
      },
      {.schedule = {Schedule::kChunked, 10},
       .control = RunControl{source.token(), {}}});
  EXPECT_TRUE(stats.cancelled);
  EXPECT_EQ(ran.load(), 60u);
  EXPECT_EQ(stats.iterations_done(), 60u);
  EXPECT_EQ(stats.iterations_requested, 1'000u);
}

TEST(Cancel, LatencyBoundedByOneChunkPerWorker) {
  // P workers, chunk size C: after the cancel flag is raised, each worker
  // may finish only the chunk it already owns, so the iteration count can
  // grow by at most P * C beyond its value at the cancel.
  constexpr std::size_t kWorkers = 4;
  constexpr i64 kChunk = 16;
  ThreadPool pool(kWorkers);
  CancellationSource source;
  std::atomic<std::uint64_t> ran{0};
  std::atomic<std::uint64_t> at_cancel{0};
  const ForStats stats = run(
      pool, 1'000'000,
      [&](i64 j) {
        const std::uint64_t n = ran.fetch_add(1) + 1;
        if (j == 5'000) {
          source.request_cancel();
          at_cancel.store(n);
        }
      },
      {.schedule = {Schedule::kChunked, kChunk},
       .control = RunControl{source.token(), {}}});
  ASSERT_TRUE(stats.cancelled);
  // Workers mid-iteration when the flag went up still finish their chunk.
  EXPECT_LE(stats.iterations_done(),
            at_cancel.load() + kWorkers * static_cast<std::uint64_t>(kChunk));
  EXPECT_LT(stats.iterations_done(), 1'000'000u);
}

TEST(Cancel, PoolIsReusableAfterCancelledRun) {
  ThreadPool pool(4);
  CancellationSource source;
  source.request_cancel();
  (void)run(pool, 1'000, [&](i64) {},
            {.schedule = {Schedule::kChunked, 8},
             .control = RunControl{source.token(), {}}});
  // Same pool, fresh control: the follow-up region must run to completion.
  std::atomic<std::uint64_t> ran{0};
  const ForStats stats = run(pool, 1'000, [&](i64) { ran.fetch_add(1); },
                             {.schedule = {Schedule::kChunked, 8}});
  EXPECT_TRUE(stats.completed());
  EXPECT_EQ(ran.load(), 1'000u);
}

TEST(Cancel, WorksUnderEverySchedule) {
  const ScheduleParams kinds[] = {
      {Schedule::kStaticBlock, 1},  {Schedule::kStaticCyclic, 1},
      {Schedule::kSelf, 1},         {Schedule::kChunked, 32},
      {Schedule::kGuided, 1},       {Schedule::kFactoring, 1},
      {Schedule::kTrapezoid, 1},    {Schedule::kGuided, 1, true},
  };
  ThreadPool pool(4);
  for (const ScheduleParams params : kinds) {
    CancellationSource source;
    source.request_cancel();
    const ForStats stats =
        run(pool, 50'000, [&](i64) {},
            {.schedule = params, .control = RunControl{source.token(), {}}});
    EXPECT_TRUE(stats.cancelled) << to_string(params.kind);
    EXPECT_EQ(stats.iterations_done(), 0u) << to_string(params.kind);
  }
}

TEST(Cancel, InactiveControlReportsCompletion) {
  ThreadPool pool(2);
  const RunControl control;
  EXPECT_FALSE(control.active());
  const ForStats stats =
      run(pool, 500, [](i64) {},
          {.schedule = {Schedule::kGuided, 1}, .control = control});
  EXPECT_TRUE(stats.completed());
  EXPECT_FALSE(stats.cancelled);
  EXPECT_FALSE(stats.deadline_expired);
  EXPECT_EQ(stats.iterations_done(), stats.iterations_requested);
}

TEST(Cancel, CancelledCollapsedNestReportsPartialProgress) {
  ThreadPool pool(4);
  const auto space = index::CoalescedSpace::create({40, 40}).value();
  CancellationSource source;
  std::atomic<std::uint64_t> ran{0};
  const ForStats stats = run(
      pool, space,
      [&](std::span<const i64>) {
        if (ran.fetch_add(1) + 1 == 100) source.request_cancel();
      },
      {.schedule = {Schedule::kChunked, 16},
       .control = RunControl{source.token(), {}}});
  EXPECT_TRUE(stats.cancelled);
  EXPECT_GE(stats.iterations_done(), 100u);
  EXPECT_LT(stats.iterations_done(), 1600u);
  EXPECT_EQ(stats.iterations_done(), ran.load());
}

TEST(Cancel, NestedForkjoinSkipsRemainingInnerRegions) {
  ThreadPool pool(2);
  CancellationSource source;
  source.request_cancel();
  const i64 extents[] = {8, 8, 8};
  std::atomic<std::uint64_t> ran{0};
  const ForStats stats =
      run(pool, extents, [&](std::span<const i64>) { ran.fetch_add(1); },
          {.schedule = {Schedule::kSelf, 1},
           .control = RunControl{source.token(), {}},
           .mode = NestMode::kNestedForkJoin});
  EXPECT_TRUE(stats.cancelled);
  EXPECT_EQ(ran.load(), 0u);
  EXPECT_EQ(stats.iterations_requested, 512u);
}

// ---- deadlines -----------------------------------------------------------------

TEST(Deadline, AlreadyExpiredRunsNothing) {
  ThreadPool pool(4);
  std::atomic<std::uint64_t> ran{0};
  const ForStats stats =
      run(pool, 10'000, [&](i64) { ran.fetch_add(1); },
          {.schedule = {Schedule::kGuided, 1},
           .control = RunControl{{}, Deadline::after_ms(0)}});
  EXPECT_EQ(ran.load(), 0u);
  EXPECT_TRUE(stats.deadline_expired);
  EXPECT_FALSE(stats.cancelled);
  EXPECT_FALSE(stats.completed());
}

TEST(Deadline, UnsetDeadlineNeverStopsTheRun) {
  ThreadPool pool(2);
  const ForStats stats =
      run(pool, 2'000, [](i64) {},
          {.schedule = {Schedule::kChunked, 32},
           .control = RunControl{{}, Deadline::never()}});
  EXPECT_TRUE(stats.completed());
  EXPECT_FALSE(stats.deadline_expired);
}

TEST(Deadline, FarDeadlineCompletesNormally) {
  ThreadPool pool(4);
  const ForStats stats =
      run(pool, 5'000, [](i64) {},
          {.schedule = {Schedule::kGuided, 1},
           .control = RunControl{{}, Deadline::after_ms(60'000)}});
  EXPECT_TRUE(stats.completed());
}

TEST(Deadline, OvershootBoundedByOneChunkPerWorker) {
  // One worker, chunks of 8, ~1ms body: the deadline expires mid-run and
  // the worker stops at the next grant, so progress lands on a chunk
  // boundary well short of the total.
  ThreadPool pool(1);
  std::atomic<std::uint64_t> ran{0};
  const ForStats stats = run(
      pool, 512,
      [&](i64) {
        ran.fetch_add(1);
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      },
      {.schedule = {Schedule::kChunked, 8},
       .control = RunControl{{}, Deadline::after_ms(20)}});
  ASSERT_TRUE(stats.deadline_expired);
  EXPECT_LT(stats.iterations_done(), 512u);
  EXPECT_GT(stats.iterations_done(), 0u);
  // Chunk-grant granularity: a single worker's progress is whole chunks.
  EXPECT_EQ(stats.iterations_done() % 8, 0u);
}

TEST(Deadline, RemainingAndExpiredAreConsistent) {
  const Deadline never = Deadline::never();
  EXPECT_FALSE(never.is_set());
  EXPECT_FALSE(never.expired());
  EXPECT_EQ(never.remaining(), Deadline::Clock::duration::max());

  const Deadline past = Deadline::after_ms(-5);
  EXPECT_TRUE(past.is_set());
  EXPECT_TRUE(past.expired());
  EXPECT_EQ(past.remaining(), Deadline::Clock::duration::zero());

  const Deadline future = Deadline::after_ms(60'000);
  EXPECT_TRUE(future.is_set());
  EXPECT_FALSE(future.expired());
  EXPECT_GT(future.remaining(), Deadline::Clock::duration::zero());
}

// ---- exception propagation -----------------------------------------------------

TEST(Exceptions, BodyThrowIsRethrownAtJoin) {
  ThreadPool pool(4);
  EXPECT_THROW(run(pool, 1'000,
                   [](i64 j) {
                     if (j == 500) throw std::runtime_error("boom");
                   },
                   {.schedule = {Schedule::kChunked, 8}}),
               std::runtime_error);
}

TEST(Exceptions, RethrownExactlyOnceEvenWhenEveryIterationThrows) {
  ThreadPool pool(4);
  int caught = 0;
  try {
    run(pool, 1'000, [](i64) { throw std::runtime_error("everyone throws"); },
        {.schedule = {Schedule::kSelf, 1}});
  } catch (const std::runtime_error&) {
    ++caught;
  }
  EXPECT_EQ(caught, 1);
  // And the losers were swallowed, not terminated: the pool still works.
  std::atomic<std::uint64_t> ran{0};
  const ForStats stats = run(pool, 100, [&](i64) { ran.fetch_add(1); },
                             {.schedule = {Schedule::kSelf, 1}});
  EXPECT_TRUE(stats.completed());
  EXPECT_EQ(ran.load(), 100u);
}

TEST(Exceptions, SiblingsDrainInsteadOfRunningToCompletion) {
  ThreadPool pool(4);
  std::atomic<std::uint64_t> ran{0};
  try {
    run(pool, 1'000'000,
        [&](i64 j) {
          ran.fetch_add(1);
          if (j == 1'000) throw std::runtime_error("early");
        },
        {.schedule = {Schedule::kChunked, 16}});
    FAIL() << "expected rethrow";
  } catch (const std::runtime_error&) {
  }
  // The poison path stops the other workers at their next grant — nowhere
  // near the full million iterations.
  EXPECT_LT(ran.load(), 1'000'000u);
}

TEST(Exceptions, ExceptionTypeAndMessageSurviveTheJoin) {
  ThreadPool pool(2);
  try {
    run(pool, 100,
        [](i64 j) {
          if (j == 42) throw std::out_of_range("iteration 42 misbehaved");
        },
        {.schedule = {Schedule::kSelf, 1}});
    FAIL() << "expected rethrow";
  } catch (const std::out_of_range& e) {
    EXPECT_STREQ(e.what(), "iteration 42 misbehaved");
  }
}

TEST(Exceptions, ErasedEntryPointPropagatesToo) {
  ThreadPool pool(2);
  const std::function<void(i64)> body = [](i64 j) {
    if (j == 7) throw std::runtime_error("erased");
  };
  EXPECT_THROW(run(pool, 100, body, {.schedule = {Schedule::kGuided, 1}}),
               std::runtime_error);
}

TEST(Exceptions, CollapsedExecutorPropagates) {
  ThreadPool pool(4);
  const auto space = index::CoalescedSpace::create({30, 30}).value();
  EXPECT_THROW(run(pool, space,
                   [](std::span<const i64> idx) {
                     if (idx[0] == 15 && idx[1] == 15) {
                       throw std::runtime_error("collapsed");
                     }
                   },
                   {.schedule = {Schedule::kGuided, 1}}),
               std::runtime_error);
  // Reusable afterwards.
  const ForStats stats = run(pool, space, [](std::span<const i64>) {},
                             {.schedule = {Schedule::kGuided, 1}});
  EXPECT_TRUE(stats.completed());
}

TEST(Exceptions, ReduceRethrowsAndPoolSurvives) {
  ThreadPool pool(4);
  EXPECT_THROW(run_sum(pool, 10'000,
                       [](i64 j) -> double {
                         if (j == 5'000) {
                           throw std::runtime_error("reduce");
                         }
                         return 1.0;
                       },
                       {.schedule = {Schedule::kChunked, 32}}),
               std::runtime_error);
  const ReduceResult ok = run_sum(pool, 1'000, [](i64) { return 1.0; },
                                  {.schedule = {Schedule::kChunked, 32}});
  EXPECT_DOUBLE_EQ(ok.value, 1'000.0);
  EXPECT_TRUE(ok.stats.completed());
}

TEST(Exceptions, WorkerZeroThrowOutOfRunRegionStillJoins) {
  // The ThreadPool contract: worker 0 (the caller) may throw out of its
  // body; the region joins first, then rethrows, and the pool is intact.
  ThreadPool pool(4);
  std::atomic<int> others{0};
  EXPECT_THROW(pool.run_region([&](std::size_t w) {
    if (w == 0) throw std::runtime_error("caller failed");
    others.fetch_add(1);
  }),
               std::runtime_error);
  EXPECT_EQ(others.load(), 3);
  std::atomic<int> hits{0};
  pool.run_region([&](std::size_t) { hits.fetch_add(1); });
  EXPECT_EQ(hits.load(), 4);
}

// ---- stats under partial completion --------------------------------------------

TEST(PartialStats, MonotonicAndBoundedUnderCancellation) {
  ThreadPool pool(4);
  const ScheduleParams kinds[] = {
      {Schedule::kSelf, 1},      {Schedule::kChunked, 32},
      {Schedule::kGuided, 1},    {Schedule::kFactoring, 1},
      {Schedule::kTrapezoid, 1},
  };
  for (const ScheduleParams params : kinds) {
    CancellationSource source;
    std::atomic<std::uint64_t> ran{0};
    const ForStats stats = run(
        pool, 100'000,
        [&](i64) {
          if (ran.fetch_add(1) + 1 == 1'000) source.request_cancel();
        },
        {.schedule = params, .control = RunControl{source.token(), {}}});
    EXPECT_TRUE(stats.cancelled) << to_string(params.kind);
    EXPECT_EQ(stats.iterations_done(), ran.load()) << to_string(params.kind);
    EXPECT_LE(stats.iterations_done(), stats.iterations_requested)
        << to_string(params.kind);
    // Every executed chunk was granted: execution never exceeds dispatch.
    EXPECT_LE(stats.chunks_executed, stats.dispatch_ops)
        << to_string(params.kind);
    EXPECT_FALSE(stats.completed()) << to_string(params.kind);
  }
}

TEST(PartialStats, IterationsDoneSumsPerWorkerCounts) {
  ThreadPool pool(3);
  const ForStats stats =
      run(pool, 777, [](i64) {}, {.schedule = {Schedule::kGuided, 1}});
  std::uint64_t sum = 0;
  for (const auto n : stats.iterations_per_worker) sum += n;
  EXPECT_EQ(stats.iterations_done(), sum);
  EXPECT_EQ(sum, 777u);
}

// ---- dispatcher cancel ---------------------------------------------------------

TEST(DispatcherCancel, FetchAddPoisonExhaustsImmediately) {
  FetchAddDispatcher d(1'000, 10);
  EXPECT_FALSE(d.next().empty());
  const std::uint64_t ops = d.dispatch_ops();
  d.cancel();
  EXPECT_TRUE(d.next().empty());
  EXPECT_TRUE(d.next().empty());
  EXPECT_EQ(d.dispatch_ops(), ops);  // exhausted polls are not dispatches
}

TEST(DispatcherCancel, ChunkSchedulePoisonExhaustsImmediately) {
  index::GuidedPolicy policy(4);
  ChunkScheduleDispatcher d(index::ChunkSchedule::precompute(policy, 1'000));
  EXPECT_FALSE(d.next().empty());
  d.cancel();
  EXPECT_TRUE(d.next().empty());
}

TEST(DispatcherCancel, PolicyPoisonExhaustsImmediately) {
  PolicyDispatcher d(1'000, std::make_unique<index::GuidedPolicy>(4));
  EXPECT_FALSE(d.next().empty());
  d.cancel();
  EXPECT_TRUE(d.next().empty());
}

TEST(DispatcherCancel, CancelIsIdempotent) {
  FetchAddDispatcher d(100, 5);
  d.cancel();
  d.cancel();
  EXPECT_TRUE(d.next().empty());
  d.cancel();  // after exhaustion, still fine
  EXPECT_TRUE(d.next().empty());
}

// ---- fault-injection harness ---------------------------------------------------

class FaultHarness : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!fault::kEnabled) {
      GTEST_SKIP() << "built with COALESCE_ENABLE_FAULTS=OFF";
    }
  }
};

TEST_F(FaultHarness, ThrowAtIterationFiresAtExactlyThatIteration) {
  constexpr i64 kFaultAt = 137;
  ThreadPool pool(4);
  fault::FaultPlan plan;
  plan.throw_at_iteration = kFaultAt;
  plan.install();
  std::vector<std::atomic<int>> executed(1'001);
  bool caught = false;
  try {
    run(pool, 1'000,
        [&](i64 j) { executed[static_cast<std::size_t>(j)] = 1; },
        {.schedule = {Schedule::kChunked, 16}});
  } catch (const fault::FaultInjected& e) {
    caught = true;
    EXPECT_NE(std::string(e.what()).find("137"), std::string::npos);
  }
  plan.uninstall();
  ASSERT_TRUE(caught);
  EXPECT_EQ(plan.faults_fired(), 1u);
  // The faulting iteration itself never ran; its chunk-prefix did.
  EXPECT_EQ(executed[kFaultAt].load(), 0);
  const i64 chunk_first = ((kFaultAt - 1) / 16) * 16 + 1;
  for (i64 j = chunk_first; j < kFaultAt; ++j) {
    EXPECT_EQ(executed[static_cast<std::size_t>(j)].load(), 1) << j;
  }
}

TEST_F(FaultHarness, ThrowIsDeterministicAcrossRuns) {
  ThreadPool pool(4);
  fault::FaultPlan plan;
  plan.throw_at_iteration = 500;
  plan.install();
  for (int attempt = 0; attempt < 3; ++attempt) {
    plan.reset();
    std::atomic<int> hit_fault_iteration{0};
    EXPECT_THROW(run(pool, 1'000,
                     [&](i64 j) {
                       if (j == 500) hit_fault_iteration.store(1);
                     },
                     {.schedule = {Schedule::kGuided, 1}}),
                 fault::FaultInjected)
        << "attempt " << attempt;
    EXPECT_EQ(hit_fault_iteration.load(), 0) << "attempt " << attempt;
    EXPECT_EQ(plan.faults_fired(), 1u) << "attempt " << attempt;
  }
  plan.uninstall();
}

TEST_F(FaultHarness, StallDelaysButLosesNothing) {
  // Static blocks so worker 0 is guaranteed a grant (under a dynamic
  // schedule the other worker can drain every chunk first and the stall,
  // armed on a worker that never takes work, legitimately never fires).
  ThreadPool pool(2);
  fault::FaultPlan plan;
  plan.stall_worker = 0;
  plan.stall_ns = 2'000'000;  // 2 ms
  plan.install();
  const ForStats stats =
      run(pool, 5'000, [](i64) {}, {.schedule = {Schedule::kStaticBlock}});
  plan.uninstall();
  EXPECT_TRUE(stats.completed());
  EXPECT_EQ(plan.faults_fired(), 1u);
  EXPECT_EQ(stats.iterations_done(), 5'000u);
  EXPECT_GE(stats.wall_seconds, 0.002);  // the stall really delayed the run
}

TEST_F(FaultHarness, InjectedCancelStopsWithoutException) {
  ThreadPool pool(4);
  fault::FaultPlan plan;
  plan.cancel_at_chunk = 2;
  plan.install();
  const ForStats stats =
      run(pool, 100'000, [](i64) {}, {.schedule = {Schedule::kChunked, 64}});
  plan.uninstall();
  EXPECT_TRUE(stats.cancelled);
  EXPECT_FALSE(stats.completed());
  EXPECT_LT(stats.iterations_done(), 100'000u);
  EXPECT_EQ(plan.faults_fired(), 1u);
}

TEST_F(FaultHarness, EachFaultFiresAtMostOncePerPlan) {
  ThreadPool pool(2);
  fault::FaultPlan plan;
  plan.cancel_at_chunk = 1;
  plan.install();
  (void)run(pool, 10'000, [](i64) {}, {.schedule = {Schedule::kChunked, 16}});
  const std::uint64_t fired_once = plan.faults_fired();
  // Second region, same (un-reset) plan: the cancel is already spent.
  const ForStats second =
      run(pool, 1'000, [](i64) {}, {.schedule = {Schedule::kChunked, 16}});
  plan.uninstall();
  EXPECT_EQ(fired_once, 1u);
  EXPECT_EQ(plan.faults_fired(), 1u);
  EXPECT_TRUE(second.completed());
}

TEST_F(FaultHarness, ResetRearmsTheFaults) {
  ThreadPool pool(2);
  fault::FaultPlan plan;
  plan.cancel_at_chunk = 1;
  plan.install();
  const ForStats first =
      run(pool, 10'000, [](i64) {}, {.schedule = {Schedule::kChunked, 16}});
  plan.reset();
  const ForStats second =
      run(pool, 10'000, [](i64) {}, {.schedule = {Schedule::kChunked, 16}});
  plan.uninstall();
  EXPECT_TRUE(first.cancelled);
  EXPECT_TRUE(second.cancelled);
  EXPECT_EQ(plan.faults_fired(), 1u);  // reset cleared the first firing
}

TEST_F(FaultHarness, ChunksSeenCountsEveryGrantWhileArmed) {
  ThreadPool pool(1);
  fault::FaultPlan plan;
  plan.cancel_at_chunk = 1'000'000;  // armed but out of reach: pure observer
  ASSERT_TRUE(plan.armed());
  plan.install();
  (void)run(pool, 100, [](i64) {}, {.schedule = {Schedule::kChunked, 10}});
  plan.uninstall();
  EXPECT_EQ(plan.chunks_seen(), 10u);
  EXPECT_EQ(plan.faults_fired(), 0u);
}

TEST_F(FaultHarness, UnarmedPlanTakesTheFastPathAndCountsNothing) {
  ThreadPool pool(1);
  fault::FaultPlan plan;  // nothing armed: grants bypass the counters
  ASSERT_FALSE(plan.armed());
  plan.install();
  const ForStats stats =
      run(pool, 100, [](i64) {}, {.schedule = {Schedule::kChunked, 10}});
  plan.uninstall();
  EXPECT_TRUE(stats.completed());
  EXPECT_EQ(plan.chunks_seen(), 0u);
  EXPECT_EQ(plan.faults_fired(), 0u);
}

TEST_F(FaultHarness, InstallUninstallManageTheProcessSlot) {
  EXPECT_EQ(fault::FaultPlan::current(), nullptr);
  fault::FaultPlan plan;
  plan.install();
  EXPECT_EQ(fault::FaultPlan::current(), &plan);
  plan.uninstall();
  EXPECT_EQ(fault::FaultPlan::current(), nullptr);
}

TEST_F(FaultHarness, CopyTransfersConfigurationNotCounters) {
  ThreadPool pool(1);
  fault::FaultPlan original;
  original.throw_at_iteration = 42;
  original.install();
  EXPECT_THROW(run(pool, 100, [](i64) {}, {.schedule = {Schedule::kSelf, 1}}),
               fault::FaultInjected);
  original.uninstall();
  ASSERT_GT(original.chunks_seen(), 0u);

  const fault::FaultPlan copy(original);
  EXPECT_EQ(copy.throw_at_iteration, 42);
  EXPECT_EQ(copy.chunks_seen(), 0u);
  EXPECT_EQ(copy.faults_fired(), 0u);
}

TEST_F(FaultHarness, FromSeedIsDeterministic) {
  for (std::uint64_t seed = 0; seed < 32; ++seed) {
    const auto a = fault::FaultPlan::from_seed(seed, 10'000, 8);
    const auto b = fault::FaultPlan::from_seed(seed, 10'000, 8);
    EXPECT_EQ(a.throw_at_iteration, b.throw_at_iteration) << seed;
    EXPECT_EQ(a.cancel_at_chunk, b.cancel_at_chunk) << seed;
    EXPECT_EQ(a.stall_worker, b.stall_worker) << seed;
    EXPECT_EQ(a.stall_ns, b.stall_ns) << seed;
  }
}

TEST_F(FaultHarness, FromSeedCoversAllThreeFaultKinds) {
  bool saw_throw = false;
  bool saw_stall = false;
  bool saw_cancel = false;
  for (std::uint64_t seed = 0; seed < 64; ++seed) {
    const auto plan = fault::FaultPlan::from_seed(seed, 1'000, 4);
    if (plan.throw_at_iteration > 0) {
      saw_throw = true;
      EXPECT_GE(plan.throw_at_iteration, 1);
      EXPECT_LE(plan.throw_at_iteration, 1'000);
    } else if (plan.stall_worker >= 0) {
      saw_stall = true;
      EXPECT_LT(plan.stall_worker, 4);
      EXPECT_GE(plan.stall_ns, 1'000'000);
    } else {
      saw_cancel = plan.cancel_at_chunk > 0 || saw_cancel;
    }
  }
  EXPECT_TRUE(saw_throw);
  EXPECT_TRUE(saw_stall);
  EXPECT_TRUE(saw_cancel);
}

TEST_F(FaultHarness, FromSeedOnEmptyLoopArmsNothing) {
  const auto plan = fault::FaultPlan::from_seed(7, 0, 4);
  EXPECT_EQ(plan.throw_at_iteration, 0);
  EXPECT_EQ(plan.cancel_at_chunk, 0);
  EXPECT_EQ(plan.stall_worker, -1);
}

TEST_F(FaultHarness, UninstalledPlanCostsNoBehaviorChange) {
  ThreadPool pool(4);
  const ForStats stats =
      run(pool, 10'000, [](i64) {}, {.schedule = {Schedule::kGuided, 1}});
  EXPECT_TRUE(stats.completed());
  EXPECT_EQ(fault::FaultPlan::current(), nullptr);
}

TEST_F(FaultHarness, PoolReusableAfterEveryFaultKind) {
  ThreadPool pool(4);
  for (int kind = 0; kind < 3; ++kind) {
    fault::FaultPlan plan;
    if (kind == 0) plan.throw_at_iteration = 100;
    if (kind == 1) plan.cancel_at_chunk = 1;
    if (kind == 2) {
      plan.stall_worker = 1;
      plan.stall_ns = 500'000;
    }
    plan.install();
    try {
      (void)run(pool, 10'000, [](i64) {},
                {.schedule = {Schedule::kChunked, 16}});
    } catch (const fault::FaultInjected&) {
    }
    plan.uninstall();
    std::atomic<std::uint64_t> ran{0};
    const ForStats after = run(pool, 1'000, [&](i64) { ran.fetch_add(1); },
                               {.schedule = {Schedule::kSelf, 1}});
    EXPECT_TRUE(after.completed()) << "fault kind " << kind;
    EXPECT_EQ(ran.load(), 1'000u) << "fault kind " << kind;
  }
}

// ---- trace integration ---------------------------------------------------------

TEST(FaultTrace, CancelEmitsTraceEventAndCounter) {
  if (!trace::kEnabled) GTEST_SKIP() << "tracing compiled out";
  ThreadPool pool(2);
  trace::Recorder recorder;
  recorder.install();
  CancellationSource source;
  source.request_cancel();
  (void)run(pool, 1'000, [](i64) {},
            {.schedule = {Schedule::kChunked, 8},
             .control = RunControl{source.token(), {}}});
  recorder.uninstall();
  bool saw_cancel = false;
  for (const trace::Event& e : recorder.all_events()) {
    if (e.kind == trace::EventKind::kCancel) {
      saw_cancel = true;
      EXPECT_EQ(e.arg0, static_cast<i64>(trace::CancelCause::kToken));
    }
  }
  EXPECT_TRUE(saw_cancel);
  EXPECT_GE(recorder.counters().total(trace::Counter::kCancels), 1u);
}

TEST(FaultTrace, InjectedThrowEmitsFaultEvent) {
  if (!trace::kEnabled) GTEST_SKIP() << "tracing compiled out";
  if (!fault::kEnabled) GTEST_SKIP() << "faults compiled out";
  ThreadPool pool(2);
  trace::Recorder recorder;
  recorder.install();
  fault::FaultPlan plan;
  plan.throw_at_iteration = 50;
  plan.install();
  EXPECT_THROW(run(pool, 1'000, [](i64) {},
                   {.schedule = {Schedule::kChunked, 8}}),
               fault::FaultInjected);
  plan.uninstall();
  recorder.uninstall();
  bool saw_fault = false;
  bool saw_exception_cancel = false;
  for (const trace::Event& e : recorder.all_events()) {
    if (e.kind == trace::EventKind::kFaultInject) {
      saw_fault = true;
      EXPECT_EQ(e.arg0, static_cast<i64>(fault::FaultKind::kThrow));
      EXPECT_EQ(e.arg1, 50);
    }
    if (e.kind == trace::EventKind::kCancel &&
        e.arg0 == static_cast<i64>(trace::CancelCause::kException)) {
      saw_exception_cancel = true;
    }
  }
  EXPECT_TRUE(saw_fault);
  EXPECT_TRUE(saw_exception_cancel);
  EXPECT_EQ(recorder.counters().total(trace::Counter::kFaultsInjected), 1u);
}

TEST(FaultTrace, DeadlineCancelCauseIsRecorded) {
  if (!trace::kEnabled) GTEST_SKIP() << "tracing compiled out";
  ThreadPool pool(2);
  trace::Recorder recorder;
  recorder.install();
  (void)run(pool, 1'000, [](i64) {},
            {.schedule = {Schedule::kChunked, 8},
             .control = RunControl{{}, Deadline::after_ms(0)}});
  recorder.uninstall();
  bool saw = false;
  for (const trace::Event& e : recorder.all_events()) {
    if (e.kind == trace::EventKind::kCancel &&
        e.arg0 == static_cast<i64>(trace::CancelCause::kDeadline)) {
      saw = true;
    }
  }
  EXPECT_TRUE(saw);
}

}  // namespace
}  // namespace coalesce::runtime
