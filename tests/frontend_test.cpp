// Tests for the lexer and parser, including the printer round-trip
// property: declarations + printed nest re-parse to a program that prints
// identically.
#include <gtest/gtest.h>

#include "core/api.hpp"
#include "frontend/lexer.hpp"
#include "frontend/parser.hpp"
#include "ir/builder.hpp"
#include "ir/eval.hpp"
#include "ir/printer.hpp"
#include "transform/coalesce.hpp"
#include "transform/guarded.hpp"

namespace coalesce::frontend {
namespace {

// ---- lexer ------------------------------------------------------------------

TEST(Lexer, TokenizesAllCategories) {
  const auto tokens =
      tokenize("doall i = 1, 10 { A[i] = fdiv(i + 2, 3) * -4; }");
  ASSERT_TRUE(tokens.ok());
  const auto& ts = tokens.value();
  EXPECT_EQ(ts.front().kind, TokenKind::kIdentifier);
  EXPECT_EQ(ts.front().text, "doall");
  EXPECT_EQ(ts.back().kind, TokenKind::kEnd);
}

TEST(Lexer, TwoCharacterOperators) {
  const auto tokens = tokenize("<= >= == != && || < >");
  ASSERT_TRUE(tokens.ok());
  const auto& ts = tokens.value();
  ASSERT_EQ(ts.size(), 9u);  // 8 operators + end
  EXPECT_EQ(ts[0].kind, TokenKind::kLe);
  EXPECT_EQ(ts[1].kind, TokenKind::kGe);
  EXPECT_EQ(ts[2].kind, TokenKind::kEq);
  EXPECT_EQ(ts[3].kind, TokenKind::kNe);
  EXPECT_EQ(ts[4].kind, TokenKind::kAndAnd);
  EXPECT_EQ(ts[5].kind, TokenKind::kOrOr);
  EXPECT_EQ(ts[6].kind, TokenKind::kLt);
  EXPECT_EQ(ts[7].kind, TokenKind::kGt);
}

TEST(Lexer, CommentsAndWhitespace) {
  const auto tokens = tokenize("a // comment to end\n  b");
  ASSERT_TRUE(tokens.ok());
  ASSERT_EQ(tokens.value().size(), 3u);
  EXPECT_EQ(tokens.value()[1].text, "b");
  EXPECT_EQ(tokens.value()[1].line, 2);
}

TEST(Lexer, NumbersCarryValues) {
  const auto tokens = tokenize("1234567890");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ(tokens.value()[0].number, 1234567890);
}

TEST(Lexer, RejectsUnknownCharacters) {
  EXPECT_FALSE(tokenize("a $ b").ok());
  EXPECT_FALSE(tokenize("a ! b").ok());   // bare '!'
  EXPECT_FALSE(tokenize("a & b").ok());   // bare '&'
}

TEST(Lexer, ReportsLineAndColumn) {
  const auto bad = tokenize("ok\n   ?");
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.error().message.find("2:4"), std::string::npos);
}

// ---- parser -----------------------------------------------------------------

TEST(Parser, ParsesDeclarationsAndLoop) {
  const auto program = parse_program(R"(
    array A[4][5];
    scalar t;
    param n;
    doall i = 1, 4 {
      do j = 1, 5, 2 {
        t = i * j;
        A[i][j] = t + 1;
      }
    }
  )");
  ASSERT_TRUE(program.ok()) << program.error().to_string();
  const auto& p = program.value();
  ASSERT_EQ(p.roots.size(), 1u);
  EXPECT_TRUE(p.roots[0]->parallel);
  EXPECT_EQ(p.symbols[p.symbols.lookup("A").value()].shape,
            (std::vector<std::int64_t>{4, 5}));
  const auto band = ir::perfect_band(*p.roots[0]);
  ASSERT_EQ(band.size(), 2u);
  EXPECT_EQ(band[1]->step, 2);
  EXPECT_FALSE(band[1]->parallel);
}

TEST(Parser, ParsesGuardsAndComparisons) {
  const auto nest = parse_nest(R"(
    array A[6][6];
    doall i = 1, 6 {
      doall j = 1, 6 {
        if (j <= i && i != 3) {
          A[i][j] = 1;
        }
      }
    }
  )");
  ASSERT_TRUE(nest.ok()) << nest.error().to_string();
  EXPECT_EQ(ir::collect_guards(*nest.value().root).size(), 1u);

  // Semantics: count the written cells.
  ir::Evaluator eval(nest.value().symbols);
  eval.run(*nest.value().root);
  double sum = 0;
  for (double v :
       eval.store().data(nest.value().symbols.lookup("A").value())) {
    sum += v;
  }
  EXPECT_EQ(sum, 21.0 - 3.0);  // triangle minus row i==3's cells (j<=3)
}

TEST(Parser, IntrinsicCallsMapToOps) {
  const auto nest = parse_nest(R"(
    array A[10];
    do i = 1, 10 {
      A[i] = fdiv(i, 2) + cdiv(i, 3) + mod(i, 4) + min(i, 5) + max(i, 6);
    }
  )");
  ASSERT_TRUE(nest.ok()) << nest.error().to_string();
  const auto assigns = ir::collect_assignments(*nest.value().root);
  ASSERT_EQ(assigns.size(), 1u);
  EXPECT_EQ(ir::division_count(assigns[0].stmt->rhs), 3u);
}

TEST(Parser, OpaqueCallsPreserved) {
  const auto nest = parse_nest(R"(
    array A[4];
    do i = 1, 4 {
      A[i] = real_div(A[i], 2);
    }
  )");
  ASSERT_TRUE(nest.ok());
  ir::Evaluator eval(nest.value().symbols);
  const auto a = nest.value().symbols.lookup("A").value();
  eval.store().fill(a, 8.0);
  eval.run(*nest.value().root);
  for (double v : eval.store().data(a)) EXPECT_EQ(v, 4.0);
}

TEST(Parser, TriangularBoundsReferenceOuterVar) {
  const auto nest = parse_nest(R"(
    array OUT[8][8];
    doall i = 1, 8 {
      doall j = 1, i {
        OUT[i][j] = i * 10 + j;
      }
    }
  )");
  ASSERT_TRUE(nest.ok());
  const auto result = transform::coalesce_guarded(nest.value());
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().active_points, 36);
}

TEST(Parser, MultipleTopLevelLoops) {
  const auto program = parse_program(R"(
    array A[4];
    array B[4];
    doall i = 1, 4 { A[i] = i; }
    doall k = 1, 4 { B[k] = A[k]; }
  )");
  ASSERT_TRUE(program.ok());
  EXPECT_EQ(program.value().roots.size(), 2u);
}

TEST(Parser, SequentialReuseOfInductionNameAllowed) {
  const auto program = parse_program(R"(
    array A[4];
    do i = 1, 4 { A[i] = 1; }
    do i = 1, 4 { A[i] = 2; }
  )");
  ASSERT_TRUE(program.ok()) << program.error().to_string();
  EXPECT_EQ(program.value().roots[0]->var, program.value().roots[1]->var);
}

TEST(Parser, NegativeBoundsAndUnaryMinus) {
  const auto nest = parse_nest(R"(
    array A[7];
    do i = -3, 3 {
      A[i + 4] = -i;
    }
  )");
  ASSERT_TRUE(nest.ok()) << nest.error().to_string();
  EXPECT_EQ(ir::as_constant(nest.value().root->lower).value(), -3);
}

// ---- parse errors --------------------------------------------------------------

TEST(ParserErrors, UsefulDiagnostics) {
  struct Case {
    const char* source;
    const char* needle;
  };
  const Case cases[] = {
      {"array A[3]; do i = 1 { A[i] = 1; }", "expected ','"},
      {"array A[3]; do i = 1, 3 { A[i] = ; }", "expected an expression"},
      {"array A[3]; do i = 1, 3 { B[i] = 1; }", "undeclared"},
      {"array A[3]; do i = 1, 3 { A[i] = j; }", "undeclared"},
      {"array A[3]; doall i = 1, 3 { do i = 1, 2 { A[i] = 1; } }",
       "shadows"},
      {"array A[3];", "at least one loop"},
      {"array A[3]; array A[4]; do i = 1, 3 { A[i] = 1; }",
       "already declared"},
      {"array A[3]; do i = 1, 3 { A[i] = 1; } trailing", "unexpected"},
      {"array A[3]; do i = 1, 3, 0 { A[i] = 1; }", "positive"},
      {"array A[3]; do i = 1, 3 { A = 1; }", "subscripts"},
  };
  for (const auto& c : cases) {
    const auto result = parse_program(c.source);
    ASSERT_FALSE(result.ok()) << c.source;
    EXPECT_NE(result.error().message.find(c.needle), std::string::npos)
        << c.source << " -> " << result.error().message;
  }
}

// ---- round trips -----------------------------------------------------------------

void expect_round_trip(const ir::LoopNest& nest) {
  const std::string text =
      declarations_to_string(nest.symbols) + ir::to_string(nest);
  const auto reparsed = parse_nest(text);
  ASSERT_TRUE(reparsed.ok()) << reparsed.error().to_string() << "\n" << text;
  const std::string text2 = declarations_to_string(reparsed.value().symbols) +
                            ir::to_string(reparsed.value());
  EXPECT_EQ(text, text2);
  EXPECT_TRUE(core::equivalent_by_execution(nest, reparsed.value())) << text;
}

TEST(RoundTrip, AllStockWorkloads) {
  expect_round_trip(ir::make_rectangular_witness({3, 4}));
  expect_round_trip(ir::make_rectangular_witness({2, 3, 2}));
  expect_round_trip(ir::make_matmul(4, 3, 2));
  expect_round_trip(ir::make_gauss_jordan_backsolve(4, 2));
  expect_round_trip(ir::make_jacobi_step(4));
  expect_round_trip(ir::make_recurrence(6));
  expect_round_trip(ir::make_pi_strips(3, 5));
  expect_round_trip(ir::make_triangular_witness(5));
  expect_round_trip(ir::make_pivot_update(5, 2));
}

TEST(RoundTrip, TransformedNestsAlsoRoundTrip) {
  // Coalesced output (div/mod recovery expressions) must re-parse.
  const auto coalesced =
      transform::coalesce_nest(ir::make_rectangular_witness({4, 5}));
  ASSERT_TRUE(coalesced.ok());
  expect_round_trip(coalesced.value().nest);

  const auto guarded =
      transform::coalesce_guarded(ir::make_triangular_witness(6));
  ASSERT_TRUE(guarded.ok());
  expect_round_trip(guarded.value().nest);
}

}  // namespace
}  // namespace coalesce::frontend
