// Randomized property tests: generate random loop nests and check that
// every transformation preserves interpreter semantics bit-exactly.
//
// The generators are deliberately small-shaped (extents <= 6, depth <= 4)
// so each case sweeps its whole iteration space; breadth comes from count.
//
// Every generated nest is routed through the IR verifier before any
// transform touches it, and the sweep runs with the differential
// shadow-execution oracle forced on, so each accepted case is re-checked
// inside the passes themselves in addition to the explicit
// equivalent_by_execution assertions here.
#include <gtest/gtest.h>

#include <atomic>
#include <iostream>
#include <stdexcept>
#include <string>

#include "analysis/race.hpp"
#include "codegen/cost_model.hpp"
#include "runtime/race_oracle.hpp"
#include "core/api.hpp"
#include "ir/builder.hpp"
#include "runtime/fault.hpp"
#include "runtime/ir_executor.hpp"
#include "runtime/launch.hpp"
#include "runtime/thread_pool.hpp"
#include "support/cancel.hpp"
#include "ir/printer.hpp"
#include "ir/verify.hpp"
#include "support/rng.hpp"
#include "transform/coalesce.hpp"
#include "transform/distribute.hpp"
#include "transform/guarded.hpp"
#include "frontend/parser.hpp"
#include "transform/normalize.hpp"
#include "transform/postcheck.hpp"

namespace coalesce {
namespace {

using ir::ExprRef;
using ir::int_const;
using ir::LoopNest;
using ir::NestBuilder;
using ir::VarId;
using ir::var_ref;
using support::i64;
using support::Rng;

/// Random integer expression over the given induction variables; always
/// well-defined (divisors nonzero, no array reads).
ExprRef random_expr(Rng& rng, const std::vector<VarId>& ivs, int depth) {
  if (depth <= 0 || rng.uniform01() < 0.3) {
    if (!ivs.empty() && rng.uniform01() < 0.7) {
      return var_ref(ivs[static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<i64>(ivs.size()) - 1))]);
    }
    return int_const(rng.uniform_int(-9, 9));
  }
  ExprRef a = random_expr(rng, ivs, depth - 1);
  ExprRef b = random_expr(rng, ivs, depth - 1);
  switch (rng.uniform_int(0, 6)) {
    case 0: return ir::add(std::move(a), std::move(b));
    case 1: return ir::sub(std::move(a), std::move(b));
    case 2: return ir::mul(std::move(a), std::move(b));
    case 3: return ir::min_expr(std::move(a), std::move(b));
    case 4: return ir::max_expr(std::move(a), std::move(b));
    case 5:
      return ir::mod(std::move(a), int_const(rng.uniform_int(1, 7)));
    default:
      return ir::floor_div(std::move(a), int_const(rng.uniform_int(1, 5)));
  }
}

struct RandomNest {
  LoopNest nest;
  std::size_t depth;
};

/// Rectangular nest with random lower bounds, steps, extents, and one or
/// two body assignments into distinct cells of OUT.
RandomNest random_rectangular(Rng& rng) {
  NestBuilder b;
  const std::size_t depth = static_cast<std::size_t>(rng.uniform_int(2, 4));
  std::vector<i64> lowers(depth), steps(depth), extents(depth);
  std::vector<i64> shape;
  for (std::size_t d = 0; d < depth; ++d) {
    lowers[d] = rng.uniform_int(-3, 3);
    steps[d] = rng.uniform_int(1, 3);
    extents[d] = rng.uniform_int(1, 5);
    shape.push_back(extents[d]);
  }
  const VarId out = b.array("OUT", shape);
  const VarId out2 = b.array("OUT2", shape);
  std::vector<VarId> ivs;
  for (std::size_t d = 0; d < depth; ++d) {
    ivs.push_back(b.begin_parallel_loop(
        "v" + std::to_string(d), lowers[d],
        lowers[d] + (extents[d] - 1) * steps[d], steps[d]));
  }
  // Subscripts: the 1-based ordinal of each level, exact on the lattice.
  std::vector<ExprRef> subs;
  for (std::size_t d = 0; d < depth; ++d) {
    subs.push_back(ir::simplify(ir::add(
        ir::floor_div(ir::sub(var_ref(ivs[d]), int_const(lowers[d])),
                      int_const(steps[d])),
        int_const(1))));
  }
  b.assign(b.element_expr(out, subs), random_expr(rng, ivs, 3));
  if (rng.uniform01() < 0.5) {
    b.assign(b.element_expr(out2, subs), random_expr(rng, ivs, 2));
  }
  for (std::size_t d = 0; d < depth; ++d) b.end_loop();
  return RandomNest{b.build(), depth};
}

/// Rectangular nest whose array accesses are TRANSPOSED against the loop
/// order (subscripts reversed), so the contiguity analysis favors a
/// non-identity permutation — the interesting input for the locality pass.
RandomNest random_transposed(Rng& rng) {
  NestBuilder b;
  const std::size_t depth = static_cast<std::size_t>(rng.uniform_int(2, 4));
  std::vector<i64> extents(depth), shape;
  for (std::size_t d = 0; d < depth; ++d) {
    extents[d] = rng.uniform_int(1, 5);
  }
  for (std::size_t d = 0; d < depth; ++d) {
    shape.push_back(extents[depth - 1 - d]);
  }
  const VarId out = b.array("OUT", shape);
  std::vector<VarId> ivs;
  for (std::size_t d = 0; d < depth; ++d) {
    ivs.push_back(b.begin_parallel_loop("v" + std::to_string(d), 1,
                                        extents[d]));
  }
  std::vector<VarId> reversed(ivs.rbegin(), ivs.rend());
  b.assign(b.element(out, reversed), random_expr(rng, ivs, 3));
  for (std::size_t d = 0; d < depth; ++d) b.end_loop();
  return RandomNest{b.build(), depth};
}

/// 2-deep triangular nest: inner upper bound affine in the outer variable.
LoopNest random_triangular(Rng& rng) {
  NestBuilder b;
  const i64 n = rng.uniform_int(2, 7);
  const i64 slope = rng.uniform_int(1, 2);
  const i64 offset = rng.uniform_int(0, 2);
  const i64 max_inner = slope * n + offset;
  const VarId out = b.array("OUT", {n, max_inner});
  const VarId i = b.begin_parallel_loop("i", 1, n);
  const VarId j = b.begin_loop_expr(
      "j", int_const(1),
      ir::add(ir::mul(int_const(slope), var_ref(i)), int_const(offset)), 1,
      /*parallel=*/true);
  b.assign(b.element(out, {i, j}), random_expr(rng, {i, j}, 3));
  b.end_loop();
  b.end_loop();
  return b.build();
}

/// Asserts the generated nest is structurally well-formed before any
/// transform consumes it; dumps the verifier findings and the nest on
/// failure so the offending generator seed is reproducible.
void expect_verified(const LoopNest& nest) {
  const auto issues = ir::verify_nest(nest);
  for (const auto& issue : issues) {
    ADD_FAILURE() << ir::to_string(issue) << "\n" << ir::to_string(nest);
  }
  ASSERT_TRUE(issues.empty());
}

/// The sweep runs with post-pass verification AND the differential oracle
/// forced on: every transform call below shadow-executes its own output
/// against its input, independently of the explicit assertions here.
class FuzzSweep : public ::testing::TestWithParam<int> {
 protected:
  void SetUp() override {
    saved_verify_ = transform::post_verify_enabled();
    saved_oracle_ = transform::differential_oracle_enabled();
    transform::set_post_verify(true);
    transform::set_differential_oracle(true);
  }
  void TearDown() override {
    transform::set_post_verify(saved_verify_);
    transform::set_differential_oracle(saved_oracle_);
  }

 private:
  bool saved_verify_ = true;
  bool saved_oracle_ = false;
};

TEST_P(FuzzSweep, CoalesceNestPreservesSemantics) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919);
  for (int trial = 0; trial < 60; ++trial) {
    const RandomNest rn = random_rectangular(rng);
    expect_verified(rn.nest);
    for (auto style : {transform::RecoveryStyle::kPaperClosedForm,
                       transform::RecoveryStyle::kMixedRadix}) {
      transform::CoalesceOptions options;
      options.recovery = style;
      const auto result = transform::coalesce_nest(rn.nest, options);
      ASSERT_TRUE(result.ok())
          << result.error().to_string() << "\n" << ir::to_string(rn.nest);
      ASSERT_TRUE(core::equivalent_by_execution(rn.nest, result.value().nest))
          << "original:\n" << ir::to_string(rn.nest) << "coalesced:\n"
          << ir::to_string(result.value().nest);
    }
  }
}

TEST_P(FuzzSweep, PartialCoalescePreservesSemantics) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 104729);
  for (int trial = 0; trial < 40; ++trial) {
    const RandomNest rn = random_rectangular(rng);
    expect_verified(rn.nest);
    transform::CoalesceOptions options;
    options.levels = static_cast<std::size_t>(
        rng.uniform_int(2, static_cast<i64>(rn.depth)));
    const auto result = transform::coalesce_nest(rn.nest, options);
    ASSERT_TRUE(result.ok()) << result.error().to_string();
    ASSERT_TRUE(core::equivalent_by_execution(rn.nest, result.value().nest));
  }
}

TEST_P(FuzzSweep, NormalizeThenCoalescePreservesSemantics) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 1299709);
  for (int trial = 0; trial < 40; ++trial) {
    const RandomNest rn = random_rectangular(rng);
    expect_verified(rn.nest);
    const auto normalized = transform::normalize_nest(rn.nest);
    ASSERT_TRUE(normalized.ok());
    ASSERT_TRUE(core::equivalent_by_execution(rn.nest, normalized.value()));
    const auto result = transform::coalesce_nest(normalized.value());
    ASSERT_TRUE(result.ok());
    ASSERT_TRUE(core::equivalent_by_execution(rn.nest, result.value().nest));
  }
}

TEST_P(FuzzSweep, LocalityPermutationThenCoalescePreservesSemantics) {
  // Every choose_permutation() decision is exercised end to end: the pass
  // runs with the differential shadow oracle forced on (fixture), so each
  // applied permutation is re-executed against its input inside
  // transform::permute, and the explicit checks here compare the permuted
  // AND the permuted+coalesced nest bit-exactly against the original.
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 999983);
  int permuted_count = 0;
  for (int trial = 0; trial < 40; ++trial) {
    const RandomNest rn = (trial % 2 == 0) ? random_rectangular(rng)
                                           : random_transposed(rng);
    expect_verified(rn.nest);
    const auto choice = codegen::choose_permutation(rn.nest);
    if (!choice.tile_hint.empty()) {
      ASSERT_EQ(choice.tile_hint.size(), choice.perm.size());
    }
    if (choice.worthwhile()) {
      ASSERT_LT(choice.cost_after, choice.cost_before);
      ++permuted_count;
    }
    const ir::LoopNest permuted = codegen::permute_for_locality(rn.nest);
    expect_verified(permuted);
    ASSERT_TRUE(core::equivalent_by_execution(rn.nest, permuted))
        << "original:\n" << ir::to_string(rn.nest) << "permuted:\n"
        << ir::to_string(permuted);
    const auto result = transform::coalesce_nest(permuted);
    ASSERT_TRUE(result.ok()) << result.error().to_string();
    ASSERT_TRUE(core::equivalent_by_execution(rn.nest, result.value().nest))
        << "original:\n" << ir::to_string(rn.nest) << "coalesced:\n"
        << ir::to_string(result.value().nest);
  }
  // The transposed generator exists to make the pass fire; if it never
  // does, the sweep is testing nothing but the identity path.
  EXPECT_GT(permuted_count, 0);
}

TEST_P(FuzzSweep, GuardedCoalescePreservesTriangles) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 15485863);
  for (int trial = 0; trial < 60; ++trial) {
    const LoopNest nest = random_triangular(rng);
    expect_verified(nest);
    const auto result = transform::coalesce_guarded(nest);
    ASSERT_TRUE(result.ok()) << result.error().to_string();
    ASSERT_GE(result.value().active_points, 1);
    ASSERT_LE(result.value().active_points, result.value().box_points);
    ASSERT_TRUE(core::equivalent_by_execution(nest, result.value().nest))
        << ir::to_string(nest);
  }
}

TEST_P(FuzzSweep, DistributionPreservesSemantics) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 32452843);
  for (int trial = 0; trial < 40; ++trial) {
    // 2-4 statements over 3 arrays with random +-1 offset reads: a soup of
    // forward/backward/cyclic dependences.
    NestBuilder b;
    const i64 n = rng.uniform_int(3, 8);
    const VarId arrays[3] = {b.array("P", {n + 2}), b.array("Q", {n + 2}),
                             b.array("R", {n + 2})};
    const VarId i = b.begin_loop("i", 2, n + 1);
    const int stmts = static_cast<int>(rng.uniform_int(2, 4));
    for (int s = 0; s < stmts; ++s) {
      const VarId dst = arrays[rng.uniform_int(0, 2)];
      const VarId src = arrays[rng.uniform_int(0, 2)];
      const i64 offset = rng.uniform_int(-1, 1);
      b.assign(b.element(dst, {i}),
               ir::add(ir::array_read(
                           src, {ir::add(var_ref(i), int_const(offset))}),
                       int_const(rng.uniform_int(0, 5))));
    }
    b.end_loop();
    const LoopNest nest = b.build();
    expect_verified(nest);

    const auto program = transform::distribute_root(nest);
    ASSERT_TRUE(program.ok());
    ASSERT_TRUE(core::equivalent_by_execution(nest, program.value()))
        << ir::to_string(nest);
  }
}

TEST_P(FuzzSweep, MakePerfectThenCoalesceProgram) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 49979687);
  for (int trial = 0; trial < 25; ++trial) {
    // Imperfect 2-deep nest: outer body = init assignment + inner loop.
    NestBuilder b;
    const i64 n = rng.uniform_int(2, 6);
    const i64 m = rng.uniform_int(2, 6);
    const VarId a = b.array("A", {n, m});
    const VarId row = b.array("ROW", {n});
    const VarId i = b.begin_parallel_loop("i", 1, n);
    b.assign(b.element(row, {i}), random_expr(rng, {i}, 2));
    const VarId j = b.begin_parallel_loop("j", 1, m);
    b.assign(b.element(a, {i, j}), random_expr(rng, {i, j}, 2));
    b.end_loop();
    b.end_loop();
    const LoopNest nest = b.build();
    expect_verified(nest);

    auto program = transform::make_perfect(nest);
    ASSERT_TRUE(program.ok());
    const auto coalesced = transform::coalesce_program(program.value());
    ASSERT_TRUE(core::equivalent_by_execution(nest, coalesced.program))
        << ir::to_string(nest);
  }
}

TEST_P(FuzzSweep, FrontendRoundTripsRandomNests) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 86028121);
  for (int trial = 0; trial < 40; ++trial) {
    const RandomNest rn = random_rectangular(rng);
    expect_verified(rn.nest);
    const std::string text =
        frontend::declarations_to_string(rn.nest.symbols) +
        ir::to_string(rn.nest);
    const auto reparsed = frontend::parse_nest(text);
    ASSERT_TRUE(reparsed.ok())
        << reparsed.error().to_string() << "\n" << text;
    const std::string text2 =
        frontend::declarations_to_string(reparsed.value().symbols) +
        ir::to_string(reparsed.value());
    ASSERT_EQ(text, text2);
    ASSERT_TRUE(core::equivalent_by_execution(rn.nest, reparsed.value()));
  }
}

TEST_P(FuzzSweep, FrontendRoundTripsTransformedTriangles) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 472882027);
  for (int trial = 0; trial < 25; ++trial) {
    const ir::LoopNest nest = random_triangular(rng);
    expect_verified(nest);
    const auto result = transform::coalesce_guarded(nest);
    ASSERT_TRUE(result.ok());
    const std::string text =
        frontend::declarations_to_string(result.value().nest.symbols) +
        ir::to_string(result.value().nest);
    const auto reparsed = frontend::parse_nest(text);
    ASSERT_TRUE(reparsed.ok())
        << reparsed.error().to_string() << "\n" << text;
    ASSERT_TRUE(core::equivalent_by_execution(nest, reparsed.value()));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzSweep, ::testing::Values(1, 2, 3, 4, 5));

// ---- race-detector fuzz: static verdict vs. dynamic oracle ----------------
//
// Every generated nest goes through BOTH halves of the race detector. The
// property enforced is the soundness contract of analysis/race.hpp: a nest
// the static half declares race-free must never exhibit a dynamic conflict
// in the shadow scan. The converse gap — kMaybeRacy nests that scan clean —
// is the detector's imprecision, tallied and printed per seed (and rolled
// up in EXPERIMENTS.md E21).

/// Random 1-2 deep nest with randomized doall flags and subscripts drawn
/// from the shapes the dependence tests care about: shifted (strong SIV),
/// constant cell (ZIV / weak-zero), strided, multi-variable, and a
/// non-affine mod shape the tests must leave at kMaybe. Subscripts are
/// range-safe by construction (loops start at 3, offsets >= -2, arrays of
/// 32), so the shadow scan can always execute the nest.
LoopNest random_race_nest(Rng& rng) {
  NestBuilder b;
  const VarId a = b.array("A", {32});
  const VarId x = b.array("X", {32});
  const VarId s = b.scalar("s");
  std::vector<VarId> ivs;
  ivs.push_back(b.begin_loop("i", 3, rng.uniform_int(1, 6) + 2, 1,
                             rng.uniform01() < 0.7));
  if (rng.uniform01() < 0.4) {
    ivs.push_back(b.begin_loop("j", 3, rng.uniform_int(1, 5) + 2, 1,
                               rng.uniform01() < 0.5));
  }
  auto subscript = [&](bool allow_nonaffine) -> ExprRef {
    const VarId v = ivs[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<i64>(ivs.size()) - 1))];
    switch (rng.uniform_int(0, allow_nonaffine ? 4 : 3)) {
      case 0:  // shifted: the strong-SIV shape
        return ir::add(var_ref(v), int_const(rng.uniform_int(-2, 2)));
      case 1:  // one shared cell: ZIV / weak-zero
        return int_const(rng.uniform_int(1, 4));
      case 2:  // strided
        return ir::add(ir::mul(int_const(2), var_ref(v)),
                       int_const(rng.uniform_int(0, 1)));
      case 3:  // multi-variable when the nest is 2-deep
        return ivs.size() == 2
                   ? ir::add(var_ref(ivs[0]), var_ref(ivs[1]))
                   : ir::add(var_ref(v), int_const(rng.uniform_int(-1, 1)));
      default:  // non-affine: folds everything into cells 1..8
        return ir::add(
            ir::mod(ir::mul(var_ref(v), int_const(3)), int_const(8)),
            int_const(1));
    }
  };
  const int stmts = static_cast<int>(rng.uniform_int(1, 2));
  for (int k = 0; k < stmts; ++k) {
    if (rng.uniform01() < 0.15) {
      if (rng.uniform01() < 0.5) {  // read-before-write: unprivatizable
        b.assign(s, ir::add(var_ref(s), ir::array_read(x, {subscript(false)})));
      } else {  // assigned-before-read: privatizable
        b.assign(s, ir::array_read(x, {subscript(false)}));
      }
      continue;
    }
    b.assign(b.element_expr(a, {subscript(true)}),
             ir::add(ir::array_read(rng.uniform01() < 0.5 ? a : x,
                                    {subscript(true)}),
                     int_const(rng.uniform_int(0, 3))));
  }
  for (std::size_t d = 0; d < ivs.size(); ++d) b.end_loop();
  return b.build();
}

class RaceFuzz : public ::testing::TestWithParam<int> {};

TEST_P(RaceFuzz, StaticallyRaceFreeNestsNeverConflictDynamically) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 87178291199ull);
  int free_count = 0, maybe_count = 0, racy_count = 0;
  int maybe_scanned = 0, maybe_clean = 0;
  constexpr int kTrials = 120;
  for (int trial = 0; trial < kTrials; ++trial) {
    const LoopNest nest = random_race_nest(rng);
    expect_verified(nest);
    const analysis::RaceReport report = analysis::check_races(nest);
    const runtime::ScanResult scan = runtime::shadow_conflict_scan(nest);
    ASSERT_NE(scan.outcome, runtime::ScanOutcome::kIneligible)
        << ir::to_string(nest);
    const bool complete =
        scan.outcome != runtime::ScanOutcome::kIneligible && !scan.truncated;
    switch (report.verdict()) {
      case analysis::RaceVerdict::kRaceFree:
        ++free_count;
        // The soundness contract: race-free is a proof, not an opinion.
        ASSERT_NE(scan.outcome, runtime::ScanOutcome::kConflict)
            << "statically race-free nest conflicted dynamically on "
            << (scan.conflict ? scan.conflict->describe(nest.symbols)
                              : std::string("?"))
            << "\nseed=" << GetParam() << " trial=" << trial << "\n"
            << ir::to_string(nest);
        break;
      case analysis::RaceVerdict::kMaybeRacy:
        ++maybe_count;
        if (complete) {
          ++maybe_scanned;
          if (scan.outcome == runtime::ScanOutcome::kNoConflict) ++maybe_clean;
        }
        break;
      case analysis::RaceVerdict::kRacy:
        ++racy_count;
        // A definite race is likewise a proof: the (guard-free) nest must
        // exhibit the conflict when actually run.
        if (complete) {
          EXPECT_EQ(scan.outcome, runtime::ScanOutcome::kConflict)
              << "proven race never materialized\nseed=" << GetParam()
              << " trial=" << trial << "\n" << ir::to_string(nest);
        }
        break;
    }
  }
  // Precision: the fraction of unproven (kMaybeRacy) verdicts that were
  // false alarms on this input distribution. Printed per seed; E21 rolls
  // the seeds up.
  const double precision_gap =
      maybe_scanned > 0
          ? static_cast<double>(maybe_clean) / maybe_scanned
          : 0.0;
  std::cout << "[race-fuzz] seed=" << GetParam() << " nests=" << kTrials
            << " race-free=" << free_count << " maybe=" << maybe_count
            << " racy=" << racy_count << " maybe-dynamically-clean="
            << maybe_clean << "/" << maybe_scanned
            << " (false-alarm rate " << precision_gap << ")\n";
  RecordProperty("race_fuzz_nests", kTrials);
  RecordProperty("race_fuzz_maybe_clean", maybe_clean);
  RecordProperty("race_fuzz_maybe_scanned", maybe_scanned);
  // The sweep must exercise all three verdicts, or it is not testing the
  // boundary between them.
  EXPECT_GT(free_count, 0);
  EXPECT_GT(maybe_count, 0);
  EXPECT_GT(racy_count, 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RaceFuzz, ::testing::Values(1, 2, 3, 4, 5));

// ---- fault fuzzing -------------------------------------------------------------
//
// Randomized robustness: random nests are coalesced and EXECUTED on a real
// pool while a seeded FaultPlan (or a random cancellation point) disturbs
// the run. Properties checked per trial:
//  * an armed throw-fault surfaces as exactly one FaultInjected at the
//    join — never std::terminate, never a second rethrow;
//  * a cancelled run executes each point AT MOST once and reports honest
//    partial stats;
//  * ONE pool survives the whole random sequence of faulted runs (the
//    reusability property, asserted with a clean follow-up region).
// Every assertion message carries the derived seed, so a failure line is a
// complete repro; the nest text is printed for the IR-driven trials.
class FaultFuzz : public ::testing::TestWithParam<int> {};

TEST_P(FaultFuzz, SeededFaultPlansOverCoalescedNests) {
  if (!runtime::fault::kEnabled) {
    GTEST_SKIP() << "built with COALESCE_ENABLE_FAULTS=OFF";
  }
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 2654435761u);
  runtime::ThreadPool pool(4);
  for (int trial = 0; trial < 25; ++trial) {
    const std::uint64_t fault_seed =
        static_cast<std::uint64_t>(GetParam()) * 1'000 +
        static_cast<std::uint64_t>(trial);
    const RandomNest rn = random_rectangular(rng);
    expect_verified(rn.nest);
    const auto coalesced = transform::coalesce_nest(rn.nest);
    ASSERT_TRUE(coalesced.ok()) << "seed=" << fault_seed;
    const ir::LoopNest& flat = coalesced.value().nest;
    const auto trips = ir::constant_trip_count(*flat.root);
    ASSERT_TRUE(trips.has_value()) << "seed=" << fault_seed;

    runtime::fault::FaultPlan plan = runtime::fault::FaultPlan::from_seed(
        fault_seed, *trips, pool.concurrency());
    plan.install();
    ir::ArrayStore store(flat.symbols);
    bool threw = false;
    int rethrows = 0;
    try {
      const auto stats = runtime::execute_parallel(
          pool, flat, {runtime::Schedule::kChunked, 4}, store);
      ASSERT_TRUE(stats.ok()) << "seed=" << fault_seed;
      if (plan.throw_at_iteration > 0) {
        ADD_FAILURE() << "armed throw@" << plan.throw_at_iteration
                      << " never fired; seed=" << fault_seed << "\n"
                      << ir::to_string(rn.nest);
      }
      if (plan.cancel_at_chunk > 0) {
        // A cancel ordinal beyond the run's chunk count never fires.
        EXPECT_TRUE(stats.value().cancelled || stats.value().completed())
            << "seed=" << fault_seed;
      } else {
        EXPECT_TRUE(stats.value().completed()) << "seed=" << fault_seed;
      }
    } catch (const runtime::fault::FaultInjected&) {
      threw = true;
      ++rethrows;
    }
    plan.uninstall();
    EXPECT_EQ(threw, plan.throw_at_iteration > 0)
        << "seed=" << fault_seed << "\n" << ir::to_string(rn.nest);
    EXPECT_LE(rethrows, 1) << "seed=" << fault_seed;

    // The same pool must come back clean after every faulted trial.
    std::atomic<std::uint64_t> ran{0};
    const runtime::ForStats after =
        runtime::run(pool, 64, [&](i64) { ran.fetch_add(1); },
                     {.schedule = {runtime::Schedule::kSelf, 1}});
    ASSERT_TRUE(after.completed()) << "seed=" << fault_seed;
    ASSERT_EQ(ran.load(), 64u) << "seed=" << fault_seed;
  }
}

TEST_P(FaultFuzz, RandomCancellationPointsExecuteEachPointAtMostOnce) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 7368787u);
  runtime::ThreadPool pool(4);
  for (int trial = 0; trial < 25; ++trial) {
    const std::size_t depth = static_cast<std::size_t>(rng.uniform_int(2, 4));
    std::vector<i64> extents;
    i64 total = 1;
    for (std::size_t d = 0; d < depth; ++d) {
      extents.push_back(rng.uniform_int(2, 6));
      total *= extents.back();
    }
    const auto space = index::CoalescedSpace::create(extents).value();
    const i64 cancel_at = rng.uniform_int(1, total);
    const i64 chunk = rng.uniform_int(1, 8);

    support::CancellationSource source;
    std::vector<std::atomic<int>> hits(static_cast<std::size_t>(total));
    std::atomic<std::uint64_t> ordinal{0};
    const runtime::ForStats stats = runtime::run(
        pool, space,
        [&](std::span<const i64> idx) {
          i64 flat = 0;
          for (std::size_t d = 0; d < depth; ++d) {
            flat = flat * extents[d] + (idx[d] - 1);
          }
          hits[static_cast<std::size_t>(flat)].fetch_add(1);
          if (static_cast<i64>(ordinal.fetch_add(1) + 1) == cancel_at) {
            source.request_cancel();
          }
        },
        {.schedule = {runtime::Schedule::kChunked, chunk},
         .control = runtime::RunControl{source.token(), {}}});

    const std::string repro = "seed=" + std::to_string(GetParam()) +
                              " trial=" + std::to_string(trial) +
                              " cancel_at=" + std::to_string(cancel_at) +
                              " chunk=" + std::to_string(chunk);
    std::uint64_t executed = 0;
    for (auto& h : hits) {
      ASSERT_LE(h.load(), 1) << "point executed twice; " << repro;
      executed += static_cast<std::uint64_t>(h.load());
    }
    EXPECT_EQ(executed, stats.iterations_done()) << repro;
    EXPECT_LE(stats.iterations_done(), stats.iterations_requested) << repro;
    // The body requested the cancel at a live iteration, so it must have
    // been observed (even if every remaining chunk was already granted).
    EXPECT_TRUE(stats.cancelled) << repro;
  }
  // One clean region after the whole random sequence.
  std::atomic<std::uint64_t> ran{0};
  const runtime::ForStats after =
      runtime::run(pool, 100, [&](i64) { ran.fetch_add(1); },
                   {.schedule = {runtime::Schedule::kGuided, 1}});
  EXPECT_TRUE(after.completed());
  EXPECT_EQ(ran.load(), 100u);
}

TEST_P(FaultFuzz, RandomBodyThrowsAlwaysRethrownOnceOverSchedules) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 179424673u);
  runtime::ThreadPool pool(4);
  const runtime::ScheduleParams kinds[] = {
      {runtime::Schedule::kSelf, 1},
      {runtime::Schedule::kChunked, 8},
      {runtime::Schedule::kGuided, 1},
      {runtime::Schedule::kFactoring, 1},
      {runtime::Schedule::kTrapezoid, 1},
      {runtime::Schedule::kStaticBlock, 1},
      {runtime::Schedule::kStaticCyclic, 1},
  };
  for (int trial = 0; trial < 20; ++trial) {
    const runtime::ScheduleParams params =
        kinds[static_cast<std::size_t>(rng.uniform_int(0, 6))];
    const i64 total = rng.uniform_int(1, 5'000);
    const i64 throw_at = rng.uniform_int(1, total);
    const std::string repro = "seed=" + std::to_string(GetParam()) +
                              " trial=" + std::to_string(trial) +
                              " schedule=" + to_string(params.kind) +
                              " total=" + std::to_string(total) +
                              " throw_at=" + std::to_string(throw_at);
    int caught = 0;
    try {
      runtime::run(pool, total,
                   [&](i64 j) {
                     if (j == throw_at) throw std::runtime_error(repro);
                   },
                   {.schedule = params});
    } catch (const std::runtime_error& e) {
      ++caught;
      EXPECT_EQ(std::string(e.what()), repro);
    }
    ASSERT_EQ(caught, 1) << repro;
    // Pool reusable after every single rethrow.
    const runtime::ForStats after =
        runtime::run(pool, 32, [](i64) {}, {.schedule = params});
    ASSERT_TRUE(after.completed()) << repro;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FaultFuzz, ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace coalesce
