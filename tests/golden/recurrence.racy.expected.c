#include <inttypes.h>
#include <stdint.h>
#include <stdio.h>

static inline int64_t cg_fdiv(int64_t a, int64_t b) {
  int64_t q = a / b, r = a % b;
  if (r != 0 && ((r < 0) != (b < 0))) --q;
  return q;
}
static inline int64_t cg_cdiv(int64_t a, int64_t b) {
  int64_t q = a / b, r = a % b;
  if (r != 0 && ((r < 0) == (b < 0))) ++q;
  return q;
}
static inline int64_t cg_mod(int64_t a, int64_t b) {
  int64_t r = a % b;
  if (r != 0 && ((r < 0) != (b < 0))) r += b;
  return r;
}
static inline int64_t cg_min(int64_t a, int64_t b) { return a < b ? a : b; }
static inline int64_t cg_max(int64_t a, int64_t b) { return a > b ? a : b; }
static inline double real_div(double a, double b) { return a / b; }
static inline double avg4(double a, double b, double c, double d) {
  return (a + b + c + d) / 4.0;
}
static inline double pi_height(int64_t strip, int64_t r, int64_t strips,
                               int64_t ips) {
  double total = (double)(strips * ips);
  double g = (double)((strip - 1) * ips + r);
  double x = (g - 0.5) / total;
  return (4.0 / (1.0 + x * x)) / total;
}

static double A[64];

static void kernel_0(void) {
  /* doall */
  for (int64_t i = INT64_C(2); i <= INT64_C(64); i += 1) {
    A[i - 1] = A[i - INT64_C(1) - 1] + INT64_C(1);
  }
}

static void kernel(void) {
  kernel_0();
}

int main(void) {
  { double* p = &A[0]; for (int64_t q = 0; q < INT64_C(64); ++q) p[q] = (double)((q * 31 + 17) % 97) / 7.0; }
  kernel();
  { const double* p = &A[0]; printf("# A %" PRId64 "\n", INT64_C(64)); for (int64_t q = 0; q < INT64_C(64); ++q) printf("%.17g\n", p[q]); }
  return 0;
}
