// Golden-file snapshot tests for the C emitter: every example program is
// parsed (no analysis, no transforms — the snapshot pins the emitter, not
// the passes) and pushed through emit_c_program with default options; the
// result must match the checked-in tests/golden/<name>.expected.c byte for
// byte. An intentional emitter change regenerates the corpus with
// tools/regen_golden.sh; an unintentional one fails here with a diff hint.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "codegen/c_emitter.hpp"
#include "frontend/parser.hpp"

namespace coalesce {
namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) return {};
  std::ostringstream text;
  text << in.rdbuf();
  return text.str();
}

/// First line where the two strings disagree, for a readable failure.
std::string first_divergence(const std::string& expected,
                             const std::string& actual) {
  std::istringstream e(expected), a(actual);
  std::string el, al;
  int line = 0;
  while (true) {
    ++line;
    const bool more_e = static_cast<bool>(std::getline(e, el));
    const bool more_a = static_cast<bool>(std::getline(a, al));
    if (!more_e && !more_a) return "identical";
    if (el != al || more_e != more_a) {
      return "line " + std::to_string(line) + ":\n  expected: " +
             (more_e ? el : std::string("<eof>")) + "\n  actual:   " +
             (more_a ? al : std::string("<eof>"));
    }
  }
}

class GoldenEmission : public ::testing::TestWithParam<const char*> {};

TEST_P(GoldenEmission, MatchesCheckedInSnapshot) {
  const std::string name = GetParam();
  const std::string loop_path =
      std::string(EXAMPLES_LOOPS_DIR) + "/" + name + ".loop";
  const std::string golden_path =
      std::string(GOLDEN_DIR) + "/" + name + ".expected.c";

  const std::string source = read_file(loop_path);
  ASSERT_FALSE(source.empty()) << "cannot read " << loop_path;
  const std::string golden = read_file(golden_path);
  ASSERT_FALSE(golden.empty())
      << "missing snapshot " << golden_path
      << " — run tools/regen_golden.sh to create it";

  const auto program = frontend::parse_program(source);
  ASSERT_TRUE(program.ok()) << program.error().to_string();
  const std::string emitted = codegen::emit_c_program(program.value());

  EXPECT_EQ(emitted, golden)
      << name << ".loop emission drifted from its snapshot; first "
      << "divergence at " << first_divergence(golden, emitted)
      << "\nIf the change is intentional, regenerate with "
      << "tools/regen_golden.sh";
}

TEST_P(GoldenEmission, EmissionIsDeterministic) {
  const std::string loop_path =
      std::string(EXAMPLES_LOOPS_DIR) + "/" + GetParam() + ".loop";
  const std::string source = read_file(loop_path);
  ASSERT_FALSE(source.empty()) << "cannot read " << loop_path;
  const auto program = frontend::parse_program(source);
  ASSERT_TRUE(program.ok()) << program.error().to_string();
  EXPECT_EQ(codegen::emit_c_program(program.value()),
            codegen::emit_c_program(program.value()));
}

INSTANTIATE_TEST_SUITE_P(Examples, GoldenEmission,
                         ::testing::Values("div_zero.bad", "histogram.racy",
                                           "matmul", "overflow.bad",
                                           "racy_scalar.bad",
                                           "recurrence.racy", "stencil",
                                           "triangular"));

}  // namespace
}  // namespace coalesce