// Tests for the coalesced index space: the paper's closed-form recovery, the
// mixed-radix reference decoder, and the strength-reduced incremental
// decoder. These are the correctness heart of the reproduction, so the
// properties are swept over many space shapes (TEST_P).
#include <gtest/gtest.h>

#include <numeric>

#include "index/coalesced_space.hpp"
#include "index/incremental.hpp"
#include "support/rng.hpp"

namespace coalesce::index {
namespace {

TEST(CoalescedSpace, PaperTwoLevelExample) {
  // The worked example from the header: 4 x 3.
  const auto space = CoalescedSpace::create(std::vector<i64>{4, 3}).value();
  EXPECT_EQ(space.total(), 12);
  EXPECT_EQ(space.depth(), 2u);
  EXPECT_EQ(space.suffix_product(0), 12);
  EXPECT_EQ(space.suffix_product(1), 3);
  EXPECT_EQ(space.suffix_product(2), 1);

  std::vector<i64> idx(2);
  space.decode_paper(1, idx);
  EXPECT_EQ(idx, (std::vector<i64>{1, 1}));
  space.decode_paper(3, idx);
  EXPECT_EQ(idx, (std::vector<i64>{1, 3}));
  space.decode_paper(4, idx);
  EXPECT_EQ(idx, (std::vector<i64>{2, 1}));
  space.decode_paper(12, idx);
  EXPECT_EQ(idx, (std::vector<i64>{4, 3}));
}

TEST(CoalescedSpace, RejectsEmptyAndDegenerate) {
  EXPECT_FALSE(CoalescedSpace::create(std::vector<i64>{}).ok());
  EXPECT_FALSE(CoalescedSpace::create(std::vector<i64>{4, 0}).ok());
  EXPECT_FALSE(CoalescedSpace::create(std::vector<i64>{-2}).ok());
  EXPECT_FALSE(
      CoalescedSpace::create({LevelGeometry{1, 3, 0}}).ok());  // bad step
}

TEST(CoalescedSpace, RejectsOverflowingProduct) {
  EXPECT_FALSE(
      CoalescedSpace::create(std::vector<i64>{i64{1} << 32, i64{1} << 32})
          .ok());
}

TEST(CoalescedSpace, SingleLevelIsIdentity) {
  const auto space = CoalescedSpace::create(std::vector<i64>{7}).value();
  std::vector<i64> idx(1);
  for (i64 j = 1; j <= 7; ++j) {
    space.decode_paper(j, idx);
    EXPECT_EQ(idx[0], j);
  }
}

TEST(CoalescedSpace, OriginalValuesWithLowerAndStep) {
  // Outer: 5, 7, 9 (lower 5, step 2, extent 3); inner: 0..3 (lower 0).
  const auto space = CoalescedSpace::create(
                         {LevelGeometry{5, 3, 2}, LevelGeometry{0, 4, 1}})
                         .value();
  EXPECT_EQ(space.total(), 12);
  std::vector<i64> orig(2);
  space.decode_original(1, orig);
  EXPECT_EQ(orig, (std::vector<i64>{5, 0}));
  space.decode_original(5, orig);
  EXPECT_EQ(orig, (std::vector<i64>{7, 0}));
  space.decode_original(12, orig);
  EXPECT_EQ(orig, (std::vector<i64>{9, 3}));
  EXPECT_EQ(space.original_value(0, 2), 7);
  EXPECT_EQ(space.encode_original(orig), 12);
}

TEST(CoalescedSpace, DivisionsPerDecodeReported) {
  const auto space = CoalescedSpace::create(std::vector<i64>{4, 3, 2}).value();
  EXPECT_EQ(space.divisions_per_decode_paper(), 6u);
  EXPECT_EQ(space.divisions_per_decode_mixed_radix(), 6u);
}

// ---- parameterized sweeps over shapes ---------------------------------------

struct ShapeCase {
  std::vector<i64> extents;
};

class SpaceSweep : public ::testing::TestWithParam<ShapeCase> {};

TEST_P(SpaceSweep, PaperFormulaAgreesWithMixedRadixEverywhere) {
  const auto space = CoalescedSpace::create(GetParam().extents).value();
  std::vector<i64> a(space.depth()), b(space.depth());
  for (i64 j = 1; j <= space.total(); ++j) {
    space.decode_paper(j, a);
    space.decode_mixed_radix(j, b);
    ASSERT_EQ(a, b) << "j=" << j;
  }
}

TEST_P(SpaceSweep, DecodeEncodeIsBijective) {
  const auto space = CoalescedSpace::create(GetParam().extents).value();
  std::vector<i64> idx(space.depth());
  for (i64 j = 1; j <= space.total(); ++j) {
    space.decode_paper(j, idx);
    for (std::size_t k = 0; k < space.depth(); ++k) {
      ASSERT_GE(idx[k], 1);
      ASSERT_LE(idx[k], space.extent(k));
    }
    ASSERT_EQ(space.encode(idx), j);
  }
}

TEST_P(SpaceSweep, DecodeVisitsLexicographicOrder) {
  const auto space = CoalescedSpace::create(GetParam().extents).value();
  std::vector<i64> prev(space.depth()), cur(space.depth());
  space.decode_paper(1, prev);
  for (i64 j = 2; j <= space.total(); ++j) {
    space.decode_paper(j, cur);
    ASSERT_TRUE(std::lexicographical_compare(prev.begin(), prev.end(),
                                             cur.begin(), cur.end()))
        << "order violated at j=" << j;
    prev = cur;
  }
}

TEST_P(SpaceSweep, IncrementalDecoderTracksFullDecode) {
  const auto space = CoalescedSpace::create(GetParam().extents).value();
  IncrementalDecoder decoder(space, 1);
  std::vector<i64> expect(space.depth());
  for (i64 j = 1; j <= space.total(); ++j) {
    space.decode_paper(j, expect);
    ASSERT_EQ(decoder.position(), j);
    ASSERT_TRUE(std::equal(expect.begin(), expect.end(),
                           decoder.normalized().begin()));
    if (j < space.total()) decoder.advance();
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, SpaceSweep,
    ::testing::Values(ShapeCase{{2, 3}}, ShapeCase{{3, 2}}, ShapeCase{{1, 5}},
                      ShapeCase{{5, 1}}, ShapeCase{{1, 1, 1}},
                      ShapeCase{{4, 3, 2}}, ShapeCase{{2, 2, 2, 2}},
                      ShapeCase{{7, 11}}, ShapeCase{{16, 16}},
                      ShapeCase{{3, 1, 4, 1, 5}}, ShapeCase{{30}},
                      ShapeCase{{2, 3, 5, 7}}));

// Randomized shapes with lower bounds and steps.
class RandomGeometry : public ::testing::TestWithParam<int> {};

TEST_P(RandomGeometry, EncodeOriginalInvertsDecodeOriginal) {
  support::Rng rng(static_cast<std::uint64_t>(GetParam()) * 1000003);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t depth =
        static_cast<std::size_t>(rng.uniform_int(1, 4));
    std::vector<LevelGeometry> levels;
    for (std::size_t k = 0; k < depth; ++k) {
      levels.push_back(LevelGeometry{rng.uniform_int(-10, 10),
                                     rng.uniform_int(1, 6),
                                     rng.uniform_int(1, 4)});
    }
    const auto space = CoalescedSpace::create(levels).value();
    std::vector<i64> orig(depth);
    for (i64 j = 1; j <= space.total(); ++j) {
      space.decode_original(j, orig);
      ASSERT_EQ(space.encode_original(orig), j);
      // Each original value lies on its level's lattice.
      for (std::size_t k = 0; k < depth; ++k) {
        const auto& g = space.level(k);
        ASSERT_GE(orig[k], g.lower);
        ASSERT_LE(orig[k], g.lower + (g.extent - 1) * g.step);
        ASSERT_EQ((orig[k] - g.lower) % g.step, 0);
      }
    }
  }
}

TEST_P(RandomGeometry, IncrementalDecoderMatchesOriginals) {
  support::Rng rng(static_cast<std::uint64_t>(GetParam()) * 77777);
  for (int trial = 0; trial < 10; ++trial) {
    const std::size_t depth =
        static_cast<std::size_t>(rng.uniform_int(1, 3));
    std::vector<LevelGeometry> levels;
    for (std::size_t k = 0; k < depth; ++k) {
      levels.push_back(LevelGeometry{rng.uniform_int(-5, 5),
                                     rng.uniform_int(1, 5),
                                     rng.uniform_int(1, 3)});
    }
    const auto space = CoalescedSpace::create(levels).value();
    const i64 start = rng.uniform_int(1, space.total());
    IncrementalDecoder decoder(space, start);
    std::vector<i64> expect(depth);
    for (i64 j = start; j <= space.total(); ++j) {
      space.decode_original(j, expect);
      ASSERT_TRUE(std::equal(expect.begin(), expect.end(),
                             decoder.original().begin()))
          << "j=" << j;
      if (j < space.total()) decoder.advance();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomGeometry, ::testing::Values(1, 2, 3));

TEST(IncrementalDecoder, CarryCountMatchesTheory) {
  // Sweeping an n1 x n2 space from 1 to total: the inner digit wraps
  // (n1 - 1) times before the final position... each wrap is >= 1 carry.
  const auto space = CoalescedSpace::create(std::vector<i64>{5, 4}).value();
  IncrementalDecoder decoder(space, 1);
  for (i64 j = 1; j < space.total(); ++j) decoder.advance();
  EXPECT_EQ(decoder.carries(), 4u);  // inner wrapped after 4, 8, 12, 16
}

TEST(IncrementalDecoder, SeekRepositionsExactly) {
  const auto space = CoalescedSpace::create(std::vector<i64>{4, 3, 2}).value();
  IncrementalDecoder decoder(space, 1);
  decoder.seek(17);
  std::vector<i64> expect(3);
  space.decode_paper(17, expect);
  EXPECT_TRUE(std::equal(expect.begin(), expect.end(),
                         decoder.normalized().begin()));
  EXPECT_EQ(decoder.position(), 17);
}

// ---- division-free decode ---------------------------------------------------

// The magic multiply+shift decodes (the default paths) must agree with the
// hardware-division reference variants everywhere, on randomized shapes.
TEST(DivisionFreeDecode, MagicAgreesWithHardwareDivisionEverywhere) {
  support::Rng rng(0xD1F);
  for (int trial = 0; trial < 30; ++trial) {
    const std::size_t depth =
        static_cast<std::size_t>(rng.uniform_int(1, 5));
    std::vector<i64> extents;
    for (std::size_t k = 0; k < depth; ++k) {
      extents.push_back(rng.uniform_int(1, 9));
    }
    const auto space = CoalescedSpace::create(extents).value();
    std::vector<i64> magic(depth), hwdiv(depth);
    for (i64 j = 1; j <= space.total(); ++j) {
      space.decode_paper(j, magic);
      space.decode_paper_hwdiv(j, hwdiv);
      ASSERT_EQ(magic, hwdiv) << "decode_paper j=" << j;
      space.decode_mixed_radix(j, magic);
      space.decode_mixed_radix_hwdiv(j, hwdiv);
      ASSERT_EQ(magic, hwdiv) << "decode_mixed_radix j=" << j;
    }
  }
}

TEST(DivisionFreeDecode, AgreesOnHugeSuffixProducts) {
  // Extents chosen so the suffix products approach the i64 range where the
  // p = 63 + ceil(log2 d) scheme is at its tightest.
  const auto space = CoalescedSpace::create(
                         std::vector<i64>{3, 1 << 20, (1 << 20) - 1, 4095})
                         .value();
  support::Rng rng(0xD1F2);
  std::vector<i64> magic(4), hwdiv(4);
  for (const i64 j : {i64{1}, i64{2}, space.total() - 1, space.total()}) {
    space.decode_paper(j, magic);
    space.decode_paper_hwdiv(j, hwdiv);
    ASSERT_EQ(magic, hwdiv) << "j=" << j;
  }
  for (int trial = 0; trial < 5000; ++trial) {
    const i64 j = rng.uniform_int(1, space.total());
    space.decode_paper(j, magic);
    space.decode_paper_hwdiv(j, hwdiv);
    ASSERT_EQ(magic, hwdiv) << "j=" << j;
    space.decode_mixed_radix(j, magic);
    space.decode_mixed_radix_hwdiv(j, hwdiv);
    ASSERT_EQ(magic, hwdiv) << "j=" << j;
  }
}

TEST(DivisionFreeDecode, SeekStillMatchesFullDecode) {
  // seek() goes through decode_paper, now division-free; spot-check it
  // against the odometer on a randomized walk.
  const auto space =
      CoalescedSpace::create(std::vector<i64>{6, 7, 5, 4}).value();
  support::Rng rng(0xD1F3);
  IncrementalDecoder decoder(space, 1);
  std::vector<i64> expect(4);
  for (int hop = 0; hop < 200; ++hop) {
    const i64 j = rng.uniform_int(1, space.total());
    decoder.seek(j);
    space.decode_paper_hwdiv(j, expect);
    ASSERT_TRUE(std::equal(expect.begin(), expect.end(),
                           decoder.normalized().begin()))
        << "j=" << j;
  }
}

}  // namespace
}  // namespace coalesce::index
