// Tests for the reference interpreter: the semantics every transformation is
// verified against.
#include <gtest/gtest.h>

#include <cmath>

#include "ir/builder.hpp"
#include "ir/eval.hpp"

namespace coalesce::ir {
namespace {

TEST(ArrayStore, AllocatesRowMajorZeroFilled) {
  SymbolTable symbols;
  const VarId a = symbols.declare("A", SymbolKind::kArray, {3, 4});
  ArrayStore store(symbols);
  EXPECT_EQ(store.data(a).size(), 12u);
  for (double v : store.data(a)) EXPECT_EQ(v, 0.0);
}

TEST(ArrayStore, OneBasedSubscriptsRowMajorOffsets) {
  SymbolTable symbols;
  const VarId a = symbols.declare("A", SymbolKind::kArray, {3, 4});
  ArrayStore store(symbols);
  const std::int64_t subs_first[] = {1, 1};
  const std::int64_t subs_mid[] = {2, 3};
  const std::int64_t subs_last[] = {3, 4};
  EXPECT_EQ(store.offset(a, subs_first), 0u);
  EXPECT_EQ(store.offset(a, subs_mid), 6u);   // (2-1)*4 + (3-1)
  EXPECT_EQ(store.offset(a, subs_last), 11u);
  store.set(a, subs_mid, 2.5);
  EXPECT_EQ(store.get(a, subs_mid), 2.5);
  EXPECT_EQ(store.data(a)[6], 2.5);
}

TEST(ArrayStore, IdenticalComparesContents) {
  SymbolTable symbols;
  const VarId a = symbols.declare("A", SymbolKind::kArray, {2});
  ArrayStore s1(symbols), s2(symbols);
  EXPECT_TRUE(ArrayStore::identical(s1, s2));
  const std::int64_t sub[] = {1};
  s1.set(a, sub, 1.0);
  EXPECT_FALSE(ArrayStore::identical(s1, s2));
  s2.set(a, sub, 1.0);
  EXPECT_TRUE(ArrayStore::identical(s1, s2));
}

TEST(ArrayStore, IdenticalTreatsNanAsEqual) {
  SymbolTable symbols;
  const VarId a = symbols.declare("A", SymbolKind::kArray, {1});
  ArrayStore s1(symbols), s2(symbols);
  const std::int64_t sub[] = {1};
  s1.set(a, sub, std::nan(""));
  s2.set(a, sub, std::nan(""));
  EXPECT_TRUE(ArrayStore::identical(s1, s2));
}

TEST(Evaluator, WitnessNestWritesDigitEncodedValues) {
  const LoopNest nest = make_rectangular_witness({3, 4});
  Evaluator eval(nest.symbols);
  eval.run(*nest.root);
  const VarId out = nest.symbols.lookup("OUT").value();
  // OUT(i, j) = 10*i + j.
  for (std::int64_t i = 1; i <= 3; ++i) {
    for (std::int64_t j = 1; j <= 4; ++j) {
      const std::int64_t subs[] = {i, j};
      EXPECT_EQ(eval.store().get(out, subs),
                static_cast<double>(10 * i + j));
    }
  }
  EXPECT_EQ(eval.iterations_executed(), 3u + 3u * 4u);
}

TEST(Evaluator, MatmulMatchesHandComputation) {
  const LoopNest nest = make_matmul(2, 2, 3);
  Evaluator eval(nest.symbols);
  const VarId a = nest.symbols.lookup("A").value();
  const VarId b = nest.symbols.lookup("B").value();
  const VarId c = nest.symbols.lookup("C").value();
  // A = [[1,2,3],[4,5,6]], B = [[7,8],[9,10],[11,12]].
  double av = 1.0;
  for (auto& x : eval.store().data(a)) x = av++;
  double bv = 7.0;
  for (auto& x : eval.store().data(b)) x = bv++;
  eval.run(*nest.root);
  const std::int64_t s11[] = {1, 1}, s12[] = {1, 2}, s21[] = {2, 1},
                     s22[] = {2, 2};
  EXPECT_EQ(eval.store().get(c, s11), 58.0);   // 1*7+2*9+3*11
  EXPECT_EQ(eval.store().get(c, s12), 64.0);
  EXPECT_EQ(eval.store().get(c, s21), 139.0);
  EXPECT_EQ(eval.store().get(c, s22), 154.0);
}

TEST(Evaluator, RecurrenceIsSequential) {
  const LoopNest nest = make_recurrence(10);
  Evaluator eval(nest.symbols);
  const VarId a = nest.symbols.lookup("A").value();
  const std::int64_t first[] = {1};
  eval.store().set(a, first, 1.0);  // A(1) seeds... A(0) is A[0]: index 1 here
  // A has shape n+1; A(1) = 2*A(0). Set A(1)=1 then run: A(2)=2, A(3)=4...
  eval.run(*nest.root);
  // After run, A(i+1) = 2^i * A(1)_initial pattern shifted; check growth:
  const std::int64_t s3[] = {3};
  const std::int64_t s4[] = {4};
  EXPECT_EQ(eval.store().get(a, s4), 2.0 * eval.store().get(a, s3));
}

TEST(Evaluator, JacobiInteriorAverages) {
  const LoopNest nest = make_jacobi_step(3);
  Evaluator eval(nest.symbols);
  const VarId a = nest.symbols.lookup("A").value();
  for (auto& x : eval.store().data(a)) x = 4.0;  // uniform field
  eval.run(*nest.root);
  const VarId bb = nest.symbols.lookup("B").value();
  // Interior of a uniform field stays uniform.
  for (std::int64_t i = 2; i <= 4; ++i) {
    for (std::int64_t j = 2; j <= 4; ++j) {
      const std::int64_t subs[] = {i, j};
      EXPECT_EQ(eval.store().get(bb, subs), 4.0);
    }
  }
}

TEST(Evaluator, PiStripsApproximatesPi) {
  const LoopNest nest = make_pi_strips(4, 250);
  Evaluator eval(nest.symbols);
  eval.run(*nest.root);
  const VarId sum = nest.symbols.lookup("SUM").value();
  double pi = 0.0;
  for (double v : eval.store().data(sum)) pi += v;
  EXPECT_NEAR(pi, 3.14159265, 1e-5);
}

TEST(Evaluator, ScalarAssignmentAndUse) {
  NestBuilder b;
  const VarId a = b.array("A", {5});
  const VarId t = b.scalar("t");
  const VarId i = b.begin_loop("i", 1, 5);
  b.assign(t, mul(var_ref(i), int_const(3)));
  b.assign(b.element(a, {i}), var_ref(t));
  b.end_loop();
  const LoopNest nest = b.build();
  Evaluator eval(nest.symbols);
  eval.run(*nest.root);
  const std::int64_t s5[] = {5};
  EXPECT_EQ(eval.store().get(a, s5), 15.0);
}

TEST(Evaluator, ParamBinding) {
  NestBuilder b;
  const VarId n = b.param("n");
  const VarId a = b.array("A", {10});
  const VarId i = b.begin_loop_expr("i", int_const(1), var_ref(n));
  b.assign(b.element(a, {i}), int_const(1));
  b.end_loop();
  const LoopNest nest = b.build();
  Evaluator eval(nest.symbols);
  eval.set_param(n, 6);
  eval.run(*nest.root);
  const std::int64_t s6[] = {6};
  const std::int64_t s7[] = {7};
  EXPECT_EQ(eval.store().get(a, s6), 1.0);
  EXPECT_EQ(eval.store().get(a, s7), 0.0);  // beyond the bound
}

TEST(Evaluator, CustomBuiltin) {
  NestBuilder b;
  const VarId a = b.array("A", {3});
  const VarId i = b.begin_loop("i", 1, 3);
  b.assign(b.element(a, {i}), call("twice", {var_ref(i)}));
  b.end_loop();
  const LoopNest nest = b.build();
  Evaluator eval(nest.symbols);
  eval.register_builtin("twice", [](std::span<const Value> args) -> Value {
    return as_double(args[0]) * 2.0;
  });
  eval.run(*nest.root);
  const std::int64_t s3[] = {3};
  EXPECT_EQ(eval.store().get(a, s3), 6.0);
}

TEST(Evaluator, IntegerOpsStayExact) {
  NestBuilder b;
  const VarId a = b.array("A", {1});
  const VarId i = b.begin_loop("i", 1, 1);
  // mod(cdiv(7, 2), 3) = mod(4, 3) = 1; plus fdiv(-7, 2) = -4 -> 1 + -4 = -3.
  b.assign(b.element(a, {i}),
           add(mod(ceil_div(int_const(7), int_const(2)), int_const(3)),
               floor_div(int_const(-7), int_const(2))));
  b.end_loop();
  const LoopNest nest = b.build();
  Evaluator eval(nest.symbols);
  eval.run(*nest.root);
  const std::int64_t s1[] = {1};
  EXPECT_EQ(eval.store().get(a, s1), -3.0);
}

TEST(Evaluator, MinMaxMixedPromotion) {
  NestBuilder b;
  const VarId a = b.array("A", {2});
  const VarId i = b.begin_loop("i", 1, 2);
  b.assign(b.element(a, {i}),
           max_expr(min_expr(var_ref(i), int_const(5)), int_const(2)));
  b.end_loop();
  const LoopNest nest = b.build();
  Evaluator eval(nest.symbols);
  eval.run(*nest.root);
  const std::int64_t s1[] = {1};
  const std::int64_t s2[] = {2};
  EXPECT_EQ(eval.store().get(a, s1), 2.0);  // max(min(1,5),2) = 2
  EXPECT_EQ(eval.store().get(a, s2), 2.0);  // max(min(2,5),2) = 2
}

TEST(Evaluator, EmptyLoopExecutesNothing) {
  NestBuilder b;
  const VarId a = b.array("A", {3});
  const VarId i = b.begin_loop("i", 5, 4);  // empty range
  b.assign(b.element(a, {i}), int_const(9));
  b.end_loop();
  const LoopNest nest = b.build();
  Evaluator eval(nest.symbols);
  eval.run(*nest.root);
  for (double v : eval.store().data(a)) EXPECT_EQ(v, 0.0);
  EXPECT_EQ(eval.iterations_executed(), 0u);
}

TEST(Evaluator, SteppedLoopVisitsLatticeOnly) {
  NestBuilder b;
  const VarId a = b.array("A", {10});
  const VarId i = b.begin_loop("i", 2, 10, 3);  // 2, 5, 8
  b.assign(b.element(a, {i}), int_const(1));
  b.end_loop();
  const LoopNest nest = b.build();
  Evaluator eval(nest.symbols);
  eval.run(*nest.root);
  double sum = 0.0;
  for (double v : eval.store().data(a)) sum += v;
  EXPECT_EQ(sum, 3.0);
  const std::int64_t s5[] = {5};
  const std::int64_t s6[] = {6};
  EXPECT_EQ(eval.store().get(a, s5), 1.0);
  EXPECT_EQ(eval.store().get(a, s6), 0.0);
}

}  // namespace
}  // namespace coalesce::ir
