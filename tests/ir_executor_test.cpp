// Tests for the parallel IR executor (real threads interpreting transformed
// programs) and the processor-grid allocation math.
#include <gtest/gtest.h>

#include "analysis/doall.hpp"
#include "core/api.hpp"
#include "index/grid.hpp"
#include "ir/builder.hpp"
#include "ir/eval.hpp"
#include "runtime/ir_executor.hpp"
#include "transform/coalesce.hpp"
#include "transform/distribute.hpp"

namespace coalesce::runtime {
namespace {

using ir::LoopNest;
using support::i64;

/// Runs the nest sequentially and in parallel, compares all arrays.
void expect_parallel_matches_sequential(const LoopNest& nest,
                                        ScheduleParams params) {
  ir::Evaluator sequential(nest.symbols);
  sequential.run(*nest.root);

  ThreadPool pool(4);
  ir::ArrayStore parallel_store(nest.symbols);
  const auto stats = execute_parallel(pool, nest, params, parallel_store);
  ASSERT_TRUE(stats.ok()) << stats.error().to_string();
  EXPECT_TRUE(ir::ArrayStore::identical(sequential.store(), parallel_store));
}

TEST(IrExecutor, WitnessNestAllSchedules) {
  const LoopNest nest = ir::make_rectangular_witness({9, 7});
  const auto coalesced = transform::coalesce_nest(nest);
  ASSERT_TRUE(coalesced.ok());
  for (auto kind : {Schedule::kStaticBlock, Schedule::kStaticCyclic,
                    Schedule::kSelf, Schedule::kChunked, Schedule::kGuided,
                    Schedule::kFactoring, Schedule::kTrapezoid}) {
    expect_parallel_matches_sequential(coalesced.value().nest, {kind, 4});
  }
}

TEST(IrExecutor, CoalescedMatmulRunsInParallel) {
  // The coalesced matmul: recovery assigns + inner reduction loop execute
  // in per-worker private environments against the shared store.
  const LoopNest nest = ir::make_matmul(8, 6, 5);
  const auto coalesced = transform::coalesce_nest(nest);
  ASSERT_TRUE(coalesced.ok());

  ir::Evaluator reference(nest.symbols);
  // Seed A and B the same way in both universes.
  auto seed = [](ir::ArrayStore& store, const ir::SymbolTable& symbols) {
    for (const char* name : {"A", "B"}) {
      auto data = store.data(symbols.lookup(name).value());
      for (std::size_t q = 0; q < data.size(); ++q) {
        data[q] = static_cast<double>((q * 13 + 3) % 11) - 5.0;
      }
    }
  };
  seed(reference.store(), nest.symbols);
  reference.run(*nest.root);

  ThreadPool pool(4);
  ir::ArrayStore store(coalesced.value().nest.symbols);
  seed(store, coalesced.value().nest.symbols);
  const auto stats = execute_parallel(pool, coalesced.value().nest,
                                      {Schedule::kGuided, 1}, store);
  ASSERT_TRUE(stats.ok());

  const auto c_ref = reference.store().data(nest.symbols.lookup("C").value());
  const auto c_par =
      store.data(coalesced.value().nest.symbols.lookup("C").value());
  ASSERT_EQ(c_ref.size(), c_par.size());
  for (std::size_t q = 0; q < c_ref.size(); ++q) {
    EXPECT_EQ(c_ref[q], c_par[q]) << q;
  }
}

TEST(IrExecutor, OffsetSteppedRootValuesCorrect) {
  ir::NestBuilder b;
  const auto a = b.array("A", {10});
  const auto i = b.begin_parallel_loop("i", 3, 21, 2);  // 3,5,...,21
  b.assign(b.element_expr(
               a, {ir::add(ir::floor_div(ir::sub(ir::var_ref(i),
                                                 ir::int_const(3)),
                                         ir::int_const(2)),
                           ir::int_const(1))}),
           ir::var_ref(i));
  b.end_loop();
  const LoopNest nest = b.build();
  expect_parallel_matches_sequential(nest, {Schedule::kChunked, 3});
}

TEST(IrExecutor, RejectsSerialRoot) {
  const LoopNest nest = ir::make_recurrence(8);
  ThreadPool pool(2);
  ir::ArrayStore store(nest.symbols);
  const auto stats =
      execute_parallel(pool, nest, {Schedule::kSelf, 1}, store);
  ASSERT_FALSE(stats.ok());
  EXPECT_EQ(stats.error().code, support::ErrorCode::kIllegalTransform);
}

TEST(IrExecutor, ProgramMixesParallelAndSequentialRoots) {
  // make_perfect(matmul) produces two DOALL roots; execute_program runs
  // both in parallel against one store and matches the sequential result.
  const LoopNest nest = ir::make_matmul(6, 5, 4);
  auto program = transform::make_perfect(nest);
  ASSERT_TRUE(program.ok());
  const auto coalesced = transform::coalesce_program(program.value());

  ir::Evaluator reference(nest.symbols);
  reference.run(*nest.root);

  ThreadPool pool(3);
  ir::ArrayStore store(coalesced.program.symbols);
  const auto stats = execute_program(pool, coalesced.program,
                                     {Schedule::kGuided, 1}, store);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats.value().parallel_roots, 2u);
  EXPECT_EQ(stats.value().sequential_roots, 0u);

  const auto c_ref = reference.store().data(nest.symbols.lookup("C").value());
  const auto c_par =
      store.data(coalesced.program.symbols.lookup("C").value());
  for (std::size_t q = 0; q < c_ref.size(); ++q) {
    EXPECT_EQ(c_ref[q], c_par[q]);
  }
}

TEST(IrExecutor, SequentialFallbackForSerialRootsInPrograms) {
  const LoopNest nest = ir::make_recurrence(8);
  ir::Program program{nest.symbols, {nest.root}};
  ThreadPool pool(2);
  ir::ArrayStore store(nest.symbols);
  const auto stats =
      execute_program(pool, program, {Schedule::kSelf, 1}, store);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats.value().sequential_roots, 1u);
  EXPECT_EQ(stats.value().parallel_roots, 0u);
}

// ---- grid allocation -----------------------------------------------------------

TEST(GridAllocation, PerfectFactorizationIsFullyEfficient) {
  const auto grid = index::best_grid({10, 10}, 4);
  EXPECT_EQ(grid.max_load, 25);
  EXPECT_DOUBLE_EQ(grid.efficiency, 1.0);
}

TEST(GridAllocation, PrimePCollapsesToOneDimension) {
  const auto grid = index::best_grid({10, 10}, 7);
  // Only 1x7 and 7x1 exist; both give ceil(10/7)*10 = 20.
  EXPECT_EQ(grid.max_load, 20);
  EXPECT_NEAR(grid.efficiency, 100.0 / (7 * 20), 1e-12);
}

TEST(GridAllocation, CoalescedAlwaysAtLeastAsEfficient) {
  for (const auto& extents :
       {std::vector<i64>{10, 10}, std::vector<i64>{100, 4},
        std::vector<i64>{12, 12, 12}, std::vector<i64>{30, 7}}) {
    for (i64 p : {2, 3, 5, 7, 8, 13, 16, 24, 37, 64}) {
      const auto grid = index::best_grid(extents, p);
      const double coalesced = index::coalesced_efficiency(extents, p);
      EXPECT_GE(coalesced + 1e-12, grid.efficiency)
          << "P=" << p << " shape[0]=" << extents[0];
    }
  }
}

TEST(GridAllocation, GridProductEqualsP) {
  const auto grid = index::best_grid({12, 12, 12}, 24);
  i64 product = 1;
  for (i64 g : grid.grid) product *= g;
  EXPECT_EQ(product, 24);
}

TEST(GridAllocation, CoalescedMaxLoadFormula) {
  EXPECT_EQ(index::coalesced_max_load({10, 10}, 7), 15);  // ceil(100/7)
  EXPECT_EQ(index::coalesced_max_load({10, 10}, 100), 1);
  EXPECT_EQ(index::coalesced_max_load({3, 3}, 2), 5);
}

}  // namespace
}  // namespace coalesce::runtime
