// Tests for IR expressions: construction, structural queries, substitution,
// simplification, and the affine view the dependence analyzer consumes.
#include <gtest/gtest.h>

#include "ir/expr.hpp"
#include "ir/printer.hpp"
#include "ir/symbol.hpp"

namespace coalesce::ir {
namespace {

class ExprTest : public ::testing::Test {
 protected:
  SymbolTable symbols;
  VarId i = symbols.declare("i", SymbolKind::kInduction);
  VarId j = symbols.declare("j", SymbolKind::kInduction);
  VarId a = symbols.declare("A", SymbolKind::kArray, {10});
};

TEST_F(ExprTest, ConstantsAndVars) {
  EXPECT_EQ(int_const(5)->op, ExprOp::kIntConst);
  EXPECT_EQ(int_const(5)->literal, 5);
  EXPECT_EQ(var_ref(i)->var, i);
}

TEST_F(ExprTest, EqualIsStructural) {
  const auto e1 = add(var_ref(i), int_const(1));
  const auto e2 = add(var_ref(i), int_const(1));
  const auto e3 = add(var_ref(j), int_const(1));
  EXPECT_TRUE(equal(e1, e2));
  EXPECT_FALSE(equal(e1, e3));
  EXPECT_FALSE(equal(e1, int_const(1)));
}

TEST_F(ExprTest, ReferencesFindsVarsAndArrays) {
  const auto e = add(array_read(a, {var_ref(i)}), int_const(2));
  EXPECT_TRUE(references(e, i));
  EXPECT_TRUE(references(e, a));
  EXPECT_FALSE(references(e, j));
}

TEST_F(ExprTest, ReferencedVarsDeduplicatesAndSorts) {
  const auto e = add(mul(var_ref(j), var_ref(i)), var_ref(i));
  const auto vars = referenced_vars(e);
  ASSERT_EQ(vars.size(), 2u);
  EXPECT_EQ(vars[0], i);
  EXPECT_EQ(vars[1], j);
}

TEST_F(ExprTest, SubstituteReplacesAllOccurrences) {
  const auto e = add(var_ref(i), mul(var_ref(i), int_const(2)));
  const auto out = substitute(e, i, int_const(3));
  EXPECT_EQ(as_constant(out).value(), 9);
}

TEST_F(ExprTest, SubstituteLeavesUntouchedTreeShared) {
  const auto e = add(var_ref(j), int_const(1));
  const auto out = substitute(e, i, int_const(3));
  EXPECT_EQ(e, out);  // pointer-identical: nothing replaced
}

// ---- simplify ---------------------------------------------------------------

TEST_F(ExprTest, SimplifyFoldsConstants) {
  EXPECT_EQ(as_constant(add(int_const(2), int_const(3))).value(), 5);
  EXPECT_EQ(as_constant(sub(int_const(2), int_const(3))).value(), -1);
  EXPECT_EQ(as_constant(mul(int_const(4), int_const(3))).value(), 12);
  EXPECT_EQ(as_constant(floor_div(int_const(-7), int_const(2))).value(), -4);
  EXPECT_EQ(as_constant(ceil_div(int_const(7), int_const(2))).value(), 4);
  EXPECT_EQ(as_constant(mod(int_const(-7), int_const(3))).value(), 2);
  EXPECT_EQ(as_constant(min_expr(int_const(2), int_const(5))).value(), 2);
  EXPECT_EQ(as_constant(max_expr(int_const(2), int_const(5))).value(), 5);
  EXPECT_EQ(as_constant(neg(int_const(4))).value(), -4);
}

TEST_F(ExprTest, SimplifyIdentities) {
  const auto v = var_ref(i);
  EXPECT_TRUE(equal(simplify(add(v, int_const(0))), v));
  EXPECT_TRUE(equal(simplify(add(int_const(0), v)), v));
  EXPECT_TRUE(equal(simplify(sub(v, int_const(0))), v));
  EXPECT_TRUE(equal(simplify(mul(v, int_const(1))), v));
  EXPECT_TRUE(equal(simplify(mul(int_const(1), v)), v));
  EXPECT_EQ(as_constant(simplify(mul(v, int_const(0)))).value(), 0);
  EXPECT_TRUE(equal(simplify(floor_div(v, int_const(1))), v));
  EXPECT_TRUE(equal(simplify(ceil_div(v, int_const(1))), v));
  EXPECT_EQ(as_constant(simplify(mod(v, int_const(1)))).value(), 0);
  EXPECT_EQ(as_constant(simplify(sub(v, v))).value(), 0);
  EXPECT_TRUE(equal(simplify(neg(neg(v))), v));
  EXPECT_TRUE(equal(simplify(min_expr(v, v)), v));
}

TEST_F(ExprTest, SimplifyDoesNotFoldDivByZero) {
  const auto e = floor_div(int_const(4), int_const(0));
  EXPECT_EQ(simplify(e)->op, ExprOp::kFloorDiv);  // left intact
}

TEST_F(ExprTest, SimplifyRecursesThroughTree) {
  // (i * 1) + (2 * 3) -> i + 6
  const auto e = add(mul(var_ref(i), int_const(1)),
                     mul(int_const(2), int_const(3)));
  const auto out = simplify(e);
  ASSERT_EQ(out->op, ExprOp::kAdd);
  EXPECT_TRUE(equal(out->kids[0], var_ref(i)));
  EXPECT_EQ(out->kids[1]->literal, 6);
}

// ---- counting ---------------------------------------------------------------

TEST_F(ExprTest, TreeSizeAndDivisionCount) {
  const auto e = sub(ceil_div(var_ref(i), int_const(3)),
                     mul(int_const(4), floor_div(sub(var_ref(i), int_const(1)),
                                                 int_const(12))));
  EXPECT_EQ(division_count(e), 2u);
  EXPECT_GT(tree_size(e), 5u);
  EXPECT_EQ(division_count(var_ref(i)), 0u);
  EXPECT_EQ(division_count(mod(var_ref(i), int_const(2))), 1u);
}

// ---- affine view ------------------------------------------------------------

TEST_F(ExprTest, ToAffineLinearCombination) {
  // 3*i - 2*j + 7
  const auto e = add(sub(mul(int_const(3), var_ref(i)),
                         mul(int_const(2), var_ref(j))),
                     int_const(7));
  const auto f = to_affine(e);
  ASSERT_TRUE(f.has_value());
  EXPECT_EQ(f->constant, 7);
  EXPECT_EQ(f->coeff(i), 3);
  EXPECT_EQ(f->coeff(j), -2);
}

TEST_F(ExprTest, ToAffineHandlesNegAndConstMul) {
  const auto e = neg(mul(var_ref(i), int_const(5)));
  const auto f = to_affine(e);
  ASSERT_TRUE(f.has_value());
  EXPECT_EQ(f->coeff(i), -5);
}

TEST_F(ExprTest, ToAffineCancelsTerms) {
  const auto e = sub(var_ref(i), var_ref(i));
  const auto f = to_affine(e);
  ASSERT_TRUE(f.has_value());
  EXPECT_TRUE(f->is_constant());
  EXPECT_EQ(f->constant, 0);
}

TEST_F(ExprTest, ToAffineRejectsNonAffine) {
  EXPECT_FALSE(to_affine(mul(var_ref(i), var_ref(j))).has_value());
  EXPECT_FALSE(to_affine(floor_div(var_ref(i), int_const(2))).has_value());
  EXPECT_FALSE(to_affine(array_read(a, {var_ref(i)})).has_value());
  EXPECT_FALSE(to_affine(call("f", {var_ref(i)})).has_value());
  EXPECT_FALSE(to_affine(mod(var_ref(i), int_const(3))).has_value());
}

TEST_F(ExprTest, FromAffineRoundTrip) {
  AffineForm f;
  f.constant = -4;
  f.coeffs[i] = 2;
  f.coeffs[j] = -1;
  const auto back = to_affine(from_affine(f));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, f);
}

TEST_F(ExprTest, FromAffineConstantOnly) {
  AffineForm f;
  f.constant = 9;
  EXPECT_EQ(as_constant(from_affine(f)).value(), 9);
}

// ---- printer ----------------------------------------------------------------

TEST_F(ExprTest, PrinterRendersInfix) {
  const auto e = add(mul(int_const(3), var_ref(i)), int_const(1));
  EXPECT_EQ(to_string(e, symbols), "3 * i + 1");
}

TEST_F(ExprTest, PrinterParenthesizesPrecedence) {
  const auto e = mul(add(var_ref(i), int_const(1)), int_const(2));
  EXPECT_EQ(to_string(e, symbols), "(i + 1) * 2");
}

TEST_F(ExprTest, PrinterSubtractionAssociativity) {
  const auto e = sub(var_ref(i), sub(var_ref(j), int_const(1)));
  EXPECT_EQ(to_string(e, symbols), "i - (j - 1)");
}

TEST_F(ExprTest, PrinterRendersDivFamilyAsCalls) {
  EXPECT_EQ(to_string(ceil_div(var_ref(i), int_const(3)), symbols),
            "cdiv(i, 3)");
  EXPECT_EQ(to_string(mod(var_ref(i), int_const(3)), symbols), "mod(i, 3)");
}

TEST_F(ExprTest, PrinterRendersArrayAndCall) {
  EXPECT_EQ(to_string(array_read(a, {add(var_ref(i), int_const(1))}), symbols),
            "A[i + 1]");
  EXPECT_EQ(to_string(call("f", {var_ref(i), int_const(2)}), symbols),
            "f(i, 2)");
}

// ---- symbol table -----------------------------------------------------------

TEST(SymbolTable, DeclareAndLookup) {
  SymbolTable t;
  const VarId x = t.declare("x", SymbolKind::kScalar);
  EXPECT_EQ(t.lookup("x").value(), x);
  EXPECT_FALSE(t.lookup("y").has_value());
  EXPECT_EQ(t.name(x), "x");
  EXPECT_EQ(t.kind(x), SymbolKind::kScalar);
}

TEST(SymbolTable, DeclareOrGetMatchesKind) {
  SymbolTable t;
  const VarId x = t.declare("x", SymbolKind::kScalar);
  const auto again = t.declare_or_get("x", SymbolKind::kScalar);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again.value(), x);
  const auto clash = t.declare_or_get("x", SymbolKind::kArray, {3});
  EXPECT_FALSE(clash.ok());
}

TEST(SymbolTable, FreshInductionAvoidsCollisions) {
  SymbolTable t;
  t.declare("i0", SymbolKind::kScalar);
  const VarId v = t.fresh_induction("i");
  EXPECT_EQ(t.name(v), "i1");
}

TEST(SymbolTable, ArrayShapeStored) {
  SymbolTable t;
  const VarId arr = t.declare("M", SymbolKind::kArray, {3, 4});
  EXPECT_EQ(t[arr].shape, (std::vector<std::int64_t>{3, 4}));
}

}  // namespace
}  // namespace coalesce::ir
