// Tests for IR statements, loop structure queries, builders, and cloning.
#include <gtest/gtest.h>

#include "ir/builder.hpp"
#include "ir/printer.hpp"
#include "ir/stmt.hpp"

namespace coalesce::ir {
namespace {

TEST(NestBuilder, BuildsSimpleParallelLoop) {
  NestBuilder b;
  const VarId a = b.array("A", {10});
  const VarId i = b.begin_parallel_loop("i", 1, 10);
  b.assign(b.element(a, {i}), var_ref(i));
  b.end_loop();
  const LoopNest nest = b.build();
  EXPECT_TRUE(nest.root->parallel);
  EXPECT_EQ(constant_trip_count(*nest.root).value(), 10);
  EXPECT_EQ(nest.root->body.size(), 1u);
}

TEST(NestBuilder, ElementAndReadShorthands) {
  NestBuilder b;
  const VarId a = b.array("A", {4, 4});
  const VarId i = b.begin_parallel_loop("i", 1, 4);
  const VarId j = b.begin_parallel_loop("j", 1, 4);
  b.assign(b.element(a, {i, j}), b.read(a, {j, i}));
  b.end_loop();
  b.end_loop();
  const LoopNest nest = b.build();
  const auto assigns = collect_assignments(*nest.root);
  ASSERT_EQ(assigns.size(), 1u);
  const auto& access = std::get<ArrayAccess>(assigns[0].stmt->lhs);
  EXPECT_EQ(access.array, a);
  EXPECT_EQ(access.subscripts.size(), 2u);
}

TEST(PerfectBand, FullyPerfectNest) {
  const LoopNest nest = make_rectangular_witness({3, 4, 5});
  const auto band = perfect_band(*nest.root);
  EXPECT_EQ(band.size(), 3u);
  EXPECT_EQ(perfect_depth(*nest.root), 3u);
  EXPECT_EQ(parallel_band(*nest.root).size(), 3u);
}

TEST(PerfectBand, MatmulBandStopsAtMultiStatementBody) {
  // matmul: i -> j -> {init; k-loop}: perfect band is {i, j}.
  const LoopNest nest = make_matmul(4, 5, 6);
  const auto band = perfect_band(*nest.root);
  EXPECT_EQ(band.size(), 2u);
  EXPECT_EQ(parallel_band(*nest.root).size(), 2u);
}

TEST(PerfectBand, ParallelBandStopsAtSerialLoop) {
  NestBuilder b;
  const VarId a = b.array("A", {4, 4});
  const VarId i = b.begin_parallel_loop("i", 1, 4);
  const VarId j = b.begin_loop("j", 1, 4);  // serial
  b.assign(b.element(a, {i, j}), int_const(0));
  b.end_loop();
  b.end_loop();
  const LoopNest nest = b.build();
  EXPECT_EQ(perfect_band(*nest.root).size(), 2u);
  EXPECT_EQ(parallel_band(*nest.root).size(), 1u);
}

TEST(PerfectBand, NonParallelRootGivesEmptyParallelBand) {
  const LoopNest nest = make_recurrence(8);
  EXPECT_EQ(parallel_band(*nest.root).size(), 0u);
}

TEST(TripCount, ConstantAndStepped) {
  NestBuilder b;
  const VarId a = b.array("A", {30});
  const VarId i = b.begin_loop("i", 3, 21, 3);
  b.assign(b.element(a, {i}), int_const(1));
  b.end_loop();
  const LoopNest nest = b.build();
  EXPECT_EQ(constant_trip_count(*nest.root).value(), 7);  // 3,6,...,21
  EXPECT_FALSE(is_normalized(*nest.root));
}

TEST(TripCount, NormalizedDetection) {
  const LoopNest nest = make_rectangular_witness({5});
  EXPECT_TRUE(is_normalized(*nest.root));
}

TEST(LoopCounts, CountsLoopsAndAssignments) {
  const LoopNest nest = make_matmul(4, 5, 6);
  EXPECT_EQ(loop_count(*nest.root), 3u);       // i, j, k
  EXPECT_EQ(assignment_count(*nest.root), 2u); // init + accumulate
}

TEST(CollectAssignments, ChainsAreOutermostFirst) {
  const LoopNest nest = make_matmul(4, 5, 6);
  const auto assigns = collect_assignments(*nest.root);
  ASSERT_EQ(assigns.size(), 2u);
  // init: inside i, j
  EXPECT_EQ(assigns[0].enclosing.size(), 2u);
  // accumulate: inside i, j, k
  EXPECT_EQ(assigns[1].enclosing.size(), 3u);
  EXPECT_EQ(assigns[1].enclosing[0], nest.root.get());
}

TEST(ScalarsWritten, FindsScalarTargets) {
  NestBuilder b;
  const VarId a = b.array("A", {4});
  const VarId t = b.scalar("t");
  const VarId i = b.begin_parallel_loop("i", 1, 4);
  b.assign(t, b.read(a, {i}));
  b.assign(b.element(a, {i}), var_ref(t));
  b.end_loop();
  const LoopNest nest = b.build();
  const auto written = scalars_written(*nest.root);
  ASSERT_EQ(written.size(), 1u);
  EXPECT_EQ(written[0], t);
}

TEST(ArraysTouched, FindsAllArrays) {
  const LoopNest nest = make_matmul(4, 5, 6);
  const auto arrays = arrays_touched(*nest.root);
  EXPECT_EQ(arrays.size(), 3u);  // A, B, C
}

TEST(Clone, DeepCopiesLoops) {
  const LoopNest nest = make_matmul(4, 5, 6);
  const LoopPtr copy = clone(*nest.root);
  EXPECT_NE(copy.get(), nest.root.get());
  // Same rendering == same structure.
  EXPECT_EQ(to_string(*copy, nest.symbols), to_string(*nest.root, nest.symbols));
  // Mutating the copy must not affect the original.
  copy->parallel = !copy->parallel;
  EXPECT_NE(copy->parallel, nest.root->parallel);
}

TEST(Printer, RendersNestWithDoallMarkers) {
  const LoopNest nest = make_rectangular_witness({2, 3});
  const std::string text = to_string(nest);
  EXPECT_NE(text.find("doall i0 = 1, 2 {"), std::string::npos);
  EXPECT_NE(text.find("doall i1 = 1, 3 {"), std::string::npos);
  EXPECT_NE(text.find("OUT[i0][i1]"), std::string::npos);
}

TEST(Printer, RendersSerialLoopAndStep) {
  NestBuilder b;
  const VarId a = b.array("A", {20});
  const VarId i = b.begin_loop("i", 2, 20, 2);
  b.assign(b.element(a, {i}), int_const(0));
  b.end_loop();
  const LoopNest nest = b.build();
  const std::string text = to_string(nest);
  EXPECT_NE(text.find("do i = 2, 20, 2 {"), std::string::npos);
}

TEST(Workloads, JacobiUsesInteriorBounds) {
  const LoopNest nest = make_jacobi_step(8);
  const auto band = perfect_band(*nest.root);
  ASSERT_EQ(band.size(), 2u);
  EXPECT_EQ(as_constant(band[0]->lower).value(), 2);
  EXPECT_EQ(as_constant(band[0]->upper).value(), 9);
}

TEST(Workloads, GaussJordanBandIsParallel) {
  const LoopNest nest = make_gauss_jordan_backsolve(6, 3);
  EXPECT_EQ(parallel_band(*nest.root).size(), 2u);
}

TEST(Workloads, PiStripsOuterParallelInnerSerial) {
  const LoopNest nest = make_pi_strips(8, 100);
  EXPECT_TRUE(nest.root->parallel);
  // Body: init assignment + serial reduction loop.
  EXPECT_EQ(nest.root->body.size(), 2u);
  EXPECT_EQ(parallel_band(*nest.root).size(), 1u);
}

}  // namespace
}  // namespace coalesce::ir
