// Differential tests for the JIT backend: every nest is executed three
// ways — sequential reference interpreter, parallel interpreter, and the
// native JIT chunk kernel — and all three must agree bit-exactly. Each
// generated nest is additionally screened by the dynamic shadow-conflict
// oracle so the suite never blesses agreement on a racy input.
//
// The sweeps are seeded and replayable: every assertion message carries the
// seed and trial number. When the host has no C compiler the trio still
// runs (the JIT path falls back to the interpreter, which must still be
// bit-exact); the engagement assertions that prove the kernel actually ran
// are gated on codegen::compiler_available().
#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/doall.hpp"
#include "codegen/jit.hpp"
#include "codegen/pipeline.hpp"
#include "frontend/parser.hpp"
#include "ir/builder.hpp"
#include "ir/eval.hpp"
#include "ir/printer.hpp"
#include "ir/verify.hpp"
#include "runtime/ir_executor.hpp"
#include "runtime/launch.hpp"
#include "runtime/race_oracle.hpp"
#include "runtime/thread_pool.hpp"
#include "support/rng.hpp"

namespace coalesce {
namespace {

using ir::ExprRef;
using ir::int_const;
using ir::LoopNest;
using ir::NestBuilder;
using ir::VarId;
using ir::var_ref;
using support::i64;
using support::Rng;

/// Random integer expression over the induction variables — the same
/// distribution as the transform fuzzer, and deliberately inside the JIT
/// type gate (no array reads, no calls, constant nonzero divisors).
ExprRef random_expr(Rng& rng, const std::vector<VarId>& ivs, int depth) {
  if (depth <= 0 || rng.uniform01() < 0.3) {
    if (!ivs.empty() && rng.uniform01() < 0.7) {
      return var_ref(ivs[static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<i64>(ivs.size()) - 1))]);
    }
    return int_const(rng.uniform_int(-9, 9));
  }
  ExprRef a = random_expr(rng, ivs, depth - 1);
  ExprRef b = random_expr(rng, ivs, depth - 1);
  switch (rng.uniform_int(0, 6)) {
    case 0: return ir::add(std::move(a), std::move(b));
    case 1: return ir::sub(std::move(a), std::move(b));
    case 2: return ir::mul(std::move(a), std::move(b));
    case 3: return ir::min_expr(std::move(a), std::move(b));
    case 4: return ir::max_expr(std::move(a), std::move(b));
    case 5:
      return ir::mod(std::move(a), int_const(rng.uniform_int(1, 7)));
    default:
      return ir::floor_div(std::move(a), int_const(rng.uniform_int(1, 5)));
  }
}

/// Rectangular DOALL nest with random lower bounds, steps, and extents;
/// each point writes its own cell of OUT (and sometimes OUT2), so the nest
/// is race-free by construction — a property the shadow oracle re-checks.
LoopNest random_rectangular(Rng& rng) {
  NestBuilder b;
  const std::size_t depth = static_cast<std::size_t>(rng.uniform_int(2, 4));
  std::vector<i64> lowers(depth), steps(depth), extents(depth);
  std::vector<i64> shape;
  for (std::size_t d = 0; d < depth; ++d) {
    lowers[d] = rng.uniform_int(-3, 3);
    steps[d] = rng.uniform_int(1, 3);
    extents[d] = rng.uniform_int(1, 5);
    shape.push_back(extents[d]);
  }
  const VarId out = b.array("OUT", shape);
  const VarId out2 = b.array("OUT2", shape);
  std::vector<VarId> ivs;
  for (std::size_t d = 0; d < depth; ++d) {
    ivs.push_back(b.begin_parallel_loop(
        "v" + std::to_string(d), lowers[d],
        lowers[d] + (extents[d] - 1) * steps[d], steps[d]));
  }
  std::vector<ExprRef> subs;
  for (std::size_t d = 0; d < depth; ++d) {
    subs.push_back(ir::simplify(ir::add(
        ir::floor_div(ir::sub(var_ref(ivs[d]), int_const(lowers[d])),
                      int_const(steps[d])),
        int_const(1))));
  }
  b.assign(b.element_expr(out, subs), random_expr(rng, ivs, 3));
  if (rng.uniform01() < 0.5) {
    b.assign(b.element_expr(out2, subs), random_expr(rng, ivs, 2));
  }
  for (std::size_t d = 0; d < depth; ++d) b.end_loop();
  return b.build();
}

/// 2-deep triangular nest: constant-trip outer level, variable inner bound.
/// The JIT band stops at depth 1, so the inner loop executes inside the
/// emitted kernel body — the other half of the emitter's loop handling.
LoopNest random_triangular(Rng& rng) {
  NestBuilder b;
  const i64 n = rng.uniform_int(2, 7);
  const i64 slope = rng.uniform_int(1, 2);
  const i64 offset = rng.uniform_int(0, 2);
  const i64 max_inner = slope * n + offset;
  const VarId out = b.array("OUT", {n, max_inner});
  const VarId i = b.begin_parallel_loop("i", 1, n);
  const VarId j = b.begin_loop_expr(
      "j", int_const(1),
      ir::add(ir::mul(int_const(slope), var_ref(i)), int_const(offset)), 1,
      /*parallel=*/true);
  b.assign(b.element(out, {i, j}), random_expr(rng, {i, j}, 3));
  b.end_loop();
  b.end_loop();
  return b.build();
}

/// Executes `nest` three ways and asserts bit-exact agreement. When the
/// host has a compiler, additionally asserts the JIT path genuinely engaged
/// (one cache compile-or-hit, no new failure) rather than silently falling
/// back to the interpreter it is being tested against.
void expect_trio_agrees(runtime::ThreadPool& pool, const LoopNest& nest,
                        const std::string& repro) {
  // Sequential reference.
  ir::Evaluator reference(nest.symbols);
  reference.run(*nest.root);

  // Parallel interpreter.
  ir::ArrayStore interpreted(nest.symbols);
  const auto interp_stats = runtime::execute_parallel(
      pool, nest, {runtime::Schedule::kChunked, 4}, interpreted);
  ASSERT_TRUE(interp_stats.ok())
      << interp_stats.error().to_string() << "\n" << repro;
  ASSERT_TRUE(ir::ArrayStore::identical(reference.store(), interpreted))
      << "parallel interpreter diverged from sequential reference\n"
      << repro << "\n" << ir::to_string(nest);

  // Native JIT kernel (or its documented interpreter fallback).
  const auto before = codegen::default_jit_cache().stats();
  ir::ArrayStore jitted(nest.symbols);
  runtime::LaunchOptions opts;
  opts.schedule = {runtime::Schedule::kChunked, 4};
  opts.exec = runtime::ExecMode::kJit;
  const auto jit_stats = runtime::run(pool, nest, jitted, opts);
  ASSERT_TRUE(jit_stats.ok())
      << jit_stats.error().to_string() << "\n" << repro;
  ASSERT_TRUE(jit_stats.value().completed()) << repro;
  ASSERT_TRUE(ir::ArrayStore::identical(reference.store(), jitted))
      << "JIT diverged from sequential reference\n"
      << repro << "\n" << ir::to_string(nest);

  if (codegen::compiler_available()) {
    const auto after = codegen::default_jit_cache().stats();
    EXPECT_EQ(after.failures, before.failures)
        << "JIT compile failed on a compatible nest\n" << repro;
    EXPECT_EQ(after.compiles + after.hits, before.compiles + before.hits + 1)
        << "JIT never engaged; the trio degenerated to interpreter-vs-"
        << "interpreter\n" << repro;
  }
}

/// The shadow-conflict oracle must clear the nest before agreement means
/// anything: three executors agreeing on a racy nest proves nothing.
void expect_oracle_clean(const LoopNest& nest, const std::string& repro) {
  const runtime::ScanResult scan = runtime::shadow_conflict_scan(nest);
  ASSERT_NE(scan.outcome, runtime::ScanOutcome::kConflict)
      << "generated nest is racy; the differential result is void\n"
      << (scan.conflict ? scan.conflict->describe(nest.symbols)
                        : std::string("?"))
      << "\n" << repro << "\n" << ir::to_string(nest);
  EXPECT_NE(scan.outcome, runtime::ScanOutcome::kIneligible) << repro;
}

class JitDifferential : public ::testing::TestWithParam<int> {};

TEST_P(JitDifferential, RectangularNestsAgreeAcrossAllThreeExecutors) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 6700417ull);
  runtime::ThreadPool pool(4);
  for (int trial = 0; trial < 30; ++trial) {
    const LoopNest nest = random_rectangular(rng);
    ASSERT_TRUE(ir::verify_nest(nest).empty()) << ir::to_string(nest);
    const std::string repro = "seed=" + std::to_string(GetParam()) +
                              " trial=" + std::to_string(trial);
    expect_oracle_clean(nest, repro);
    expect_trio_agrees(pool, nest, repro);
  }
}

TEST_P(JitDifferential, TriangularNestsAgreeAcrossAllThreeExecutors) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 2305843009ull);
  runtime::ThreadPool pool(4);
  for (int trial = 0; trial < 30; ++trial) {
    const LoopNest nest = random_triangular(rng);
    ASSERT_TRUE(ir::verify_nest(nest).empty()) << ir::to_string(nest);
    const std::string repro = "seed=" + std::to_string(GetParam()) +
                              " trial=" + std::to_string(trial) +
                              " (triangular)";
    expect_oracle_clean(nest, repro);
    expect_trio_agrees(pool, nest, repro);
  }
}

TEST_P(JitDifferential, EverySchedulePoliciesTheSameKernelIdentically) {
  // One nest, one compiled kernel (cache hits after the first run), every
  // dispatcher family: the chunk contract must make them indistinguishable.
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 179426549ull);
  runtime::ThreadPool pool(4);
  const LoopNest nest = random_rectangular(rng);
  ir::Evaluator reference(nest.symbols);
  reference.run(*nest.root);
  const runtime::ScheduleParams schedules[] = {
      {runtime::Schedule::kSelf, 1},
      {runtime::Schedule::kChunked, 3},
      {runtime::Schedule::kGuided, 1},
      {runtime::Schedule::kFactoring, 1},
      {runtime::Schedule::kStaticBlock, 1},
      {runtime::Schedule::kStaticCyclic, 1},
  };
  for (const auto& params : schedules) {
    ir::ArrayStore jitted(nest.symbols);
    runtime::LaunchOptions opts;
    opts.schedule = params;
    opts.exec = runtime::ExecMode::kJit;
    const auto stats = runtime::run(pool, nest, jitted, opts);
    ASSERT_TRUE(stats.ok()) << stats.error().to_string();
    ASSERT_TRUE(ir::ArrayStore::identical(reference.store(), jitted))
        << "schedule " << to_string(params.kind)
        << " diverged under the JIT\nseed=" << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, JitDifferential,
                         ::testing::Values(1, 2, 3, 4, 5));

// ---- example corpus ---------------------------------------------------------
// The checked-in .loop examples that admit clean parallel execution, pushed
// through the same trio. These are the exact nests the CLI smoke tests run,
// so a divergence here reproduces from the shell.

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) return {};
  std::ostringstream text;
  text << in.rdbuf();
  return text.str();
}

class JitExampleDifferential : public ::testing::TestWithParam<const char*> {};

TEST_P(JitExampleDifferential, ExampleAgreesAcrossAllThreeExecutors) {
  const std::string path =
      std::string(EXAMPLES_LOOPS_DIR) + "/" + GetParam() + ".loop";
  const std::string text = read_file(path);
  ASSERT_FALSE(text.empty()) << "cannot read " << path;
  auto program = frontend::parse_program(text);
  ASSERT_TRUE(program.ok()) << program.error().to_string();

  runtime::ThreadPool pool(4);
  int parallel_roots = 0;
  for (std::size_t r = 0; r < program.value().roots.size(); ++r) {
    LoopNest nest{program.value().symbols, program.value().roots[r]};
    analysis::analyze_and_mark(nest);
    if (!nest.root->parallel) continue;  // sequential roots have no JIT path
    ++parallel_roots;
    const std::string repro =
        std::string(GetParam()) + ".loop root " + std::to_string(r);
    expect_oracle_clean(nest, repro);
    expect_trio_agrees(pool, nest, repro);
  }
  EXPECT_GT(parallel_roots, 0)
      << GetParam() << ".loop has no parallel root; nothing was tested";
}

INSTANTIATE_TEST_SUITE_P(CleanExamples, JitExampleDifferential,
                         ::testing::Values("matmul", "stencil", "triangular"));

}  // namespace
}  // namespace coalesce