// Tests for the JIT compile pass: the prepare() analysis/transform pipeline
// (DOALL/bounds/type gates, band extraction, canonical cache key) and the
// JitCache (hit/miss semantics, alpha-equivalent sharing, LRU eviction,
// negative caching, single-flight concurrent compiles).
//
// Tests that need a real C compiler probe codegen::compiler_available() and
// GTEST_SKIP when the host has none — the same graceful degradation the
// runtime's fallback path implements.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "codegen/c_emitter.hpp"
#include "codegen/jit.hpp"
#include "codegen/pipeline.hpp"
#include "ir/builder.hpp"
#include "ir/eval.hpp"
#include "ir/stmt.hpp"
#include "support/error.hpp"

namespace coalesce::codegen {
namespace {

using ir::int_const;
using ir::LoopNest;
using ir::NestBuilder;
using ir::VarId;
using ir::var_ref;
using support::ErrorCode;
using support::i64;

/// 2-deep DOALL writing a distinct cell per point; names parameterized so
/// alpha-equivalence is testable, the inner extent so key misses are.
LoopNest make_named(const char* array, const char* outer_iv,
                    i64 inner_extent = 5) {
  NestBuilder b;
  const VarId a = b.array(array, {6, inner_extent});
  const VarId i = b.begin_parallel_loop(outer_iv, 1, 6);
  const VarId j = b.begin_parallel_loop("j", 1, inner_extent);
  b.assign(b.element(a, {i, j}),
           ir::add(var_ref(i), ir::mul(var_ref(j), int_const(3))));
  b.end_loop();
  b.end_loop();
  return b.build();
}

// ---- prepare(): analysis + transform ----------------------------------------

TEST(JitPrepare, ExtractsBandExtentsAndArrays) {
  const LoopNest nest = ir::make_rectangular_witness({3, 4, 5});
  const auto prepared = prepare(nest);
  ASSERT_TRUE(prepared.ok()) << prepared.error().to_string();
  EXPECT_EQ(prepared.value().band.size(), 3u);
  ASSERT_EQ(prepared.value().extents.size(), 3u);
  EXPECT_EQ(prepared.value().extents[0], 3);
  EXPECT_EQ(prepared.value().extents[1], 4);
  EXPECT_EQ(prepared.value().extents[2], 5);
  EXPECT_EQ(prepared.value().total, 60);
  EXPECT_FALSE(prepared.value().arrays.empty());
  EXPECT_FALSE(prepared.value().cache_key.empty());
}

TEST(JitPrepare, VariableInnerBoundStopsTheBand) {
  // Triangular: i is the only constant-trip band level; the j loop runs
  // inside the kernel body instead.
  NestBuilder b;
  const VarId out = b.array("OUT", {4, 4});
  const VarId i = b.begin_parallel_loop("i", 1, 4);
  const VarId j = b.begin_loop_expr("j", int_const(1), var_ref(i), 1,
                                    /*parallel=*/true);
  b.assign(b.element(out, {i, j}), ir::add(var_ref(i), var_ref(j)));
  b.end_loop();
  b.end_loop();
  const auto prepared = prepare(b.build());
  ASSERT_TRUE(prepared.ok()) << prepared.error().to_string();
  EXPECT_EQ(prepared.value().band.size(), 1u);
  EXPECT_EQ(prepared.value().total, 4);
}

TEST(JitPrepare, RejectsSequentialRoot) {
  NestBuilder b;
  const VarId a = b.array("A", {4});
  const VarId i = b.begin_loop("i", 1, 4);  // not marked DOALL
  b.assign(b.element(a, {i}), var_ref(i));
  b.end_loop();
  const auto prepared = prepare(b.build());
  ASSERT_FALSE(prepared.ok());
  EXPECT_EQ(prepared.error().code, ErrorCode::kIllegalTransform);
}

TEST(JitPrepare, RejectsNonConstantRootBounds) {
  NestBuilder b;
  const VarId n = b.param("N");
  const VarId a = b.array("A", {16});
  const VarId i = b.begin_loop_expr("i", int_const(1), var_ref(n), 1,
                                    /*parallel=*/true);
  b.assign(b.element(a, {i}), var_ref(i));
  b.end_loop();
  const auto prepared = prepare(b.build());
  ASSERT_FALSE(prepared.ok());
  EXPECT_EQ(prepared.error().code, ErrorCode::kUnsupported);
}

TEST(JitPrepare, RejectsEmptyIterationSpace) {
  NestBuilder b;
  const VarId a = b.array("A", {4});
  const VarId i = b.begin_parallel_loop("i", 1, 0);  // zero trips
  b.assign(b.element(a, {i}), var_ref(i));
  b.end_loop();
  const auto prepared = prepare(b.build());
  ASSERT_FALSE(prepared.ok());
  EXPECT_EQ(prepared.error().code, ErrorCode::kUnsupported);
  EXPECT_NE(prepared.error().message.find("empty"), std::string::npos);
}

// ---- the type gate ----------------------------------------------------------

TEST(JitCompatible, RejectsScalarAssignedFromArrayRead) {
  // The emitter declares assigned scalars as int64_t; an array read is a
  // double, so this nest would silently truncate under the JIT.
  NestBuilder b;
  const VarId a = b.array("A", {4});
  const VarId s = b.scalar("s");
  const VarId i = b.begin_parallel_loop("i", 1, 4);
  b.assign(s, ir::array_read(a, {var_ref(i)}));
  b.assign(b.element(a, {i}), var_ref(s));
  b.end_loop();
  const LoopNest nest = b.build();
  std::string why;
  EXPECT_FALSE(jit_compatible(nest, &why));
  EXPECT_NE(why.find("s"), std::string::npos);
  const auto prepared = prepare(nest);
  ASSERT_FALSE(prepared.ok());
  EXPECT_EQ(prepared.error().code, ErrorCode::kUnsupported);
}

TEST(JitCompatible, RejectsParamReferencesInTheBody) {
  NestBuilder b;
  const VarId n = b.param("N");
  const VarId a = b.array("A", {4});
  const VarId i = b.begin_parallel_loop("i", 1, 4);
  b.assign(b.element(a, {i}), var_ref(n));
  b.end_loop();
  std::string why;
  EXPECT_FALSE(jit_compatible(b.build(), &why));
  EXPECT_NE(why.find("param"), std::string::npos);
}

TEST(JitCompatible, AcceptsIntegerScalarsAndDivMod) {
  NestBuilder b;
  const VarId a = b.array("A", {8});
  const VarId s = b.scalar("s");
  const VarId i = b.begin_parallel_loop("i", 1, 8);
  b.assign(s, ir::mod(ir::mul(var_ref(i), int_const(5)), int_const(3)));
  b.assign(b.element(a, {i}),
           ir::add(var_ref(s), ir::floor_div(var_ref(i), int_const(2))));
  b.end_loop();
  EXPECT_TRUE(jit_compatible(b.build()));
}

// ---- the canonical cache key ------------------------------------------------

TEST(JitKey, AlphaEquivalentNestsShareOneKey) {
  const auto p1 = prepare(make_named("OUT", "i"));
  const auto p2 = prepare(make_named("RESULT", "row"));
  ASSERT_TRUE(p1.ok());
  ASSERT_TRUE(p2.ok());
  EXPECT_EQ(p1.value().cache_key, p2.value().cache_key);
  // Positional binding: both nests bind their (single) array to slot 0.
  EXPECT_EQ(p1.value().arrays.size(), p2.value().arrays.size());
}

TEST(JitKey, ChangedBoundChangesTheKey) {
  const auto p1 = prepare(make_named("OUT", "i", 5));
  const auto p2 = prepare(make_named("OUT", "i", 6));
  ASSERT_TRUE(p1.ok());
  ASSERT_TRUE(p2.ok());
  EXPECT_NE(p1.value().cache_key, p2.value().cache_key);
}

TEST(JitKey, ShapeEntersTheKey) {
  // Same loop structure, same body, different array shape: the kernel
  // casts cg_arrays[0] to double(*)[extent], so the shape must split keys.
  NestBuilder b1;
  {
    const VarId a = b1.array("A", {4, 8});
    const VarId i = b1.begin_parallel_loop("i", 1, 4);
    b1.assign(b1.element(a, {i, i}), var_ref(i));
    b1.end_loop();
  }
  NestBuilder b2;
  {
    const VarId a = b2.array("A", {4, 9});
    const VarId i = b2.begin_parallel_loop("i", 1, 4);
    b2.assign(b2.element(a, {i, i}), var_ref(i));
    b2.end_loop();
  }
  const auto p1 = prepare(b1.build());
  const auto p2 = prepare(b2.build());
  ASSERT_TRUE(p1.ok());
  ASSERT_TRUE(p2.ok());
  EXPECT_NE(p1.value().cache_key, p2.value().cache_key);
}

// ---- compiled execution -----------------------------------------------------

/// Reference interpretation of `nest` + positional array pointers from a
/// JIT-side store, for bit-exact comparison.
void expect_kernel_matches_interpreter(const LoopNest& nest) {
  const auto prepared = prepare(nest);
  ASSERT_TRUE(prepared.ok()) << prepared.error().to_string();
  JitCache cache;
  const auto kernel = cache.get_or_compile(prepared.value());
  ASSERT_TRUE(kernel.ok()) << kernel.error().to_string();

  ir::ArrayStore jit_store(prepared.value().normalized.symbols);
  std::vector<double*> arrays;
  for (const VarId a : prepared.value().arrays) {
    arrays.push_back(jit_store.data(a).data());
  }
  // Split the flat range at an uneven point so the incremental decode of a
  // nontrivial cg_first is exercised, not just the j=1 entry.
  const i64 total = prepared.value().total;
  const i64 split = total / 3 + 1;
  kernel.value()->run_chunk(1, split, arrays.data());
  kernel.value()->run_chunk(split, total + 1, arrays.data());

  ir::Evaluator eval(nest.symbols);
  eval.run(*nest.root);
  for (const VarId a : prepared.value().arrays) {
    const auto expected = eval.store().data(a);
    const auto actual = jit_store.data(a);
    ASSERT_EQ(expected.size(), actual.size());
    for (std::size_t k = 0; k < expected.size(); ++k) {
      ASSERT_EQ(expected[k], actual[k]) << "array cell " << k;
    }
  }
}

TEST(JitExecute, KernelMatchesInterpreterOnWitness) {
  if (!compiler_available()) GTEST_SKIP() << "no C compiler on PATH";
  expect_kernel_matches_interpreter(ir::make_rectangular_witness({3, 4, 5}));
}

TEST(JitExecute, KernelMatchesInterpreterOnMatmul) {
  if (!compiler_available()) GTEST_SKIP() << "no C compiler on PATH";
  expect_kernel_matches_interpreter(ir::make_matmul(5, 6, 4));
}

TEST(JitExecute, KernelSourceIsRetained) {
  if (!compiler_available()) GTEST_SKIP() << "no C compiler on PATH";
  const auto prepared = prepare(make_named("OUT", "i"));
  ASSERT_TRUE(prepared.ok());
  JitCache cache;
  const auto kernel = cache.get_or_compile(prepared.value());
  ASSERT_TRUE(kernel.ok()) << kernel.error().to_string();
  EXPECT_NE(kernel.value()->source().find(kJitKernelSymbol),
            std::string::npos);
}

// ---- cache behavior ---------------------------------------------------------

TEST(JitCacheBehavior, AlphaEquivalentNestsCompileOnce) {
  if (!compiler_available()) GTEST_SKIP() << "no C compiler on PATH";
  JitCache cache;
  const auto p1 = prepare(make_named("OUT", "i"));
  const auto p2 = prepare(make_named("RESULT", "row"));
  ASSERT_TRUE(p1.ok());
  ASSERT_TRUE(p2.ok());
  const auto k1 = cache.get_or_compile(p1.value());
  const auto k2 = cache.get_or_compile(p2.value());
  ASSERT_TRUE(k1.ok());
  ASSERT_TRUE(k2.ok());
  EXPECT_EQ(k1.value().get(), k2.value().get());  // literally one kernel
  const auto stats = cache.stats();
  EXPECT_EQ(stats.compiles, 1u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.entries, 1u);
}

TEST(JitCacheBehavior, ChangedBoundIsAMiss) {
  if (!compiler_available()) GTEST_SKIP() << "no C compiler on PATH";
  JitCache cache;
  const auto p1 = prepare(make_named("OUT", "i", 5));
  const auto p2 = prepare(make_named("OUT", "i", 6));
  ASSERT_TRUE(p1.ok());
  ASSERT_TRUE(p2.ok());
  ASSERT_TRUE(cache.get_or_compile(p1.value()).ok());
  ASSERT_TRUE(cache.get_or_compile(p2.value()).ok());
  const auto stats = cache.stats();
  EXPECT_EQ(stats.compiles, 2u);
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.entries, 2u);
}

TEST(JitCacheBehavior, EvictionRespectsTheCapacity) {
  if (!compiler_available()) GTEST_SKIP() << "no C compiler on PATH";
  JitOptions options;
  options.cache_capacity = 2;
  JitCache cache(options);
  const auto p1 = prepare(make_named("OUT", "i", 4));
  const auto p2 = prepare(make_named("OUT", "i", 5));
  const auto p3 = prepare(make_named("OUT", "i", 6));
  ASSERT_TRUE(p1.ok());
  ASSERT_TRUE(p2.ok());
  ASSERT_TRUE(p3.ok());
  ASSERT_TRUE(cache.get_or_compile(p1.value()).ok());
  ASSERT_TRUE(cache.get_or_compile(p2.value()).ok());
  ASSERT_TRUE(cache.get_or_compile(p3.value()).ok());  // evicts p1 (LRU)
  EXPECT_EQ(cache.stats().entries, 2u);
  // p2 and p3 are resident; p1 must recompile.
  ASSERT_TRUE(cache.get_or_compile(p2.value()).ok());
  EXPECT_EQ(cache.stats().hits, 1u);
  ASSERT_TRUE(cache.get_or_compile(p1.value()).ok());
  EXPECT_EQ(cache.stats().compiles, 4u);
  EXPECT_EQ(cache.stats().entries, 2u);
}

TEST(JitCacheBehavior, MissingCompilerIsUnavailableAndNegativelyCached) {
  JitOptions options;
  options.compiler = "/nonexistent/coalesce-test-cc";
  JitCache cache(options);
  const auto prepared = prepare(make_named("OUT", "i"));
  ASSERT_TRUE(prepared.ok());
  const auto first = cache.get_or_compile(prepared.value());
  ASSERT_FALSE(first.ok());
  EXPECT_EQ(first.error().code, ErrorCode::kUnavailable);
  // The failed entry is cached: no second probe, a hit on the negative.
  const auto second = cache.get_or_compile(prepared.value());
  ASSERT_FALSE(second.ok());
  EXPECT_EQ(second.error().code, ErrorCode::kUnavailable);
  const auto stats = cache.stats();
  EXPECT_EQ(stats.failures, 1u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.compiles, 0u);
}

TEST(JitCacheBehavior, ConcurrentFirstCompileIsSingleFlight) {
  if (!compiler_available()) GTEST_SKIP() << "no C compiler on PATH";
  JitCache cache;
  const auto prepared = prepare(make_named("OUT", "i"));
  ASSERT_TRUE(prepared.ok());
  constexpr int kThreads = 8;
  std::vector<std::shared_ptr<const CompiledKernel>> results(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      const auto kernel = cache.get_or_compile(prepared.value());
      if (kernel.ok()) results[static_cast<std::size_t>(t)] = kernel.value();
    });
  }
  for (std::thread& t : threads) t.join();
  const auto stats = cache.stats();
  EXPECT_EQ(stats.compiles, 1u) << "single flight violated";
  EXPECT_EQ(stats.hits, static_cast<std::uint64_t>(kThreads - 1));
  for (const auto& kernel : results) {
    ASSERT_NE(kernel, nullptr);
    EXPECT_EQ(kernel.get(), results[0].get());
  }
}

TEST(JitCacheBehavior, DefaultCacheIsAProcessSingleton) {
  EXPECT_EQ(&default_jit_cache(), &default_jit_cache());
}

}  // namespace
}  // namespace coalesce::codegen