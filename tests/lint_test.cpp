// Tests for the static-analysis stack this repo calls coalesce-lint:
// the structural IR verifier (ir/verify.hpp), the overflow/legality linter
// (analysis/lint.hpp) with its text/JSON/SARIF renderers, and the post-pass
// verification hooks with the differential shadow-execution oracle
// (transform/postcheck.hpp).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "analysis/lint.hpp"
#include "ir/builder.hpp"
#include "ir/expr.hpp"
#include "ir/verify.hpp"
#include "transform/coalesce.hpp"
#include "transform/postcheck.hpp"

namespace coalesce {
namespace {

using ir::int_const;
using ir::LoopNest;
using ir::NestBuilder;
using ir::VarId;
using ir::var_ref;

bool any_rule(const std::vector<analysis::Diagnostic>& diags,
              const std::string& id) {
  return std::any_of(diags.begin(), diags.end(),
                     [&](const analysis::Diagnostic& d) {
                       return id == d.rule->id;
                     });
}

std::string messages(const std::vector<analysis::Diagnostic>& diags) {
  std::string out;
  for (const auto& d : diags) out += std::string(d.rule->id) + ": " + d.message + "\n";
  return out;
}

/// doall i = 1, n { OUT[i] = i }
LoopNest simple_parallel(std::int64_t n) {
  NestBuilder b;
  const VarId out = b.array("OUT", {n});
  const VarId i = b.begin_parallel_loop("i", 1, n);
  b.assign(b.element(out, {i}), var_ref(i));
  b.end_loop();
  return b.build();
}

// ---- structural verifier --------------------------------------------------

TEST(Verify, AcceptsWellFormedNests) {
  EXPECT_TRUE(ir::verify_nest(ir::make_matmul(4, 5, 3)).empty());
  EXPECT_TRUE(ir::verify_nest(ir::make_triangular_witness(6)).empty());
  EXPECT_TRUE(ir::verify_nest(ir::make_pi_strips(4, 8)).empty());
}

TEST(Verify, AcceptsCoalescedOutput) {
  const LoopNest nest = ir::make_matmul(4, 5, 3);
  const auto result = transform::coalesce_nest(nest);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(ir::verify_nest(result.value().nest).empty());
}

TEST(Verify, FlagsDanglingSymbolReference) {
  LoopNest nest = simple_parallel(4);
  nest.root->upper = var_ref(VarId{9999});
  const auto issues = ir::verify_nest(nest);
  ASSERT_FALSE(issues.empty());
  EXPECT_NE(issues[0].message.find("outside the table"), std::string::npos)
      << issues[0].message;
}

TEST(Verify, FlagsNonPositiveStep) {
  LoopNest nest = simple_parallel(4);
  nest.root->step = 0;
  const auto issues = ir::verify_nest(nest);
  ASSERT_FALSE(issues.empty());
  EXPECT_NE(issues[0].message.find("non-positive step"), std::string::npos);
}

TEST(Verify, FlagsSelfReferencingBound) {
  LoopNest nest = simple_parallel(4);
  nest.root->upper = ir::add(var_ref(nest.root->var), int_const(1));
  const auto issues = ir::verify_nest(nest);
  ASSERT_FALSE(issues.empty());
  EXPECT_NE(issues[0].message.find("loop's own"), std::string::npos);
}

TEST(Verify, FlagsShadowedInductionVariable) {
  LoopNest nest = simple_parallel(4);
  auto inner = std::make_shared<ir::Loop>();
  inner->var = nest.root->var;  // shadows the outer variable
  inner->lower = int_const(1);
  inner->upper = int_const(2);
  inner->body = std::move(nest.root->body);
  nest.root->body.clear();
  nest.root->body.push_back(inner);
  const auto issues = ir::verify_nest(nest);
  ASSERT_FALSE(issues.empty());
  EXPECT_NE(issues[0].message.find("shadows"), std::string::npos);
}

TEST(Verify, FlagsAssignmentToLiveInductionVariable) {
  LoopNest nest = simple_parallel(4);
  nest.root->body.push_back(ir::AssignStmt{nest.root->var, int_const(7)});
  const auto issues = ir::verify_nest(nest);
  ASSERT_FALSE(issues.empty());
  EXPECT_NE(issues[0].message.find("live induction"), std::string::npos);
}

TEST(Verify, FlagsRankMismatch) {
  NestBuilder b;
  const VarId out = b.array("OUT", {4, 4});
  const VarId i = b.begin_parallel_loop("i", 1, 4);
  b.assign(b.element(out, {i}), int_const(0));  // rank 2, one subscript
  b.end_loop();
  const auto issues = ir::verify_nest(b.build());
  ASSERT_FALSE(issues.empty());
  EXPECT_NE(issues[0].message.find("rank"), std::string::npos);
}

TEST(Verify, FlagsConstantZeroDivisor) {
  NestBuilder b;
  const VarId out = b.array("OUT", {4});
  const VarId i = b.begin_parallel_loop("i", 1, 4);
  b.assign(b.element(out, {i}), ir::floor_div(var_ref(i), int_const(0)));
  b.end_loop();
  const auto issues = ir::verify_nest(b.build());
  ASSERT_FALSE(issues.empty());
  EXPECT_NE(issues[0].message.find("zero divisor"), std::string::npos);
}

TEST(Verify, VerifyOkWrapsIssuesAsError) {
  LoopNest nest = simple_parallel(4);
  nest.root->step = -1;
  const auto result = ir::verify_ok(nest, "unit-test");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code, support::ErrorCode::kVerifyFailed);
  EXPECT_NE(result.error().message.find("unit-test"), std::string::npos);
}

// ---- linter rules ---------------------------------------------------------

TEST(Lint, CleanNestHasNoFindings) {
  const auto diags = analysis::lint_nest(ir::make_matmul(4, 5, 3));
  EXPECT_TRUE(diags.empty()) << messages(diags);
  EXPECT_FALSE(analysis::has_errors(diags));
}

TEST(Lint, FlagsUnprivatizedScalar) {
  NestBuilder b;
  const VarId a = b.array("A", {8});
  const VarId s = b.scalar("s");
  const VarId i = b.begin_parallel_loop("i", 1, 8);
  b.assign(s, ir::add(var_ref(s), b.read(a, {i})));
  b.assign(b.element(a, {i}), var_ref(s));
  b.end_loop();
  const auto diags = analysis::lint_nest(b.build());
  EXPECT_TRUE(any_rule(diags, "unprivatized-scalar")) << messages(diags);
  EXPECT_TRUE(analysis::has_errors(diags));
}

TEST(Lint, FlagsUnprovenDoall) {
  NestBuilder b;
  const VarId a = b.array("A", {10});
  const VarId i = b.begin_parallel_loop("i", 2, 9);
  b.assign(b.element(a, {i}),
           ir::array_read(a, {ir::sub(var_ref(i), int_const(1))}));
  b.end_loop();
  const auto diags = analysis::lint_nest(b.build());
  EXPECT_TRUE(any_rule(diags, "doall-unproven")) << messages(diags);
}

TEST(Lint, FlagsMaybeDependenceWithBothEndpoints) {
  // A[i*i] = A[i] + 1 under doall: the non-affine subscript leaves the
  // dependence unproven, so the per-dependence detail rule fires with the
  // direction vector and both references as related locations.
  NestBuilder b;
  const VarId a = b.array("A", {37});
  const VarId i = b.begin_parallel_loop("i", 1, 6);
  b.assign(b.element_expr(a, {ir::mul(var_ref(i), var_ref(i))}),
           ir::add(b.read(a, {i}), int_const(1)));
  b.end_loop();
  const auto diags = analysis::lint_nest(b.build());
  ASSERT_TRUE(any_rule(diags, "maybe-dependence")) << messages(diags);
  const auto it = std::find_if(diags.begin(), diags.end(),
                               [](const analysis::Diagnostic& d) {
                                 return std::string("maybe-dependence") ==
                                        d.rule->id;
                               });
  EXPECT_NE(it->message.find("direction"), std::string::npos) << it->message;
  EXPECT_EQ(it->related.size(), 2u);
  // The related locations survive every renderer.
  EXPECT_NE(analysis::render_text(diags, "x.loop").find("related:"),
            std::string::npos);
  EXPECT_NE(analysis::render_sarif(diags, "x.loop").find("relatedLocations"),
            std::string::npos);
}

TEST(Lint, ProvenDependencesDoNotTriggerMaybeRule) {
  // The recurrence's dependence is *proven*, so the unproven-dependence
  // rule stays quiet (the race pass owns the definite diagnosis).
  NestBuilder b;
  const VarId a = b.array("A", {10});
  const VarId i = b.begin_parallel_loop("i", 2, 9);
  b.assign(b.element(a, {i}),
           ir::array_read(a, {ir::sub(var_ref(i), int_const(1))}));
  b.end_loop();
  const auto diags = analysis::lint_nest(b.build());
  EXPECT_TRUE(any_rule(diags, "doall-unproven")) << messages(diags);
  EXPECT_FALSE(any_rule(diags, "maybe-dependence")) << messages(diags);
}

TEST(Lint, NotesMissedParallelism) {
  NestBuilder b;
  const VarId out = b.array("OUT", {6});
  const VarId i = b.begin_loop("i", 1, 6);  // sequential, but provably DOALL
  b.assign(b.element(out, {i}), var_ref(i));
  b.end_loop();
  const LoopNest nest = b.build();

  const auto diags = analysis::lint_nest(nest);
  EXPECT_TRUE(any_rule(diags, "missed-parallelism")) << messages(diags);
  EXPECT_FALSE(analysis::has_errors(diags));

  analysis::LintOptions quiet;
  quiet.include_notes = false;
  EXPECT_FALSE(any_rule(analysis::lint_nest(nest, quiet),
                        "missed-parallelism"));
}

TEST(Lint, FlagsNonrectangularBand) {
  const auto diags = analysis::lint_nest(ir::make_triangular_witness(6));
  EXPECT_TRUE(any_rule(diags, "nonrectangular-band")) << messages(diags);
  EXPECT_FALSE(analysis::has_errors(diags));
}

TEST(Lint, FlagsNonperfectBand) {
  NestBuilder b;
  const VarId row = b.array("ROW", {4});
  const VarId a = b.array("A", {4, 5});
  const VarId i = b.begin_parallel_loop("i", 1, 4);
  b.assign(b.element(row, {i}), var_ref(i));
  const VarId j = b.begin_parallel_loop("j", 1, 5);
  b.assign(b.element(a, {i, j}), var_ref(j));
  b.end_loop();
  b.end_loop();
  const auto diags = analysis::lint_nest(b.build());
  EXPECT_TRUE(any_rule(diags, "nonperfect-band")) << messages(diags);
}

TEST(Lint, FlagsProductOverflow) {
  NestBuilder b;
  const VarId out = b.array("OUT", {1});
  const VarId i = b.begin_parallel_loop("i", 1, INT64_C(4000000000));
  const VarId j = b.begin_parallel_loop("j", 1, INT64_C(4000000000));
  b.assign(b.element_expr(out, {int_const(1)}),
           ir::add(var_ref(i), var_ref(j)));
  b.end_loop();
  b.end_loop();
  const auto diags = analysis::lint_nest(b.build());
  EXPECT_TRUE(any_rule(diags, "product-overflow")) << messages(diags);
  EXPECT_TRUE(analysis::has_errors(diags));
}

TEST(Lint, FlagsZeroTripBand) {
  NestBuilder b;
  const VarId out = b.array("OUT", {4, 4});
  const VarId i = b.begin_parallel_loop("i", 1, 4);
  const VarId j = b.begin_parallel_loop("j", 5, 2);  // empty range
  b.assign(b.element(out, {i, j}), int_const(0));
  b.end_loop();
  b.end_loop();
  const auto diags = analysis::lint_nest(b.build());
  EXPECT_TRUE(any_rule(diags, "zero-trip-band")) << messages(diags);
}

TEST(Lint, MapsZeroDivisorToDivByZero) {
  NestBuilder b;
  const VarId out = b.array("OUT", {4});
  const VarId i = b.begin_parallel_loop("i", 1, 4);
  b.assign(b.element(out, {i}), ir::mod(var_ref(i), int_const(0)));
  b.end_loop();
  const auto diags = analysis::lint_nest(b.build());
  EXPECT_TRUE(any_rule(diags, "div-by-zero")) << messages(diags);
  EXPECT_TRUE(analysis::has_errors(diags));
}

TEST(Lint, BrokenIrShortCircuitsToIrInvalid) {
  LoopNest nest = simple_parallel(4);
  nest.root->step = 0;
  const auto diags = analysis::lint_nest(nest);
  EXPECT_TRUE(any_rule(diags, "ir-invalid")) << messages(diags);
  EXPECT_TRUE(analysis::has_errors(diags));
}

// ---- renderers ------------------------------------------------------------

TEST(LintRender, TextIncludesRuleIdAndFixit) {
  const auto diags = analysis::lint_nest(ir::make_triangular_witness(6));
  const std::string text = analysis::render_text(diags, "tri.loop");
  EXPECT_NE(text.find("tri.loop"), std::string::npos);
  EXPECT_NE(text.find("[nonrectangular-band]"), std::string::npos);
  EXPECT_NE(text.find("fix-it:"), std::string::npos);
  EXPECT_EQ(analysis::render_text({}, "x"), "no findings\n");
}

TEST(LintRender, JsonListsFindings) {
  const auto diags = analysis::lint_nest(ir::make_triangular_witness(6));
  const std::string json = analysis::render_json(diags);
  EXPECT_EQ(json.front(), '[');
  EXPECT_NE(json.find("\"rule\": \"nonrectangular-band\""), std::string::npos)
      << json;
  EXPECT_EQ(analysis::render_json({}), "[]\n");
}

TEST(LintRender, SarifCarriesRuleCatalogAndResults) {
  const auto diags = analysis::lint_nest(ir::make_triangular_witness(6));
  const std::string sarif = analysis::render_sarif(diags, "tri.loop");
  EXPECT_NE(sarif.find("\"version\": \"2.1.0\""), std::string::npos);
  // Every catalog rule appears in tool.driver.rules.
  for (const auto& rule : analysis::lint_rules()) {
    EXPECT_NE(sarif.find(rule.id), std::string::npos) << rule.id;
  }
  EXPECT_NE(sarif.find("\"results\""), std::string::npos);
}

// ---- post-pass hooks and the differential oracle --------------------------

class Postcheck : public ::testing::Test {
 protected:
  void SetUp() override {
    verify_was_ = transform::post_verify_enabled();
    oracle_was_ = transform::differential_oracle_enabled();
    transform::set_post_verify(true);
    transform::set_differential_oracle(true);
  }
  void TearDown() override {
    transform::set_post_verify(verify_was_);
    transform::set_differential_oracle(oracle_was_);
  }

 private:
  bool verify_was_ = true;
  bool oracle_was_ = false;
};

TEST_F(Postcheck, PassesEquivalentNests) {
  const LoopNest before = simple_parallel(8);
  const LoopNest after{before.symbols, ir::clone(*before.root)};
  EXPECT_TRUE(transform::postcheck("unit", before, after).ok());
}

TEST_F(Postcheck, OracleCatchesWrongArrayContents) {
  const LoopNest before = simple_parallel(8);
  LoopNest after{before.symbols, ir::clone(*before.root)};
  auto* assign = std::get_if<ir::AssignStmt>(&after.root->body[0]);
  ASSERT_NE(assign, nullptr);
  assign->rhs = ir::add(var_ref(after.root->var), int_const(1));
  const auto result = transform::postcheck("unit", before, after);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code, support::ErrorCode::kVerifyFailed);
  EXPECT_NE(result.error().message.find("differential oracle"),
            std::string::npos)
      << result.error().message;
}

TEST_F(Postcheck, VerifierCatchesStructuralCorruption) {
  const LoopNest before = simple_parallel(8);
  LoopNest after{before.symbols, ir::clone(*before.root)};
  after.root->step = 0;
  const auto result = transform::postcheck("unit", before, after);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code, support::ErrorCode::kVerifyFailed);
}

TEST_F(Postcheck, NoVerifyEscapeHatchDisablesBothChecks) {
  transform::set_post_verify(false);
  transform::set_differential_oracle(false);
  const LoopNest before = simple_parallel(8);
  LoopNest after{before.symbols, ir::clone(*before.root)};
  after.root->step = 0;  // structurally broken AND semantically different
  EXPECT_TRUE(transform::postcheck("unit", before, after).ok());
}

TEST_F(Postcheck, ScalarDivergenceRespectsCompareScalarsOption) {
  NestBuilder b1;
  const VarId out1 = b1.array("OUT", {4});
  const VarId s1 = b1.scalar("s");
  const VarId i1 = b1.begin_parallel_loop("i", 1, 4);
  b1.assign(s1, var_ref(i1));
  b1.assign(b1.element(out1, {i1}), var_ref(i1));
  b1.end_loop();
  const LoopNest before = b1.build();

  NestBuilder b2;
  const VarId out2 = b2.array("OUT", {4});
  const VarId s2 = b2.scalar("s");
  const VarId i2 = b2.begin_parallel_loop("i", 1, 4);
  b2.assign(s2, int_const(0));  // arrays agree, final scalar differs
  b2.assign(b2.element(out2, {i2}), var_ref(i2));
  b2.end_loop();
  const LoopNest after = b2.build();

  EXPECT_FALSE(transform::postcheck("unit", before, after).ok());
  transform::PostcheckOptions tolerant;
  tolerant.compare_scalars = false;
  EXPECT_TRUE(transform::postcheck("unit", before, after, tolerant).ok());
}

TEST_F(Postcheck, OracleSkipsParamBoundNests) {
  NestBuilder b;
  const VarId out = b.array("OUT", {4});
  const VarId n = b.param("N");
  const VarId i = b.begin_loop_expr("i", int_const(1), var_ref(n));
  b.assign(b.element(out, {i}), var_ref(i));
  b.end_loop();
  const LoopNest before = b.build();
  // The evaluator cannot run an unbound param, so the oracle must skip —
  // postcheck still succeeds via the structural verifier alone.
  const LoopNest after{before.symbols, ir::clone(*before.root)};
  EXPECT_TRUE(transform::postcheck("unit", before, after).ok());
}

TEST_F(Postcheck, OracleSkipsOverBudgetNests) {
  const LoopNest before = simple_parallel(4);
  NestBuilder b;
  const VarId out = b.array("OUT", {4});
  const VarId i = b.begin_parallel_loop("i", 1, INT64_C(1000000000));
  b.assign(b.element_expr(out, {ir::min_expr(var_ref(i), int_const(4))}),
           var_ref(i));
  b.end_loop();
  const LoopNest after = b.build();
  // A billion iterations is far over kOracleIterationCap: the oracle skips
  // rather than hanging, and the (structurally valid) nest passes.
  EXPECT_TRUE(transform::postcheck("unit", before, after).ok());
}

TEST_F(Postcheck, TransformPassSurfacesOracleFailureAsError) {
  // End to end through a real pass: coalesce_nest on a valid nest succeeds
  // and its result re-verifies under the enabled oracle.
  const LoopNest nest = ir::make_gauss_jordan_backsolve(5, 5);
  const auto result = transform::coalesce_nest(nest);
  ASSERT_TRUE(result.ok()) << result.error().to_string();
}

}  // namespace
}  // namespace coalesce
