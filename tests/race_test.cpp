// Tests for the race-detection subsystem: the data-dependence graph
// (analysis/ddg.hpp), the static race detector (analysis/race.hpp), the
// ordered analysis pipeline (analysis/pipeline.hpp), the dynamic
// shadow-conflict oracle (runtime/race_oracle.hpp), the postcheck race
// gate (transform/postcheck.hpp), and the exact weak-zero / weak-crossing
// SIV tests validated against brute-force pair enumeration.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <optional>
#include <string>
#include <vector>

#include "analysis/ddg.hpp"
#include "analysis/dependence.hpp"
#include "analysis/lint.hpp"
#include "analysis/pipeline.hpp"
#include "analysis/race.hpp"
#include "analysis/subscript.hpp"
#include "ir/builder.hpp"
#include "ir/expr.hpp"
#include "runtime/race_oracle.hpp"
#include "transform/postcheck.hpp"

namespace coalesce {
namespace {

using analysis::DepAnswer;
using analysis::Dependence;
using analysis::RaceVerdict;
using ir::int_const;
using ir::LoopNest;
using ir::NestBuilder;
using ir::VarId;
using ir::var_ref;

bool any_rule(const std::vector<analysis::Diagnostic>& diags,
              const std::string& id) {
  return std::any_of(diags.begin(), diags.end(),
                     [&](const analysis::Diagnostic& d) {
                       return id == d.rule->id;
                     });
}

std::string messages(const std::vector<analysis::Diagnostic>& diags) {
  std::string out;
  for (const auto& d : diags) out += std::string(d.rule->id) + ": " + d.message + "\n";
  return out;
}

/// doall i = 2, n { A[i] = A[i-1] + 1 } — a proven carried dependence on a
/// loop planned parallel: the canonical definite race.
LoopNest racy_recurrence(std::int64_t n) {
  NestBuilder b;
  const VarId a = b.array("A", {n + 1});
  const VarId i = b.begin_parallel_loop("i", 2, n);
  b.assign(b.element(a, {i}),
           ir::add(ir::array_read(a, {ir::sub(var_ref(i), int_const(1))}),
                   int_const(1)));
  b.end_loop();
  return b.build();
}

/// doall i = 1, n { A[i*i] = A[i] + 1 } — a non-affine subscript the tests
/// cannot decide: an unproven (kMaybe) dependence on a parallel loop.
LoopNest maybe_racy(std::int64_t n) {
  NestBuilder b;
  const VarId a = b.array("A", {n * n + 1});
  const VarId i = b.begin_parallel_loop("i", 1, n);
  b.assign(b.element_expr(a, {ir::mul(var_ref(i), var_ref(i))}),
           ir::add(b.read(a, {i}), int_const(1)));
  b.end_loop();
  return b.build();
}

/// doall i = 1, n { OUT[i] = i } — provably race-free.
LoopNest clean_parallel(std::int64_t n) {
  NestBuilder b;
  const VarId out = b.array("OUT", {n});
  const VarId i = b.begin_parallel_loop("i", 1, n);
  b.assign(b.element(out, {i}), var_ref(i));
  b.end_loop();
  return b.build();
}

ir::Program as_program(const LoopNest& nest) {
  ir::Program program;
  program.symbols = nest.symbols;
  program.roots.push_back(nest.root);
  return program;
}

// ---- data-dependence graph ------------------------------------------------

TEST(Ddg, RecurrenceBuildsCarriedSelfEdge) {
  const LoopNest nest = racy_recurrence(16);
  const analysis::Ddg ddg = analysis::build_ddg(*nest.root);
  ASSERT_EQ(ddg.refs.size(), 2u);  // write A[i], read A[i-1]
  EXPECT_EQ(ddg.statements, 1u);
  ASSERT_FALSE(ddg.edges.empty());
  // The flow dependence is carried by the (only) loop: level 0.
  const bool carried_at_root = std::any_of(
      ddg.edges.begin(), ddg.edges.end(), [](const analysis::DdgEdge& e) {
        return e.carried_level.has_value() && *e.carried_level == 0;
      });
  EXPECT_TRUE(carried_at_root);
}

TEST(Ddg, RecurrenceStatementsFindTheCycle) {
  const LoopNest nest = racy_recurrence(16);
  const analysis::Ddg ddg = analysis::build_ddg(*nest.root);
  const auto stmts = ddg.recurrence_statements(0);
  ASSERT_EQ(stmts.size(), 1u);
  EXPECT_EQ(stmts[0], 0u);
}

TEST(Ddg, MatmulRecurrenceSitsAtTheSequentialLevel) {
  const LoopNest nest = ir::make_matmul(4, 5, 3);
  const analysis::Ddg ddg = analysis::build_ddg(*nest.root);
  ASSERT_FALSE(ddg.edges.empty());
  // C(i,j) += A(i,k)*B(k,j): the C->C dependences of the update statement
  // have distance (0, 0, *) — carried by the sequential k loop only. The
  // init/update statement pairs are loop-independent (no carried level).
  bool carried_at_k = false;
  for (const analysis::DdgEdge& e : ddg.edges) {
    if (!e.carried_level.has_value()) continue;
    EXPECT_EQ(*e.carried_level, 2u);
    EXPECT_EQ(analysis::outermost_carried_level(ddg.deps[e.dep]),
              std::optional<std::size_t>(2));
    carried_at_k = true;
  }
  EXPECT_TRUE(carried_at_k);
  EXPECT_FALSE(ddg.recurrence_statements(2).empty());
}

TEST(Ddg, IndependentNestHasNoEdges) {
  const LoopNest nest = ir::make_rectangular_witness({4, 4});
  const analysis::Ddg ddg = analysis::build_ddg(*nest.root);
  EXPECT_TRUE(ddg.edges.empty());
  EXPECT_TRUE(ddg.recurrence_statements(0).empty());
}

TEST(Ddg, ToDotRendersNodesAndEdgeLabels) {
  const LoopNest nest = racy_recurrence(8);
  const analysis::Ddg ddg = analysis::build_ddg(*nest.root);
  const std::string dot = ddg.to_dot(nest.symbols);
  EXPECT_NE(dot.find("digraph"), std::string::npos) << dot;
  EXPECT_NE(dot.find("A"), std::string::npos) << dot;
  EXPECT_NE(dot.find("flow"), std::string::npos) << dot;
}

// ---- static race detector -------------------------------------------------

TEST(Race, RecurrenceUnderDoallIsDefinite) {
  const LoopNest nest = racy_recurrence(16);
  const analysis::RaceReport report = analysis::check_races(nest);
  EXPECT_EQ(report.verdict(), RaceVerdict::kRacy);
  EXPECT_GE(report.definite_count(), 1u);
  ASSERT_FALSE(report.findings.empty());
  const analysis::RaceFinding& f = report.findings[0];
  EXPECT_TRUE(f.definite);
  EXPECT_FALSE(f.is_scalar());
  EXPECT_EQ(f.loop, nest.root.get());
  EXPECT_NE(f.message.find("is carried"), std::string::npos) << f.message;
}

TEST(Race, SequentialRecurrenceIsRaceFree) {
  // The same dependence, but the plan keeps the loop sequential: no race.
  const LoopNest nest = ir::make_recurrence(16);
  const analysis::RaceReport report = analysis::check_races(nest);
  EXPECT_EQ(report.verdict(), RaceVerdict::kRaceFree);
  EXPECT_TRUE(report.findings.empty());
}

TEST(Race, MatmulPlanIsRaceFree) {
  const analysis::RaceReport report =
      analysis::check_races(ir::make_matmul(4, 5, 3));
  EXPECT_EQ(report.verdict(), RaceVerdict::kRaceFree);
}

TEST(Race, NonAffineSubscriptStaysMaybe) {
  const analysis::RaceReport report = analysis::check_races(maybe_racy(6));
  EXPECT_EQ(report.verdict(), RaceVerdict::kMaybeRacy);
  EXPECT_EQ(report.definite_count(), 0u);
  ASSERT_FALSE(report.findings.empty());
  EXPECT_FALSE(report.findings[0].definite);
  EXPECT_NE(report.findings[0].message.find("may be carried"),
            std::string::npos);
}

TEST(Race, UnprivatizedScalarIsAFinding) {
  NestBuilder b;
  const VarId a = b.array("A", {8});
  const VarId s = b.scalar("s");
  const VarId i = b.begin_parallel_loop("i", 1, 8);
  b.assign(s, ir::add(var_ref(s), b.read(a, {i})));  // read before write
  b.end_loop();
  const analysis::RaceReport report = analysis::check_races(b.build());
  ASSERT_FALSE(report.findings.empty());
  EXPECT_TRUE(report.findings[0].is_scalar());
  EXPECT_FALSE(report.findings[0].definite);
  EXPECT_EQ(report.verdict(), RaceVerdict::kMaybeRacy);
}

TEST(Race, DiagnosticsMapDefiniteRaceToErrorRule) {
  const auto diags = analysis::race_diagnostics(as_program(racy_recurrence(16)));
  EXPECT_TRUE(any_rule(diags, "race-carried-dependence")) << messages(diags);
  EXPECT_TRUE(analysis::has_errors(diags));
  ASSERT_FALSE(diags.empty());
  // Both dependence endpoints ride along as related locations.
  ASSERT_EQ(diags[0].related.size(), 2u);
  const std::string sarif = analysis::render_sarif(diags, "racy.loop");
  EXPECT_NE(sarif.find("relatedLocations"), std::string::npos);
}

TEST(Race, DiagnosticsMapMaybeToWarningRule) {
  const auto diags = analysis::race_diagnostics(as_program(maybe_racy(6)));
  EXPECT_TRUE(any_rule(diags, "maybe-dependence")) << messages(diags);
  EXPECT_FALSE(analysis::has_errors(diags));
}

TEST(Race, CleanProgramHasNoDiagnostics) {
  const auto diags = analysis::race_diagnostics(as_program(clean_parallel(8)));
  EXPECT_TRUE(diags.empty()) << messages(diags);
}

// ---- analysis pipeline ----------------------------------------------------

TEST(Pipeline, CleanProgramPassesAllPasses) {
  const auto result =
      analysis::run_analysis_pipeline(as_program(ir::make_matmul(4, 5, 3)));
  EXPECT_TRUE(result.ok);
  EXPECT_TRUE(result.failed_pass.empty());
}

TEST(Pipeline, BrokenIrStopsAtVerify) {
  LoopNest nest = clean_parallel(4);
  nest.root->step = 0;
  const auto result = analysis::run_analysis_pipeline(as_program(nest));
  EXPECT_FALSE(result.ok);
  EXPECT_EQ(result.failed_pass, "verify");
  EXPECT_TRUE(any_rule(result.diagnostics, "ir-invalid"));
}

TEST(Pipeline, DefiniteRaceStopsAtRace) {
  // The recurrence passes verify, draws only warnings from lint
  // (doall-unproven), and errors out at the race pass.
  const auto result =
      analysis::run_analysis_pipeline(as_program(racy_recurrence(16)));
  EXPECT_FALSE(result.ok);
  EXPECT_EQ(result.failed_pass, "race");
  EXPECT_TRUE(any_rule(result.diagnostics, "doall-unproven"))
      << messages(result.diagnostics);
  EXPECT_TRUE(any_rule(result.diagnostics, "race-carried-dependence"))
      << messages(result.diagnostics);
}

TEST(Pipeline, SharedMaybeDependenceFindingIsDeduplicated) {
  // Both lint and race diagnose every unproven dependence with identical
  // wording; the pipeline must report each one exactly once.
  const auto result =
      analysis::run_analysis_pipeline(as_program(maybe_racy(6)));
  EXPECT_TRUE(result.ok);  // warnings only
  EXPECT_TRUE(any_rule(result.diagnostics, "maybe-dependence"))
      << messages(result.diagnostics);
  for (std::size_t i = 0; i < result.diagnostics.size(); ++i) {
    for (std::size_t j = 0; j < i; ++j) {
      const auto& a = result.diagnostics[i];
      const auto& b = result.diagnostics[j];
      EXPECT_FALSE(a.rule == b.rule && a.message == b.message)
          << "duplicate finding survived: " << a.message;
    }
  }
}

TEST(Pipeline, PassListNamesComeInOrder) {
  const auto passes = analysis::default_analysis_passes();
  ASSERT_EQ(passes.size(), 3u);
  EXPECT_EQ(passes[0].name, "verify");
  EXPECT_EQ(passes[1].name, "lint");
  EXPECT_EQ(passes[2].name, "race");
}

// ---- dynamic shadow-conflict oracle ---------------------------------------

TEST(RaceOracle, DoallRecurrenceConflicts) {
  const LoopNest nest = racy_recurrence(16);
  const auto result = runtime::shadow_conflict_scan(nest);
  ASSERT_EQ(result.outcome, runtime::ScanOutcome::kConflict);
  ASSERT_TRUE(result.conflict.has_value());
  EXPECT_FALSE(result.conflict->scalar);
  EXPECT_EQ(result.conflict->loop, nest.root.get());
  EXPECT_FALSE(result.conflict->describe(nest.symbols).empty());
}

TEST(RaceOracle, SequentialRecurrenceIsOrdered) {
  // Divergence at a sequential loop means the accesses are ordered by
  // program semantics no matter the schedule: not a conflict.
  const auto result = runtime::shadow_conflict_scan(ir::make_recurrence(16));
  EXPECT_EQ(result.outcome, runtime::ScanOutcome::kNoConflict);
  EXPECT_GT(result.iterations, 0u);
}

TEST(RaceOracle, SharedCellUnderDoallConflicts) {
  NestBuilder b;
  const VarId h = b.array("H", {4});
  const VarId x = b.array("X", {64});
  const VarId i = b.begin_parallel_loop("i", 1, 64);
  b.assign(b.element_expr(h, {int_const(1)}),
           ir::add(ir::array_read(h, {int_const(1)}), b.read(x, {i})));
  b.end_loop();
  const LoopNest nest = b.build();
  const auto result = runtime::shadow_conflict_scan(nest);
  ASSERT_EQ(result.outcome, runtime::ScanOutcome::kConflict);
  EXPECT_FALSE(result.conflict->scalar);
}

TEST(RaceOracle, CleanNestsScanClean) {
  EXPECT_EQ(runtime::shadow_conflict_scan(clean_parallel(16)).outcome,
            runtime::ScanOutcome::kNoConflict);
  EXPECT_EQ(runtime::shadow_conflict_scan(ir::make_matmul(4, 5, 3)).outcome,
            runtime::ScanOutcome::kNoConflict);
}

TEST(RaceOracle, PrivatizedScalarIsNotAConflict) {
  NestBuilder b;
  const VarId out = b.array("OUT", {8});
  const VarId s = b.scalar("s");
  const VarId i = b.begin_parallel_loop("i", 1, 8);
  b.assign(s, var_ref(i));  // assigned before read in every iteration
  b.assign(b.element(out, {i}), var_ref(s));
  b.end_loop();
  EXPECT_EQ(runtime::shadow_conflict_scan(b.build()).outcome,
            runtime::ScanOutcome::kNoConflict);
}

TEST(RaceOracle, ExposedScalarReadConflicts) {
  NestBuilder b;
  const VarId out = b.array("OUT", {8});
  const VarId s = b.scalar("s");
  const VarId i = b.begin_parallel_loop("i", 1, 8);
  b.assign(b.element(out, {i}), var_ref(s));  // read before any write
  b.assign(s, var_ref(i));
  b.end_loop();
  const LoopNest nest = b.build();
  const auto result = runtime::shadow_conflict_scan(nest);
  ASSERT_EQ(result.outcome, runtime::ScanOutcome::kConflict);
  EXPECT_TRUE(result.conflict->scalar);
  EXPECT_FALSE(result.conflict->describe(nest.symbols).empty());
}

TEST(RaceOracle, UnboundParamIsIneligible) {
  NestBuilder b;
  const VarId out = b.array("OUT", {4});
  const VarId n = b.param("N");
  const VarId i = b.begin_loop_expr("i", int_const(1), var_ref(n));
  b.assign(b.element(out, {i}), var_ref(i));
  b.end_loop();
  EXPECT_EQ(runtime::shadow_conflict_scan(b.build()).outcome,
            runtime::ScanOutcome::kIneligible);
}

TEST(RaceOracle, OverBudgetNestIsIneligible) {
  NestBuilder b;
  const VarId out = b.array("OUT", {4});
  const VarId i = b.begin_parallel_loop("i", 1, INT64_C(1000000000));
  b.assign(b.element_expr(out, {ir::min_expr(var_ref(i), int_const(4))}),
           var_ref(i));
  b.end_loop();
  EXPECT_EQ(runtime::shadow_conflict_scan(b.build()).outcome,
            runtime::ScanOutcome::kIneligible);
}

TEST(RaceOracle, SoundnessSpotCheck) {
  // The contract the fuzz suite enforces at scale, in miniature: a nest the
  // static half declares race-free must scan clean.
  for (const LoopNest& nest :
       {clean_parallel(8), ir::make_matmul(3, 4, 2), ir::make_recurrence(12),
        ir::make_rectangular_witness({3, 3, 3})}) {
    const analysis::RaceReport report = analysis::check_races(nest);
    if (report.verdict() != RaceVerdict::kRaceFree) continue;
    const auto scan = runtime::shadow_conflict_scan(nest);
    if (scan.outcome == runtime::ScanOutcome::kIneligible) continue;
    EXPECT_NE(scan.outcome, runtime::ScanOutcome::kConflict);
  }
}

// ---- postcheck race gate --------------------------------------------------

class RaceGate : public ::testing::Test {
 protected:
  void SetUp() override {
    verify_was_ = transform::post_verify_enabled();
    oracle_was_ = transform::differential_oracle_enabled();
    race_was_ = transform::race_check_enabled();
    transform::set_post_verify(true);
    // The gate's job is visible only with the differential oracle quiet
    // (the racy "after" nests below are also semantically different).
    transform::set_differential_oracle(false);
    transform::set_race_check(true);
  }
  void TearDown() override {
    transform::set_post_verify(verify_was_);
    transform::set_differential_oracle(oracle_was_);
    transform::set_race_check(race_was_);
  }

 private:
  bool verify_was_ = true;
  bool oracle_was_ = false;
  bool race_was_ = true;
};

TEST_F(RaceGate, RejectsARewriteThatIntroducesADefiniteRace) {
  const LoopNest before = clean_parallel(8);
  const LoopNest after = racy_recurrence(8);
  const auto result = transform::postcheck("unit", before, after);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code, support::ErrorCode::kVerifyFailed);
  EXPECT_NE(result.error().message.find("race regression"), std::string::npos)
      << result.error().message;
}

TEST_F(RaceGate, PassesWhenTheRaceWasAlreadyThere) {
  // Gating is differential: a pass that merely preserves an existing race
  // is not the culprit.
  const LoopNest before = racy_recurrence(8);
  const LoopNest after{before.symbols, ir::clone(*before.root)};
  EXPECT_TRUE(transform::postcheck("unit", before, after).ok());
}

TEST_F(RaceGate, ToggleDisablesTheGate) {
  transform::set_race_check(false);
  EXPECT_FALSE(transform::race_check_enabled());
  const LoopNest before = clean_parallel(8);
  const LoopNest after = racy_recurrence(8);
  EXPECT_TRUE(transform::postcheck("unit", before, after).ok());
}

// ---- exact SIV tests vs. brute force --------------------------------------

/// do i = lo, hi { A[a*i + c1] = A[b*i + c2] + 1 }
LoopNest siv_nest(std::int64_t a, std::int64_t c1, std::int64_t b,
                  std::int64_t c2, std::int64_t lo, std::int64_t hi) {
  NestBuilder nb;
  const VarId arr = nb.array("A", {64});
  const VarId i = nb.begin_loop("i", lo, hi);
  nb.assign(nb.element_expr(
                arr, {ir::add(ir::mul(int_const(a), var_ref(i)), int_const(c1))}),
            ir::add(ir::array_read(arr, {ir::add(ir::mul(int_const(b), var_ref(i)),
                                                 int_const(c2))}),
                    int_const(1)));
  nb.end_loop();
  return nb.build();
}

TEST(SivExact, MatchesBruteForcePairEnumeration) {
  const std::int64_t lo = 0, hi = 6;
  const std::int64_t coeffs[] = {-2, -1, 0, 1, 2};
  const std::int64_t consts[] = {-3, 0, 2, 5};
  for (std::int64_t a : coeffs) {
    for (std::int64_t b : coeffs) {
      for (std::int64_t c1 : consts) {
        for (std::int64_t c2 : consts) {
          const LoopNest nest = siv_nest(a, c1, b, c2, lo, hi);
          const auto refs = analysis::collect_array_refs(*nest.root);
          ASSERT_EQ(refs.size(), 2u);
          const auto& write =
              refs[0].kind == analysis::RefKind::kWrite ? refs[0] : refs[1];
          const auto& read =
              refs[0].kind == analysis::RefKind::kWrite ? refs[1] : refs[0];
          const analysis::PairTest pt = analysis::test_pair(write, read, 1);

          // Ground truth: does any (i, i') pair touch one cell?
          bool any_pair = false;
          bool pair_at_distance = !pt.distance.empty() &&
                                  !pt.distance[0].has_value();
          for (std::int64_t i = lo; i <= hi; ++i) {
            for (std::int64_t i2 = lo; i2 <= hi; ++i2) {
              if (a * i + c1 != b * i2 + c2) continue;
              any_pair = true;
              if (!pt.distance.empty() && pt.distance[0].has_value() &&
                  std::llabs(i2 - i) ==
                      std::llabs(*pt.distance[0])) {
                pair_at_distance = true;
              }
            }
          }
          const std::string label =
              "A[" + std::to_string(a) + "*i+" + std::to_string(c1) +
              "] = A[" + std::to_string(b) + "*i+" + std::to_string(c2) + "]";
          if (pt.answer == DepAnswer::kIndependent) {
            EXPECT_FALSE(any_pair) << "unsound independence for " << label;
          } else if (pt.answer == DepAnswer::kDependent) {
            EXPECT_TRUE(any_pair) << "phantom dependence for " << label;
            EXPECT_TRUE(pair_at_distance)
                << "wrong exact distance for " << label;
          }
        }
      }
    }
  }
}

TEST(SivExact, WeakZeroDetectsBoundaryHit) {
  // A[5] = A[i]: the only conflicting iteration is i == 5.
  {
    const LoopNest nest = siv_nest(0, 5, 1, 0, 1, 8);
    const auto refs = analysis::collect_array_refs(*nest.root);
    ASSERT_EQ(refs.size(), 2u);
    EXPECT_NE(analysis::test_pair(refs[0], refs[1], 1).answer,
              DepAnswer::kIndependent);
  }
  {
    // Same subscripts, but i ranges 6..8: the hit is outside the space.
    const LoopNest nest = siv_nest(0, 5, 1, 0, 6, 8);
    const auto refs = analysis::collect_array_refs(*nest.root);
    EXPECT_EQ(analysis::test_pair(refs[0], refs[1], 1).answer,
              DepAnswer::kIndependent);
  }
}

TEST(SivExact, WeakCrossingBoundaryIsLoopIndependent) {
  // A[i] = A[10 - i], i in 1..5: i + i' = 10 has exactly one solution in
  // range, i == i' == 5 — a loop-independent dependence, distance 0.
  const LoopNest nest = siv_nest(1, 0, -1, 10, 1, 5);
  const auto refs = analysis::collect_array_refs(*nest.root);
  const analysis::PairTest pt = analysis::test_pair(refs[0], refs[1], 1);
  EXPECT_EQ(pt.answer, DepAnswer::kDependent);
  ASSERT_EQ(pt.distance.size(), 1u);
  ASSERT_TRUE(pt.distance[0].has_value());
  EXPECT_EQ(*pt.distance[0], 0);
}

TEST(SivExact, WeakCrossingInteriorIsCarried) {
  // A[i] = A[10 - i], i in 1..9: pairs like (1,9) cross iterations; the
  // distance is not a single value, so it stays unknown — but dependent.
  const LoopNest nest = siv_nest(1, 0, -1, 10, 1, 9);
  const auto refs = analysis::collect_array_refs(*nest.root);
  const analysis::PairTest pt = analysis::test_pair(refs[0], refs[1], 1);
  EXPECT_EQ(pt.answer, DepAnswer::kDependent);
  ASSERT_EQ(pt.distance.size(), 1u);
  EXPECT_FALSE(pt.distance[0].has_value());
}

// ---- direction vectors ----------------------------------------------------

TEST(Direction, RendersEverySymbol) {
  Dependence dep{};
  dep.distance = {std::optional<std::int64_t>{1}, std::optional<std::int64_t>{0},
                  std::optional<std::int64_t>{-2}, std::nullopt};
  EXPECT_EQ(dep.direction_string(), "(<, =, >, *)");
  EXPECT_FALSE(dep.is_loop_independent());
}

TEST(Direction, EmptyVectorIsLoopIndependent) {
  Dependence dep{};
  EXPECT_EQ(dep.direction_string(), "()");
  EXPECT_TRUE(dep.is_loop_independent());
}

TEST(Direction, AllUnknownMayBeCarriedAnywhere) {
  Dependence dep{};
  dep.distance = {std::nullopt, std::nullopt};
  EXPECT_EQ(dep.direction_string(), "(*, *)");
  EXPECT_TRUE(dep.may_be_carried_at(0));
  EXPECT_TRUE(dep.may_be_carried_at(1));
  EXPECT_FALSE(dep.is_loop_independent());
}

TEST(Direction, KnownZeroOuterCannotCarry) {
  Dependence dep{};
  dep.distance = {std::optional<std::int64_t>{0}, std::nullopt};
  EXPECT_FALSE(dep.may_be_carried_at(0));
  EXPECT_TRUE(dep.may_be_carried_at(1));
}

TEST(Direction, NonzeroOuterBlocksInnerLevels) {
  Dependence dep{};
  dep.distance = {std::optional<std::int64_t>{2}, std::optional<std::int64_t>{0}};
  EXPECT_TRUE(dep.may_be_carried_at(0));
  EXPECT_FALSE(dep.may_be_carried_at(1));
}

}  // namespace
}  // namespace coalesce
