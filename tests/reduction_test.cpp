// Tests for reduction recognition (analysis) and parallel reductions
// (runtime).
#include <gtest/gtest.h>

#include <cmath>

#include "analysis/reduction.hpp"
#include "ir/builder.hpp"
#include "runtime/launch.hpp"

namespace coalesce {
namespace {

using analysis::ReductionReport;
using ir::int_const;
using ir::LoopNest;
using ir::NestBuilder;
using ir::VarId;
using ir::var_ref;
using support::i64;

const analysis::ReductionVerdict& verdict_for(const ReductionReport& report,
                                              const LoopNest& nest,
                                              const char* name) {
  const VarId v = nest.symbols.lookup(name).value();
  for (const auto& rv : report.loops) {
    if (rv.loop->var == v) return rv;
  }
  ADD_FAILURE() << "no verdict for " << name;
  static analysis::ReductionVerdict dummy;
  return dummy;
}

// ---- recognition ---------------------------------------------------------------

TEST(ReductionRecognition, MatmulAccumulationFoundAndFoldableAtK) {
  const LoopNest nest = ir::make_matmul(4, 4, 4);
  const auto reductions = analysis::find_reductions(*nest.root);
  ASSERT_EQ(reductions.size(), 1u);
  EXPECT_EQ(reductions[0].op, ir::ExprOp::kAdd);
  // C(i,j) is invariant in k only.
  ASSERT_EQ(reductions[0].foldable_levels.size(), 1u);
  EXPECT_EQ(nest.symbols.name(reductions[0].foldable_levels[0]->var), "k");
}

TEST(ReductionRecognition, PiStripsAccumulationFoldableAtR) {
  const LoopNest nest = ir::make_pi_strips(4, 8);
  const auto reductions = analysis::find_reductions(*nest.root);
  ASSERT_EQ(reductions.size(), 1u);
  ASSERT_EQ(reductions[0].foldable_levels.size(), 1u);
  EXPECT_EQ(nest.symbols.name(reductions[0].foldable_levels[0]->var), "r");
}

TEST(ReductionRecognition, RecurrenceIsNotAReduction) {
  // A(i) = 2 * A(i-1): the rhs reads a DIFFERENT element.
  const LoopNest nest = ir::make_recurrence(8);
  EXPECT_TRUE(analysis::find_reductions(*nest.root).empty());
}

TEST(ReductionRecognition, ScalarSumProductMinMax) {
  NestBuilder b;
  const VarId a = b.array("A", {8});
  const VarId sum = b.scalar("sum");
  const VarId prod = b.scalar("prod");
  const VarId lo = b.scalar("lo");
  const VarId hi = b.scalar("hi");
  const VarId i = b.begin_loop("i", 1, 8);
  b.assign(sum, ir::add(var_ref(sum), b.read(a, {i})));
  b.assign(prod, ir::mul(b.read(a, {i}), var_ref(prod)));  // commuted
  b.assign(lo, ir::min_expr(var_ref(lo), b.read(a, {i})));
  b.assign(hi, ir::max_expr(var_ref(hi), b.read(a, {i})));
  b.end_loop();
  const LoopNest nest = b.build();

  const auto reductions = analysis::find_reductions(*nest.root);
  ASSERT_EQ(reductions.size(), 4u);
  EXPECT_EQ(reductions[0].op, ir::ExprOp::kAdd);
  EXPECT_EQ(reductions[1].op, ir::ExprOp::kMul);
  EXPECT_EQ(reductions[2].op, ir::ExprOp::kMin);
  EXPECT_EQ(reductions[3].op, ir::ExprOp::kMax);
}

TEST(ReductionRecognition, FreeOperandMustNotTouchTarget) {
  // sum = sum + (sum * 0 + 1): the "free" operand references sum: rejected.
  NestBuilder b;
  const VarId sum = b.scalar("sum");
  const VarId i = b.begin_loop("i", 1, 4);
  b.assign(sum, ir::add(var_ref(sum),
                        ir::add(ir::mul(var_ref(sum), int_const(0)),
                                int_const(1))));
  b.end_loop();
  (void)i;
  const LoopNest nest = b.build();
  EXPECT_TRUE(analysis::find_reductions(*nest.root).empty());
}

TEST(ReductionRecognition, SubtractionIsNotRecognized) {
  // sum = sum - A(i): not associative-commutative in this form.
  NestBuilder b;
  const VarId a = b.array("A", {4});
  const VarId sum = b.scalar("sum");
  const VarId i = b.begin_loop("i", 1, 4);
  b.assign(sum, ir::sub(var_ref(sum), b.read(a, {i})));
  b.end_loop();
  const LoopNest nest = b.build();
  EXPECT_TRUE(analysis::find_reductions(*nest.root).empty());
}

// ---- verdict upgrades ------------------------------------------------------------

TEST(ReductionVerdicts, MatmulKBecomesReductionParallel) {
  const LoopNest nest = ir::make_matmul(4, 4, 4);
  const auto report = analysis::analyze_with_reductions(nest);
  const auto& i = verdict_for(report, nest, "i");
  const auto& k = verdict_for(report, nest, "k");
  EXPECT_TRUE(i.doall);
  EXPECT_FALSE(k.doall);
  EXPECT_TRUE(k.reduction_parallelizable);
  ASSERT_EQ(k.reductions.size(), 1u);
  EXPECT_EQ(k.reductions[0]->op, ir::ExprOp::kAdd);
}

TEST(ReductionVerdicts, PiStripsInnerLoopUpgraded) {
  const LoopNest nest = ir::make_pi_strips(4, 8);
  const auto report = analysis::analyze_with_reductions(nest);
  EXPECT_TRUE(verdict_for(report, nest, "t").doall);
  const auto& r = verdict_for(report, nest, "r");
  EXPECT_FALSE(r.doall);
  EXPECT_TRUE(r.reduction_parallelizable);
}

TEST(ReductionVerdicts, RecurrenceStaysSequential) {
  const LoopNest nest = ir::make_recurrence(8);
  const auto report = analysis::analyze_with_reductions(nest);
  const auto& i = report.loops.front();
  EXPECT_FALSE(i.doall);
  EXPECT_FALSE(i.reduction_parallelizable);
}

TEST(ReductionVerdicts, MixedBlockerIsNotWaived) {
  // Loop carries BOTH a reduction on S and a genuine recurrence on A:
  // must not be upgraded.
  NestBuilder b;
  const VarId a = b.array("A", {10});
  const VarId s = b.array("S", {1});
  const VarId i = b.begin_loop("i", 2, 9);
  b.assign(b.element_expr(s, {int_const(1)}),
           ir::add(ir::array_read(s, {int_const(1)}), b.read(a, {i})));
  b.assign(b.element(a, {i}),
           ir::mul(int_const(2),
                   ir::array_read(a, {ir::sub(var_ref(i), int_const(1))})));
  b.end_loop();
  const LoopNest nest = b.build();
  const auto report = analysis::analyze_with_reductions(nest);
  EXPECT_FALSE(report.loops.front().reduction_parallelizable);
}

TEST(ReductionVerdicts, ArrayAccumulatorInvariantSubscripts) {
  // HIST(5) += A(i): array-element accumulator with constant subscript.
  NestBuilder b;
  const VarId a = b.array("A", {16});
  const VarId hist = b.array("HIST", {8});
  const VarId i = b.begin_parallel_loop("i", 1, 16);
  b.assign(b.element_expr(hist, {int_const(5)}),
           ir::add(ir::array_read(hist, {int_const(5)}), b.read(a, {i})));
  b.end_loop();
  const LoopNest nest = b.build();
  const auto report = analysis::analyze_with_reductions(nest);
  const auto& i_verdict = report.loops.front();
  EXPECT_FALSE(i_verdict.doall);
  EXPECT_TRUE(i_verdict.reduction_parallelizable);
}

// ---- runtime reductions -------------------------------------------------------------

TEST(ParallelReduce, SumOfFirstNIntegers) {
  runtime::ThreadPool pool(4);
  for (auto kind : {runtime::Schedule::kStaticBlock, runtime::Schedule::kSelf,
                    runtime::Schedule::kChunked, runtime::Schedule::kGuided}) {
    const auto result =
        runtime::run_sum(pool, 1000, [](i64 j) { return static_cast<double>(j); },
                         {.schedule = {kind, 16}});
    EXPECT_DOUBLE_EQ(result.value, 500500.0) << runtime::to_string(kind);
  }
}

TEST(ParallelReduce, ProductViaCustomCombine) {
  runtime::ThreadPool pool(4);
  const auto result = runtime::run_reduce(
      pool, 10, 1.0, [](i64 j) { return static_cast<double>(j); },
      [](double a, double v) { return a * v; },
      {.schedule = {runtime::Schedule::kStaticBlock, 1}});
  EXPECT_DOUBLE_EQ(result.value, 3628800.0);  // 10!
}

TEST(ParallelReduce, MaxReduction) {
  runtime::ThreadPool pool(3);
  const auto result = runtime::run_reduce(
      pool, 257, -std::numeric_limits<double>::infinity(),
      [](i64 j) { return static_cast<double>((j * 37) % 101); },
      [](double a, double v) { return std::max(a, v); },
      {.schedule = {runtime::Schedule::kGuided, 1}});
  EXPECT_DOUBLE_EQ(result.value, 100.0);
}

TEST(ParallelReduce, CollapsedSpaceSum) {
  runtime::ThreadPool pool(4);
  const auto space =
      index::CoalescedSpace::create(std::vector<i64>{12, 9}).value();
  const auto result = runtime::run_sum(
      pool, space,
      [](std::span<const i64> ij) {
        return static_cast<double>(ij[0] * ij[1]);
      },
      {.schedule = {runtime::Schedule::kChunked, 8}});
  // sum(i) * sum(j) = 78 * 45.
  EXPECT_DOUBLE_EQ(result.value, 78.0 * 45.0);
}

TEST(ParallelReduce, StaticBlockIsBitwiseReproducible) {
  runtime::ThreadPool pool(4);
  auto once = [&] {
    return runtime::run_sum(pool, 4096,
                            [](i64 j) { return 1.0 / static_cast<double>(j); },
                            {.schedule = {runtime::Schedule::kStaticBlock, 1}})
        .value;
  };
  const double first = once();
  for (int trial = 0; trial < 5; ++trial) EXPECT_EQ(once(), first);
}

TEST(ParallelReduce, MatmulViaReductionPerCell) {
  // The "recognized reduction" executed: for each (i,j), reduce over k.
  runtime::ThreadPool pool(2);
  const i64 n = 6;
  std::vector<double> a(n * n), bmat(n * n);
  for (i64 q = 0; q < n * n; ++q) {
    a[static_cast<std::size_t>(q)] = static_cast<double>(q % 7);
    bmat[static_cast<std::size_t>(q)] = static_cast<double>((q * 3) % 5);
  }
  const auto space =
      index::CoalescedSpace::create(std::vector<i64>{n, n}).value();
  std::vector<double> c(n * n, 0.0);
  runtime::run(
      pool, space,
      [&](std::span<const i64> ij) {
        double acc = 0.0;
        for (i64 k = 0; k < n; ++k) {
          acc += a[static_cast<std::size_t>((ij[0] - 1) * n + k)] *
                 bmat[static_cast<std::size_t>(k * n + (ij[1] - 1))];
        }
        c[static_cast<std::size_t>((ij[0] - 1) * n + (ij[1] - 1))] = acc;
      },
      {.schedule = {runtime::Schedule::kGuided}});
  // Spot check one cell against a direct computation.
  double expect = 0.0;
  for (i64 k = 0; k < n; ++k) {
    expect += a[static_cast<std::size_t>(2 * n + k)] *
              bmat[static_cast<std::size_t>(k * n + 4)];
  }
  EXPECT_DOUBLE_EQ(c[static_cast<std::size_t>(2 * n + 4)], expect);
}

}  // namespace
}  // namespace coalesce
