// Robustness and failure-path tests: invariant aborts (death tests), error
// propagation through Expected, concurrency stress on the pool and
// dispatchers, and miscellaneous edge cases not covered by the per-module
// suites.
#include <gtest/gtest.h>

#include <atomic>

#include "core/coalesce.hpp"

namespace coalesce {
namespace {

using support::i64;

// ---- invariant aborts (release-mode asserts) -----------------------------------

using RobustnessDeathTest = ::testing::Test;

TEST(RobustnessDeathTest, FloorDivByZeroAborts) {
  EXPECT_DEATH((void)support::floor_div(4, 0), "invariant violated");
}

TEST(RobustnessDeathTest, ExpectedValueWithoutValueAborts) {
  support::Expected<int> e = support::make_error(
      support::ErrorCode::kInvalidArgument, "nope");
  EXPECT_DEATH((void)e.value(), "Expected accessed without a value");
}

TEST(RobustnessDeathTest, ArrayStoreOutOfBoundsAborts) {
  ir::SymbolTable symbols;
  const ir::VarId a = symbols.declare("A", ir::SymbolKind::kArray, {3});
  ir::ArrayStore store(symbols);
  const std::int64_t bad[] = {4};
  EXPECT_DEATH((void)store.get(a, bad), "out of bounds");
  const std::int64_t zero[] = {0};
  EXPECT_DEATH((void)store.get(a, zero), "out of bounds");
}

TEST(RobustnessDeathTest, DecodeOutOfRangeAborts) {
  const auto space =
      index::CoalescedSpace::create(std::vector<i64>{3, 3}).value();
  std::vector<i64> out(2);
  EXPECT_DEATH(space.decode_paper(0, out), "out of range");
  EXPECT_DEATH(space.decode_paper(10, out), "out of range");
}

TEST(RobustnessDeathTest, EvaluatorUnboundVariableAborts) {
  ir::SymbolTable symbols;
  const ir::VarId x = symbols.declare("x", ir::SymbolKind::kScalar);
  ir::Evaluator eval(symbols);
  EXPECT_DEATH((void)eval.eval(ir::var_ref(x)), "unbound");
}

TEST(RobustnessDeathTest, BuilderMisuseAborts) {
  ir::NestBuilder b;
  EXPECT_DEATH(b.end_loop(), "end_loop");
}

// ---- Expected / Error plumbing -----------------------------------------------

TEST(ExpectedType, ValueAndErrorPaths) {
  support::Expected<int> ok = 42;
  EXPECT_TRUE(ok.ok());
  EXPECT_TRUE(static_cast<bool>(ok));
  EXPECT_EQ(ok.value(), 42);
  EXPECT_EQ(ok.value_or(7), 42);

  support::Expected<int> bad =
      support::make_error(support::ErrorCode::kOverflow, "too big");
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.value_or(7), 7);
  EXPECT_EQ(bad.error().code, support::ErrorCode::kOverflow);
  EXPECT_EQ(bad.error().to_string(), "overflow: too big");
}

TEST(ExpectedType, ErrorCodeNames) {
  EXPECT_STREQ(support::to_string(support::ErrorCode::kInvalidArgument),
               "invalid_argument");
  EXPECT_STREQ(support::to_string(support::ErrorCode::kIllegalTransform),
               "illegal_transform");
  EXPECT_STREQ(support::to_string(support::ErrorCode::kUnsupported),
               "unsupported");
  EXPECT_STREQ(support::to_string(support::ErrorCode::kNotFound),
               "not_found");
}

// ---- concurrency stress ----------------------------------------------------------

TEST(Stress, DispatcherUnderContention) {
  // Many rounds of a small space with all workers hammering the counter:
  // every index claimed exactly once, every round.
  runtime::ThreadPool pool(4);
  for (int round = 0; round < 50; ++round) {
    runtime::FetchAddDispatcher dispatcher(200, 3);
    std::vector<std::atomic<int>> hits(200);
    pool.run_region([&](std::size_t) {
      while (true) {
        const index::Chunk chunk = dispatcher.next();
        if (chunk.empty()) break;
        for (i64 j = chunk.first; j < chunk.last; ++j) {
          hits[static_cast<std::size_t>(j - 1)].fetch_add(1);
        }
      }
    });
    for (auto& h : hits) ASSERT_EQ(h.load(), 1) << "round " << round;
  }
}

TEST(Stress, PolicyDispatcherUnderContention) {
  runtime::ThreadPool pool(4);
  for (int round = 0; round < 30; ++round) {
    runtime::PolicyDispatcher dispatcher(
        500, std::make_unique<index::GuidedPolicy>(4));
    std::atomic<i64> covered{0};
    pool.run_region([&](std::size_t) {
      while (true) {
        const index::Chunk chunk = dispatcher.next();
        if (chunk.empty()) break;
        covered.fetch_add(chunk.size());
      }
    });
    ASSERT_EQ(covered.load(), 500);
  }
}

TEST(Stress, ManySmallRegions) {
  runtime::ThreadPool pool(4);
  std::atomic<int> total{0};
  for (int round = 0; round < 500; ++round) {
    pool.run_region([&](std::size_t) { total.fetch_add(1); });
  }
  EXPECT_EQ(total.load(), 2000);
}

TEST(Stress, ParallelReduceRepeatability) {
  // Integer-valued doubles: every schedule must give the exact sum even
  // though iteration-to-worker assignment varies.
  runtime::ThreadPool pool(4);
  for (int round = 0; round < 20; ++round) {
    const auto result = runtime::run_sum(
        pool, 10000, [](i64 j) { return static_cast<double>(j % 97); },
        {.schedule = {runtime::Schedule::kGuided, 1}});
    double expect = 0;
    for (i64 j = 1; j <= 10000; ++j) expect += static_cast<double>(j % 97);
    ASSERT_EQ(result.value, expect);
  }
}

// ---- miscellaneous edge cases ---------------------------------------------------

TEST(EdgeCases, SingleIterationEverything) {
  // 1x1 nest: coalesce, tile, distribute, execute — all degenerate sizes.
  const ir::LoopNest nest = ir::make_rectangular_witness({1, 1});
  const auto coalesced = transform::coalesce_nest(nest);
  ASSERT_TRUE(coalesced.ok());
  EXPECT_EQ(coalesced.value().space.total(), 1);
  EXPECT_TRUE(core::equivalent_by_execution(nest, coalesced.value().nest));

  const auto tiled = transform::tile_and_coalesce(nest, 5, 5);
  ASSERT_TRUE(tiled.ok());
  EXPECT_TRUE(core::equivalent_by_execution(nest, tiled.value().nest));
}

TEST(EdgeCases, DeepNarrowNest) {
  // 6-deep nest of extent 2: 64 iterations through 6 recovery levels.
  const ir::LoopNest nest =
      ir::make_rectangular_witness({2, 2, 2, 2, 2, 2});
  const auto result = transform::coalesce_nest(nest);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().space.total(), 64);
  EXPECT_EQ(result.value().levels, 6u);
  EXPECT_TRUE(core::equivalent_by_execution(nest, result.value().nest));
}

TEST(EdgeCases, LargeExtentsDoNotOverflowDecode) {
  // Big but valid space: decode endpoints only.
  const auto space = index::CoalescedSpace::create(
                         std::vector<i64>{1 << 20, 1 << 20})
                         .value();
  std::vector<i64> idx(2);
  space.decode_paper(1, idx);
  EXPECT_EQ(idx, (std::vector<i64>{1, 1}));
  space.decode_paper(space.total(), idx);
  EXPECT_EQ(idx, (std::vector<i64>{1 << 20, 1 << 20}));
  EXPECT_EQ(space.encode(idx), space.total());
}

TEST(EdgeCases, WorkloadAndSimSingleIteration) {
  const auto space = index::CoalescedSpace::create(std::vector<i64>{1}).value();
  const sim::Workload work = sim::Workload::constant(1, 5);
  sim::CostModel costs;
  const auto r = sim::simulate_coalesced_dynamic(
      space, 8, {sim::SimSchedule::kGuided, 1}, costs, work);
  EXPECT_EQ(r.dispatch_ops, 1u);
  EXPECT_EQ(r.iterations, 1);
  EXPECT_GT(r.completion, 0);
}

TEST(EdgeCases, GuardedCoalesceOnParsedSource) {
  // Frontend -> guarded coalesce -> emit C -> compile-free sanity: just
  // verify the emitted source names the guard helpers.
  const auto nest = frontend::parse_nest(R"(
    array A[5][5];
    doall i = 1, 5 {
      doall j = i, 5 {
        A[i][j] = 1;
      }
    }
  )");
  ASSERT_TRUE(nest.ok());
  const auto result = transform::coalesce_guarded(nest.value());
  ASSERT_TRUE(result.ok());
  const std::string c = codegen::emit_c(result.value().nest);
  EXPECT_NE(c.find("if (j >= i)"), std::string::npos);
}

TEST(EdgeCases, TableHandlesRaggedRows) {
  support::Table t("ragged");
  t.header({"a", "b"});
  t.row({"1"});
  t.row({"1", "2", "3"});
  const std::string out = t.render();
  EXPECT_NE(out.find("ragged"), std::string::npos);
}

}  // namespace
}  // namespace coalesce
