// Tests for the real-thread runtime: pool fork-join semantics, dispatchers,
// and the coalesced / nested parallel-for executors. The key invariant
// everywhere: every iteration executed exactly once, under every schedule.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <limits>
#include <mutex>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "index/chunk.hpp"
#include "runtime/dispatcher.hpp"
#include "runtime/launch.hpp"
#include "runtime/thread_pool.hpp"
#include "support/cancel.hpp"
#include "support/rng.hpp"
#include "trace/recorder.hpp"

namespace coalesce::runtime {
namespace {

TEST(ThreadPool, RunsBodyOncePerWorker) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.concurrency(), 4u);
  std::vector<std::atomic<int>> hits(4);
  pool.run_region([&](std::size_t w) { hits[w].fetch_add(1); });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, RegionsAreReusable) {
  ThreadPool pool(3);
  std::atomic<int> total{0};
  for (int round = 0; round < 10; ++round) {
    pool.run_region([&](std::size_t) { total.fetch_add(1); });
  }
  EXPECT_EQ(total.load(), 30);
}

TEST(ThreadPool, SingleWorkerPoolWorks) {
  ThreadPool pool(1);
  int hits = 0;
  pool.run_region([&](std::size_t w) {
    EXPECT_EQ(w, 0u);
    ++hits;
  });
  EXPECT_EQ(hits, 1);
}

// ---- dispatchers ---------------------------------------------------------------

TEST(FetchAddDispatcher, HandsOutDisjointChunks) {
  FetchAddDispatcher d(100, 7);
  std::set<i64> seen;
  while (true) {
    const index::Chunk c = d.next();
    if (c.empty()) break;
    for (i64 j = c.first; j < c.last; ++j) {
      EXPECT_TRUE(seen.insert(j).second);
    }
  }
  EXPECT_EQ(seen.size(), 100u);
  EXPECT_EQ(d.dispatch_ops(), 15u);  // ceil(100/7)
}

TEST(FetchAddDispatcher, ExhaustedStaysEmpty) {
  FetchAddDispatcher d(3, 1);
  for (int i = 0; i < 3; ++i) EXPECT_FALSE(d.next().empty());
  EXPECT_TRUE(d.next().empty());
  EXPECT_TRUE(d.next().empty());
  EXPECT_EQ(d.dispatch_ops(), 3u);
}

TEST(PolicyDispatcher, GuidedCoversSpace) {
  PolicyDispatcher d(1000, std::make_unique<index::GuidedPolicy>(4));
  i64 covered = 0;
  i64 prev_size = 1 << 30;
  while (true) {
    const index::Chunk c = d.next();
    if (c.empty()) break;
    covered += c.size();
    EXPECT_LE(c.size(), prev_size);
    prev_size = c.size();
  }
  EXPECT_EQ(covered, 1000);
}

TEST(FetchAddDispatcher, CreateRejectsInvalidArguments) {
  EXPECT_FALSE(FetchAddDispatcher::create(-1, 1).ok());
  EXPECT_FALSE(FetchAddDispatcher::create(10, 0).ok());
  EXPECT_FALSE(FetchAddDispatcher::create(10, -5).ok());
  ASSERT_TRUE(FetchAddDispatcher::create(0, 1).ok());
  EXPECT_TRUE(FetchAddDispatcher::create(0, 1).value()->next().empty());
}

TEST(FetchAddDispatcher, ExhaustedPollingIsStableNearOverflow) {
  // Regression: before the clamp, every exhausted poll still ran the
  // fetch_add, so with a huge chunk the cursor overflowed i64 (UB) after a
  // couple of polls — and each poll was miscounted as a dispatch op.
  const i64 huge = std::numeric_limits<i64>::max() / 2;
  FetchAddDispatcher d(10, huge);
  EXPECT_EQ(d.next(), (index::Chunk{1, 11}));
  for (int i = 0; i < 1000; ++i) {
    EXPECT_TRUE(d.next().empty());
  }
  EXPECT_EQ(d.dispatch_ops(), 1u);
}

// ---- wait-free variable-chunk dispatch ------------------------------------------

std::unique_ptr<index::ChunkPolicy> policy_for(Schedule kind, i64 total,
                                               i64 processors) {
  switch (kind) {
    case Schedule::kGuided:
      return std::make_unique<index::GuidedPolicy>(processors);
    case Schedule::kFactoring:
      return std::make_unique<index::FactoringPolicy>(processors);
    case Schedule::kTrapezoid:
      return std::make_unique<index::TrapezoidPolicy>(
          std::max<i64>(total, 1), processors);
    default:
      return nullptr;
  }
}

// The differential property behind the wait-free path: for every
// deterministic policy, the precomputed table and the dispatcher over it
// reproduce the mutex PolicyDispatcher's chunk sequence exactly.
TEST(ChunkScheduleDispatcher, MatchesMutexOracleOnRandomizedInputs) {
  support::Rng rng(0xE16);
  for (int trial = 0; trial < 40; ++trial) {
    const i64 total = rng.uniform_int(0, 5000);
    const i64 processors = rng.uniform_int(1, 16);
    for (const Schedule kind :
         {Schedule::kGuided, Schedule::kFactoring, Schedule::kTrapezoid}) {
      PolicyDispatcher oracle(total, policy_for(kind, total, processors));
      std::vector<index::Chunk> expected;
      while (true) {
        const index::Chunk c = oracle.next();
        if (c.empty()) break;
        expected.push_back(c);
      }

      const auto policy = policy_for(kind, total, processors);
      ChunkScheduleDispatcher waitfree(
          index::ChunkSchedule::precompute(*policy, total));
      EXPECT_EQ(waitfree.schedule().chunks(), expected);
      std::vector<index::Chunk> actual;
      while (true) {
        const index::Chunk c = waitfree.next();
        if (c.empty()) break;
        actual.push_back(c);
      }
      EXPECT_EQ(actual, expected)
          << to_string(kind) << " total=" << total << " P=" << processors;
      EXPECT_EQ(waitfree.dispatch_ops(), expected.size());
    }
  }
}

TEST(ChunkScheduleDispatcher, ConcurrentDrainCoversSpaceExactlyOnce) {
  // Contended drain: every iteration claimed exactly once, dispatch_ops
  // equals the table's chunk count, exhausted polls uncounted. Runs under
  // TSan in CI, which would flag any unsynchronized table access.
  const i64 total = 20011;  // prime: ragged chunk tail
  index::GuidedPolicy policy(8);
  ChunkScheduleDispatcher d(index::ChunkSchedule::precompute(policy, total));
  const std::size_t chunk_count = d.schedule().chunk_count();

  std::vector<std::atomic<int>> hits(static_cast<std::size_t>(total));
  std::vector<std::thread> crew;
  for (int t = 0; t < 8; ++t) {
    crew.emplace_back([&] {
      while (true) {
        const index::Chunk c = d.next();
        if (c.empty()) break;
        for (i64 j = c.first; j < c.last; ++j) {
          hits[static_cast<std::size_t>(j - 1)].fetch_add(
              1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& th : crew) th.join();

  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
  EXPECT_EQ(d.dispatch_ops(), chunk_count);
  EXPECT_TRUE(d.next().empty());
  EXPECT_EQ(d.dispatch_ops(), chunk_count);  // polls never count
}

// ---- cache-sharded dispatcher ---------------------------------------------------

TEST(ShardedDispatcher, SerialDrainCoversSpaceAndStealsAcrossClusters) {
  // One worker, eight-worker geometry (two clusters): its home shard
  // drains first, then every remaining range arrives via steals.
  trace::set_thread_worker(0);
  ShardedDispatcher d(100, 7, 8);
  EXPECT_EQ(d.cluster_count(), 2u);
  std::set<i64> seen;
  std::uint64_t grants = 0;
  while (true) {
    const index::Chunk c = d.next();
    if (c.empty()) break;
    ++grants;
    for (i64 j = c.first; j < c.last; ++j) {
      EXPECT_TRUE(seen.insert(j).second);
    }
  }
  EXPECT_EQ(seen.size(), 100u);
  EXPECT_EQ(*seen.begin(), 1);
  EXPECT_EQ(*seen.rbegin(), 100);
  EXPECT_EQ(d.dispatch_ops(), grants);
  EXPECT_GE(d.steals(), 1u);
}

TEST(ShardedDispatcher, ConcurrentDrainCoversSpaceExactlyOnce) {
  // Contended drain with real worker identities: every iteration claimed
  // exactly once even while drained clusters steal half-ranges from
  // siblings mid-claim. Runs under TSan in CI.
  const i64 total = 20011;  // prime: ragged shard boundaries + chunk tails
  ShardedDispatcher d(total, 16, 8);
  std::vector<std::atomic<int>> hits(static_cast<std::size_t>(total));
  std::vector<std::thread> crew;
  for (std::uint32_t t = 0; t < 8; ++t) {
    crew.emplace_back([&, t] {
      trace::set_thread_worker(t);
      while (true) {
        const index::Chunk c = d.next();
        if (c.empty()) break;
        for (i64 j = c.first; j < c.last; ++j) {
          hits[static_cast<std::size_t>(j - 1)].fetch_add(
              1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& th : crew) th.join();
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
  EXPECT_TRUE(d.next().empty());
}

TEST(ShardedDispatcher, CoverageMatchesFetchAddOnRandomizedShapes) {
  // Differential property: whatever the shard geometry and the claiming
  // worker's cluster, the set of granted iterations is exactly the set the
  // single-counter dispatcher grants.
  support::Rng rng(0xE20);
  for (int trial = 0; trial < 40; ++trial) {
    const i64 total = rng.uniform_int(0, 3000);
    const i64 chunk = rng.uniform_int(1, 64);
    const std::size_t workers =
        static_cast<std::size_t>(rng.uniform_int(8, 64));
    trace::set_thread_worker(
        static_cast<std::uint32_t>(rng.uniform_int(0, 63)));

    FetchAddDispatcher reference(total, chunk);
    std::set<i64> expected;
    while (true) {
      const index::Chunk c = reference.next();
      if (c.empty()) break;
      for (i64 j = c.first; j < c.last; ++j) expected.insert(j);
    }

    ShardedDispatcher d(total, chunk, workers);
    std::set<i64> actual;
    while (true) {
      const index::Chunk c = d.next();
      if (c.empty()) break;
      for (i64 j = c.first; j < c.last; ++j) {
        EXPECT_TRUE(actual.insert(j).second);
      }
    }
    EXPECT_EQ(actual, expected)
        << "total=" << total << " chunk=" << chunk << " workers=" << workers;
  }
  trace::set_thread_worker(0);
}

TEST(ShardedDispatcher, CancelStopsGrantsEverywhere) {
  trace::set_thread_worker(0);
  ShardedDispatcher d(1000, 10, 8);
  EXPECT_FALSE(d.next().empty());
  d.cancel();
  // Cancelled from any cluster's point of view: no grants, no steals.
  for (std::uint32_t w : {0u, 3u, 4u, 7u}) {
    trace::set_thread_worker(w);
    EXPECT_TRUE(d.next().empty());
  }
  trace::set_thread_worker(0);
}

TEST(ShardedDispatcher, ExhaustedPollingIsStable) {
  trace::set_thread_worker(0);
  ShardedDispatcher d(30, 7, 8);
  i64 covered = 0;
  while (true) {
    const index::Chunk c = d.next();
    if (c.empty()) break;
    covered += c.size();
  }
  EXPECT_EQ(covered, 30);
  const std::uint64_t ops = d.dispatch_ops();
  for (int i = 0; i < 1000; ++i) EXPECT_TRUE(d.next().empty());
  EXPECT_EQ(d.dispatch_ops(), ops);  // exhausted polls never count
}

TEST(ShardedDispatcher, ZeroIterationsIsImmediatelyExhausted) {
  trace::set_thread_worker(0);
  ShardedDispatcher d(0, 1, 8);
  EXPECT_TRUE(d.next().empty());
  EXPECT_EQ(d.dispatch_ops(), 0u);
  EXPECT_EQ(d.steals(), 0u);
}

TEST(ShardedDispatcher, CreateRejectsInvalidArguments) {
  EXPECT_FALSE(ShardedDispatcher::create(-1, 1, 8).ok());
  EXPECT_FALSE(ShardedDispatcher::create(10, 0, 8).ok());
  EXPECT_FALSE(ShardedDispatcher::create(10, -5, 8).ok());
  EXPECT_FALSE(ShardedDispatcher::create(10, 1, 0).ok());
  EXPECT_FALSE(
      ShardedDispatcher::create(ShardedDispatcher::kMaxTotal + 1, 1, 8).ok());
  EXPECT_FALSE(
      ShardedDispatcher::create(10, ShardedDispatcher::kMaxChunk + 1, 8).ok());
  EXPECT_FALSE(
      ShardedDispatcher::create(10, 1, ShardedDispatcher::kMaxWorkers + 1)
          .ok());
  ASSERT_TRUE(ShardedDispatcher::create(0, 1, 8).ok());
}

// ---- make_dispatcher validation -------------------------------------------------

TEST(MakeDispatcher, RejectsInvalidParameters) {
  EXPECT_FALSE(make_dispatcher({Schedule::kSelf, 1}, -1, 4).ok());
  EXPECT_FALSE(make_dispatcher({Schedule::kChunked, 0}, 10, 4).ok());
  EXPECT_FALSE(make_dispatcher({Schedule::kChunked, -3}, 10, 4).ok());
  EXPECT_FALSE(make_dispatcher({Schedule::kGuided, 1}, 10, 0).ok());
  EXPECT_FALSE(make_dispatcher({Schedule::kStaticBlock, 1}, -7, 4).ok());
}

TEST(MakeDispatcher, StaticSchedulesYieldNoDispatcher) {
  auto block = make_dispatcher({Schedule::kStaticBlock, 1}, 10, 4);
  ASSERT_TRUE(block.ok());
  EXPECT_EQ(block.value(), nullptr);
  auto cyclic = make_dispatcher({Schedule::kStaticCyclic, 1}, 10, 4);
  ASSERT_TRUE(cyclic.ok());
  EXPECT_EQ(cyclic.value(), nullptr);
}

TEST(MakeDispatcher, PolicySchedulesTakeTheWaitFreePathUnlessSerialized) {
  for (const Schedule kind :
       {Schedule::kGuided, Schedule::kFactoring, Schedule::kTrapezoid}) {
    auto fast = make_dispatcher({kind, 1}, 1000, 4);
    ASSERT_TRUE(fast.ok());
    EXPECT_NE(dynamic_cast<ChunkScheduleDispatcher*>(fast.value().get()),
              nullptr)
        << to_string(kind);

    auto oracle = make_dispatcher(
        ScheduleParams{.kind = kind, .chunk_size = 1, .serialized = true},
        1000, 4);
    ASSERT_TRUE(oracle.ok());
    EXPECT_NE(dynamic_cast<PolicyDispatcher*>(oracle.value().get()), nullptr)
        << to_string(kind);
  }
}

// ---- run() ----------------------------------------------------------------

class ScheduleSweep : public ::testing::TestWithParam<ScheduleParams> {};

TEST_P(ScheduleSweep, FlatLoopExecutesEveryIterationExactlyOnce) {
  ThreadPool pool(4);
  const i64 total = 503;  // prime: exercises ragged chunking
  std::vector<std::atomic<int>> hits(total);
  const ForStats stats = run(
      pool, total,
      [&](i64 j) { hits[static_cast<std::size_t>(j - 1)].fetch_add(1); },
      {.schedule = GetParam()});
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
  std::uint64_t iter_sum = 0;
  for (auto n : stats.iterations_per_worker) iter_sum += n;
  EXPECT_EQ(iter_sum, static_cast<std::uint64_t>(total));
}

TEST_P(ScheduleSweep, CollapsedLoopVisitsWholeSpaceExactlyOnce) {
  ThreadPool pool(4);
  const auto space =
      index::CoalescedSpace::create(std::vector<i64>{11, 7, 3}).value();
  std::vector<std::atomic<int>> hits(
      static_cast<std::size_t>(space.total()));
  const ForStats stats = run(
      pool, space,
      [&](std::span<const i64> idx) {
        ASSERT_EQ(idx.size(), 3u);
        const i64 flat =
            ((idx[0] - 1) * 7 + (idx[1] - 1)) * 3 + (idx[2] - 1);
        hits[static_cast<std::size_t>(flat)].fetch_add(1);
      },
      {.schedule = GetParam()});
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
  EXPECT_GE(stats.imbalance(), 1.0);
}

INSTANTIATE_TEST_SUITE_P(
    Schedules, ScheduleSweep,
    ::testing::Values(ScheduleParams{Schedule::kStaticBlock, 1},
                      ScheduleParams{Schedule::kStaticCyclic, 1},
                      ScheduleParams{Schedule::kSelf, 1},
                      ScheduleParams{Schedule::kChunked, 8},
                      ScheduleParams{Schedule::kChunked, 64},
                      ScheduleParams{Schedule::kGuided, 1},
                      ScheduleParams{Schedule::kFactoring, 1},
                      ScheduleParams{Schedule::kTrapezoid, 1},
                      ScheduleParams{.kind = Schedule::kGuided,
                                     .chunk_size = 1,
                                     .serialized = true},
                      ScheduleParams{.kind = Schedule::kFactoring,
                                     .chunk_size = 1,
                                     .serialized = true},
                      ScheduleParams{.kind = Schedule::kTrapezoid,
                                     .chunk_size = 1,
                                     .serialized = true}),
    [](const ::testing::TestParamInfo<ScheduleParams>& info) {
      std::string name = to_string(info.param.kind);
      for (char& c : name) {
        if (c == '-' || c == '(' || c == ')') c = '_';
      }
      name += "_" + std::to_string(info.param.chunk_size);
      if (info.param.serialized) name += "_mutex";
      return name;
    });

TEST(MakeDispatcher, ShardedFlagRoutesEligibleShapesToShardedDispatcher) {
  // Every dynamic kind routes to the sharded dispatcher at >= 8 workers...
  for (const Schedule kind : {Schedule::kSelf, Schedule::kChunked,
                              Schedule::kGuided, Schedule::kFactoring,
                              Schedule::kTrapezoid}) {
    auto d = make_dispatcher(
        ScheduleParams{.kind = kind, .chunk_size = 16, .sharded = true}, 1000,
        8);
    ASSERT_TRUE(d.ok());
    EXPECT_NE(dynamic_cast<ShardedDispatcher*>(d.value().get()), nullptr)
        << to_string(kind);
  }
  // ...while static kinds still need no dispatcher at all.
  auto block = make_dispatcher(
      ScheduleParams{.kind = Schedule::kStaticBlock, .sharded = true}, 10, 8);
  ASSERT_TRUE(block.ok());
  EXPECT_EQ(block.value(), nullptr);
}

TEST(MakeDispatcher, ShardedFallsBackOnIneligibleShapes) {
  // Too few workers for two clusters: the plain single-counter path.
  auto few = make_dispatcher(
      ScheduleParams{.kind = Schedule::kChunked, .chunk_size = 16,
                     .sharded = true},
      1000, 4);
  ASSERT_TRUE(few.ok());
  EXPECT_NE(dynamic_cast<FetchAddDispatcher*>(few.value().get()), nullptr);

  // Chunk beyond the packed-word cap.
  auto fat = make_dispatcher(
      ScheduleParams{.kind = Schedule::kChunked,
                     .chunk_size = ShardedDispatcher::kMaxChunk + 1,
                     .sharded = true},
      1000, 8);
  ASSERT_TRUE(fat.ok());
  EXPECT_NE(dynamic_cast<FetchAddDispatcher*>(fat.value().get()), nullptr);

  // Total beyond the cap.
  auto big = make_dispatcher(
      ScheduleParams{.kind = Schedule::kChunked, .chunk_size = 16,
                     .sharded = true},
      ShardedDispatcher::kMaxTotal + 1, 8);
  ASSERT_TRUE(big.ok());
  EXPECT_NE(dynamic_cast<FetchAddDispatcher*>(big.value().get()), nullptr);

  // serialized wins over sharded: the mutex oracle must stay reachable.
  auto oracle = make_dispatcher(
      ScheduleParams{.kind = Schedule::kGuided, .chunk_size = 1,
                     .serialized = true, .sharded = true},
      1000, 8);
  ASSERT_TRUE(oracle.ok());
  EXPECT_NE(dynamic_cast<PolicyDispatcher*>(oracle.value().get()), nullptr);
}

TEST(ParallelFor, LocalityOptionCoversSpaceExactlyOnce) {
  // LaunchOptions::locality flips the dispatch onto the sharded path; the
  // executor contract (every iteration exactly once, steals reported) must
  // hold end to end.
  ThreadPool pool(8);
  const i64 total = 20011;
  std::vector<std::atomic<int>> hits(static_cast<std::size_t>(total));
  const auto stats = run(
      pool, total,
      [&](i64 j) {
        hits[static_cast<std::size_t>(j - 1)].fetch_add(
            1, std::memory_order_relaxed);
      },
      {.schedule = {Schedule::kChunked, 16}, .locality = true});
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
  EXPECT_EQ(stats.iterations_done(), static_cast<std::uint64_t>(total));
  EXPECT_GT(stats.dispatch_ops, 0u);
}

TEST(ParallelFor, LocalityOnSmallPoolFallsBackAndStaysCorrect) {
  // Below two clusters the sharded path is ineligible; locality must
  // degrade to the normal dispatcher without losing iterations.
  ThreadPool pool(2);
  const i64 total = 5000;
  std::vector<std::atomic<int>> hits(static_cast<std::size_t>(total));
  const auto stats = run(
      pool, total,
      [&](i64 j) {
        hits[static_cast<std::size_t>(j - 1)].fetch_add(
            1, std::memory_order_relaxed);
      },
      {.schedule = {Schedule::kChunked, 16}, .locality = true});
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
  EXPECT_EQ(stats.steals, 0u);  // FetchAddDispatcher: nothing to steal
}

TEST(ParallelFor, SelfScheduleDispatchOpsEqualIterations) {
  ThreadPool pool(4);
  const ForStats stats =
      run(pool, 256, [](i64) {}, {.schedule = {Schedule::kSelf, 1}});
  EXPECT_EQ(stats.dispatch_ops, 256u);
}

TEST(ParallelFor, ChunkedDispatchOpsAreCeilTotalOverK) {
  ThreadPool pool(4);
  const ForStats stats =
      run(pool, 250, [](i64) {}, {.schedule = {Schedule::kChunked, 32}});
  EXPECT_EQ(stats.dispatch_ops, 8u);  // ceil(250/32)
}

TEST(ParallelFor, GuidedDispatchOpsFarBelowIterations) {
  ThreadPool pool(4);
  const ForStats stats =
      run(pool, 10000, [](i64) {}, {.schedule = {Schedule::kGuided, 1}});
  EXPECT_LT(stats.dispatch_ops, 200u);
  EXPECT_GT(stats.dispatch_ops, 0u);
}

TEST(ParallelFor, StaticSchedulesNeedNoDispatchOps) {
  ThreadPool pool(4);
  EXPECT_EQ(run(pool, 100, [](i64) {},
                {.schedule = {Schedule::kStaticBlock, 1}})
                .dispatch_ops,
            0u);
  EXPECT_EQ(run(pool, 100, [](i64) {},
                {.schedule = {Schedule::kStaticCyclic, 1}})
                .dispatch_ops,
            0u);
}

TEST(ParallelFor, ZeroIterationsIsANoop) {
  ThreadPool pool(2);
  const ForStats stats =
      run(pool, 0, [](i64) { FAIL(); }, {.schedule = {Schedule::kSelf, 1}});
  EXPECT_EQ(stats.dispatch_ops, 0u);
  EXPECT_EQ(stats.chunks_executed, 0u);
}

TEST(ParallelFor, CollapsedIndicesAreInBoundsAndOrderedPerChunk) {
  ThreadPool pool(2);
  const auto space =
      index::CoalescedSpace::create(
          {index::LevelGeometry{5, 4, 10}, index::LevelGeometry{-3, 5, 2}})
          .value();
  std::mutex mu;
  std::set<std::pair<i64, i64>> seen;
  run(pool, space,
      [&](std::span<const i64> idx) {
        std::scoped_lock lock(mu);
        EXPECT_TRUE(seen.emplace(idx[0], idx[1]).second);
      },
      {.schedule = {Schedule::kChunked, 3}});
  EXPECT_EQ(seen.size(), 20u);
  // Original values on the lattices.
  for (const auto& [a, b] : seen) {
    EXPECT_GE(a, 5);
    EXPECT_LE(a, 35);
    EXPECT_EQ((a - 5) % 10, 0);
    EXPECT_GE(b, -3);
    EXPECT_LE(b, 5);
    EXPECT_EQ((b + 3) % 2, 0);
  }
}

// ---- tiled executor ------------------------------------------------------------------

TEST(ParallelForTiled, CoversWholeSpaceExactlyOnce) {
  ThreadPool pool(4);
  const auto space =
      index::CoalescedSpace::create(std::vector<i64>{10, 12}).value();
  const std::vector<i64> tiles{4, 5};  // ragged edges
  std::vector<std::atomic<int>> hits(120);
  const ForStats stats = run(
      pool, space,
      [&](std::span<const i64> ij) {
        hits[static_cast<std::size_t>((ij[0] - 1) * 12 + (ij[1] - 1))]
            .fetch_add(1);
      },
      {.schedule = {Schedule::kSelf, 1}, .tile_sizes = tiles});
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
  // One dispatch per tile: ceil(10/4) * ceil(12/5) = 3 * 3.
  EXPECT_EQ(stats.dispatch_ops, 9u);
}

TEST(ParallelForTiled, HonorsOffsetAndSteppedGeometry) {
  ThreadPool pool(2);
  // Level 0: values 5, 8, 11, 14 (lower 5, step 3); level 1: -2..1.
  const auto space =
      index::CoalescedSpace::create(
          {index::LevelGeometry{5, 4, 3}, index::LevelGeometry{-2, 4, 1}})
          .value();
  std::mutex mu;
  std::set<std::pair<i64, i64>> seen;
  run(pool, space,
      [&](std::span<const i64> xy) {
        std::scoped_lock lock(mu);
        EXPECT_TRUE(seen.emplace(xy[0], xy[1]).second);
      },
      {.schedule = {Schedule::kGuided, 1},
       .tile_sizes = std::vector<i64>{2, 3}});
  EXPECT_EQ(seen.size(), 16u);
  for (const auto& [x, y] : seen) {
    EXPECT_EQ((x - 5) % 3, 0);
    EXPECT_GE(y, -2);
    EXPECT_LE(y, 1);
  }
}

TEST(ParallelForTiled, TileLargerThanSpaceIsOneDispatch) {
  ThreadPool pool(2);
  const auto space =
      index::CoalescedSpace::create(std::vector<i64>{3, 3}).value();
  std::atomic<int> count{0};
  const ForStats stats = run(
      pool, space, [&](std::span<const i64>) { count.fetch_add(1); },
      {.schedule = {Schedule::kSelf, 1},
       .tile_sizes = std::vector<i64>{100, 100}});
  EXPECT_EQ(count.load(), 9);
  EXPECT_EQ(stats.dispatch_ops, 1u);
}

TEST(ParallelForTiled, MatchesUntiledResults) {
  ThreadPool pool(3);
  const auto space =
      index::CoalescedSpace::create(std::vector<i64>{9, 7, 5}).value();
  std::vector<double> tiled(9 * 7 * 5, 0.0), flat(9 * 7 * 5, 0.0);
  auto fill = [&](std::vector<double>& out) {
    return [&out](std::span<const i64> idx) {
      out[static_cast<std::size_t>(((idx[0] - 1) * 7 + (idx[1] - 1)) * 5 +
                                   (idx[2] - 1))] =
          static_cast<double>(idx[0] * 100 + idx[1] * 10 + idx[2]);
    };
  };
  run(pool, space, fill(tiled),
      {.schedule = {Schedule::kGuided, 1},
       .tile_sizes = std::vector<i64>{4, 3, 2}});
  run(pool, space, fill(flat), {.schedule = {Schedule::kGuided, 1}});
  EXPECT_EQ(tiled, flat);
}

// ---- nested baselines ---------------------------------------------------------------

TEST(NestedOuter, VisitsWholeSpaceOnce) {
  ThreadPool pool(4);
  const std::vector<i64> extents{6, 5, 4};
  std::vector<std::atomic<int>> hits(6 * 5 * 4);
  const ForStats stats = run(
      pool, extents,
      [&](std::span<const i64> idx) {
        const i64 flat = ((idx[0] - 1) * 5 + (idx[1] - 1)) * 4 + (idx[2] - 1);
        hits[static_cast<std::size_t>(flat)].fetch_add(1);
      },
      {.schedule = {Schedule::kSelf, 1}, .mode = NestMode::kNestedOuter});
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
  // Only the outer level is dispatched.
  EXPECT_EQ(stats.dispatch_ops, 6u);
}

TEST(NestedForkJoin, VisitsWholeSpaceOnceWithManyForkJoins) {
  ThreadPool pool(4);
  const std::vector<i64> extents{3, 4, 5};
  std::vector<std::atomic<int>> hits(3 * 4 * 5);
  const ForStats stats = run(
      pool, extents,
      [&](std::span<const i64> idx) {
        const i64 flat = ((idx[0] - 1) * 4 + (idx[1] - 1)) * 5 + (idx[2] - 1);
        hits[static_cast<std::size_t>(flat)].fetch_add(1);
      },
      {.schedule = {Schedule::kSelf, 1}, .mode = NestMode::kNestedForkJoin});
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
  // One unit dispatch per iteration, regardless of instance structure.
  EXPECT_EQ(stats.dispatch_ops, 60u);
}

TEST(NestedVsCollapsed, CoalescedNeedsFewerDispatchesUnderChunking) {
  ThreadPool pool(4);
  const std::vector<i64> extents{16, 16};
  const auto space = index::CoalescedSpace::create(extents).value();

  const ForStats collapsed =
      run(pool, space, [](std::span<const i64>) {},
          {.schedule = {Schedule::kChunked, 16}});
  const ForStats nested =
      run(pool, extents, [](std::span<const i64>) {},
          {.schedule = {Schedule::kChunked, 16},
           .mode = NestMode::kNestedForkJoin});
  // Coalesced: ceil(256/16) = 16 dispatches. Nested: 16 instances x 1 = 16
  // dispatches but ALSO 16 fork-joins vs 1; with unit chunks the dispatch
  // gap shows directly:
  const ForStats collapsed_unit =
      run(pool, space, [](std::span<const i64>) {},
          {.schedule = {Schedule::kGuided, 1}});
  const ForStats nested_unit =
      run(pool, extents, [](std::span<const i64>) {},
          {.schedule = {Schedule::kGuided, 1},
           .mode = NestMode::kNestedForkJoin});
  EXPECT_EQ(collapsed.dispatch_ops, 16u);
  EXPECT_EQ(nested.dispatch_ops, 16u);
  // Guided over the full space dispatches far fewer chunks than guided
  // restarted 16 times over rows of 16.
  EXPECT_LT(collapsed_unit.dispatch_ops, nested_unit.dispatch_ops);
}

TEST(ForStats, ImbalanceOfUniformAndSkewedDistributions) {
  ForStats stats;
  stats.iterations_per_worker = {10, 10, 10, 10};
  EXPECT_DOUBLE_EQ(stats.imbalance(), 1.0);
  stats.iterations_per_worker = {40, 0, 0, 0};
  EXPECT_DOUBLE_EQ(stats.imbalance(), 4.0);
}

TEST(ForStats, ImbalanceOfEmptyDistributionIsBalanced) {
  // A stats object never filled in (no workers recorded) reads as balanced,
  // not as a division by zero.
  ForStats stats;
  EXPECT_TRUE(stats.iterations_per_worker.empty());
  EXPECT_DOUBLE_EQ(stats.imbalance(), 1.0);
}

TEST(ForStats, ImbalanceOfAllZeroDistributionIsBalanced) {
  // A zero-trip loop executes no iterations on any worker: every worker did
  // the same (zero) work, so imbalance is 1.0, not 0/0.
  ForStats stats;
  stats.iterations_per_worker = {0, 0, 0, 0};
  EXPECT_DOUBLE_EQ(stats.imbalance(), 1.0);
}

TEST(ForStats, ZeroTripParallelForReportsBalancedStats) {
  ThreadPool pool(4);
  const ForStats stats =
      run(pool, 0, [](i64) { FAIL() << "no iterations"; },
          {.schedule = {Schedule::kGuided, 1}});
  EXPECT_DOUBLE_EQ(stats.imbalance(), 1.0);
}

// ---- shutdown ordering under cancellation --------------------------------------
//
// The destructor contract: a pool may be destroyed the instant run_region
// returns, including when that region was cancelled from another thread a
// moment earlier. These run under TSan in CI (the destroy-while-cancelling
// regression) — the join inside run_region must fully order every worker's
// last access to the region state before the jthreads are stopped.

TEST(Shutdown, DestroyImmediatelyAfterExternallyCancelledRegion) {
  support::CancellationSource source;
  std::atomic<bool> region_started{false};
  std::thread canceller([&] {
    while (!region_started.load(std::memory_order_acquire)) {
      std::this_thread::yield();
    }
    source.request_cancel();
  });
  {
    ThreadPool pool(4);
    const ForStats stats = run(
        pool, 5'000'000,
        [&](i64) { region_started.store(true, std::memory_order_release); },
        {.schedule = {Schedule::kChunked, 16},
         .control = RunControl{source.token(), {}}});
    EXPECT_LE(stats.iterations_done(), 5'000'000u);
  }  // pool destroyed with the cancel possibly racing the final chunks
  canceller.join();
}

TEST(Shutdown, DestroyImmediatelyAfterThrowingRegion) {
  support::CancellationSource source;
  {
    ThreadPool pool(4);
    EXPECT_THROW(run(pool, 100'000,
                     [](i64 j) {
                       if (j == 100) {
                         throw std::runtime_error("mid-region");
                       }
                     },
                     {.schedule = {Schedule::kSelf, 1}}),
                 std::runtime_error);
  }  // destructor runs right after the rethrow; workers must all be parked
}

TEST(Shutdown, RepeatedCancelledRegionsLeaveNoResidue) {
  ThreadPool pool(4);
  for (int round = 0; round < 20; ++round) {
    support::CancellationSource source;
    std::atomic<std::uint64_t> ran{0};
    (void)run(
        pool, 10'000,
        [&](i64) {
          if (ran.fetch_add(1) + 1 == 50) source.request_cancel();
        },
        {.schedule = {Schedule::kChunked, 8},
         .control = RunControl{source.token(), {}}});
    // Every cancelled region is followed by a full one on the same pool.
    std::atomic<std::uint64_t> full{0};
    const ForStats stats = run(pool, 500, [&](i64) { full.fetch_add(1); },
                               {.schedule = {Schedule::kSelf, 1}});
    ASSERT_TRUE(stats.completed()) << "round " << round;
    ASSERT_EQ(full.load(), 500u) << "round " << round;
  }
}

TEST(Shutdown, ConcurrentCancelRequestsAreRaceFree) {
  // Several outside threads hammer the same source while the region runs:
  // request_cancel is idempotent and the token read is a relaxed load, so
  // TSan must stay quiet and the region must stop exactly once.
  ThreadPool pool(4);
  support::CancellationSource source;
  std::atomic<bool> go{false};
  std::vector<std::thread> cancellers;
  for (int t = 0; t < 3; ++t) {
    cancellers.emplace_back([&] {
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      for (int i = 0; i < 100; ++i) source.request_cancel();
    });
  }
  std::atomic<std::uint64_t> ran{0};
  const ForStats stats = run(
      pool, 5'000'000,
      [&](i64) {
        go.store(true, std::memory_order_release);
        // The body also cancels at a fixed point, so the region is
        // guaranteed to stop even if the outside threads lose the race;
        // their concurrent stores are what TSan scrutinizes.
        if (ran.fetch_add(1) + 1 == 10'000) source.request_cancel();
      },
      {.schedule = {Schedule::kChunked, 32},
       .control = RunControl{source.token(), {}}});
  for (auto& t : cancellers) t.join();
  EXPECT_TRUE(stats.cancelled);
  EXPECT_LT(stats.iterations_done(), 5'000'000u);
}

TEST(Shutdown, ZeroTripRegionWithActiveControlIsClean) {
  ThreadPool pool(2);
  support::CancellationSource source;
  const ForStats stats = run(
      pool, 0, [](i64) { FAIL() << "no iterations"; },
      {.schedule = {Schedule::kGuided, 1},
       .control =
           RunControl{source.token(), support::Deadline::after_ms(60'000)}});
  EXPECT_TRUE(stats.completed());
  EXPECT_FALSE(stats.cancelled);
  EXPECT_FALSE(stats.deadline_expired);
}

TEST(Shutdown, DeadlineExpiryRacesDestructionSafely) {
  // A deadline that expires while workers are mid-chunk, with the pool
  // destroyed immediately after the join.
  {
    ThreadPool pool(4);
    const ForStats stats = run(
        pool, 200'000, [](i64) { std::this_thread::yield(); },
        {.schedule = {Schedule::kChunked, 64},
         .control = RunControl{
             {}, support::Deadline::after(std::chrono::microseconds(200))}});
    EXPECT_TRUE(stats.deadline_expired || stats.completed());
  }
}

TEST(Shutdown, ReduceOnCancelledPoolThenReuse) {
  ThreadPool pool(4);
  support::CancellationSource source;
  source.request_cancel();
  const ReduceResult partial =
      run_sum(pool, 10'000, [](i64) { return 1.0; },
              {.schedule = {Schedule::kChunked, 16},
               .control = RunControl{source.token(), {}}});
  EXPECT_TRUE(partial.stats.cancelled);
  EXPECT_DOUBLE_EQ(partial.value, 0.0);
  const ReduceResult full = run_sum(pool, 10'000, [](i64) { return 1.0; },
                                    {.schedule = {Schedule::kChunked, 16}});
  EXPECT_DOUBLE_EQ(full.value, 10'000.0);
  EXPECT_TRUE(full.stats.completed());
}

TEST(Shutdown, ManyShortLivedPoolsWithCancellationInFlight) {
  for (int round = 0; round < 8; ++round) {
    support::CancellationSource source;
    ThreadPool pool(3);
    std::atomic<std::uint64_t> ran{0};
    (void)run(
        pool, 100'000,
        [&](i64) {
          if (ran.fetch_add(1) + 1 == 10) source.request_cancel();
        },
        {.schedule = {Schedule::kSelf, 1},
         .control = RunControl{source.token(), {}}});
    // Pool destroyed at scope exit each round.
  }
  SUCCEED();
}

}  // namespace
}  // namespace coalesce::runtime
