// The coalesced service, attacked from the wire inward: protocol framing
// against truncation/oversize/garbage, admission against every
// examples/loops/*.bad.loop, overload control (tenant quotas, engine-queue
// shedding), and an N-clients-by-M-programs end-to-end run whose response
// arrays are bit-checked against the sequential interpreter.
#include <algorithm>
#include <atomic>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "coalesce.hpp"

namespace {

using namespace coalesce;

std::string read_file(const std::filesystem::path& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in) << "cannot open " << path;
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

// Both *.bad.loop (lint-rejected) and *.racy.loop (race-rejected) examples
// are expected to bounce off admission; everything else must be admitted.
std::vector<std::filesystem::path> example_files(bool bad) {
  std::vector<std::filesystem::path> files;
  for (const auto& entry :
       std::filesystem::directory_iterator(EXAMPLES_LOOPS_DIR)) {
    const std::string name = entry.path().filename().string();
    if (name.size() < 5 || name.substr(name.size() - 5) != ".loop") continue;
    const bool is_bad = name.find(".bad.loop") != std::string::npos ||
                        name.find(".racy.loop") != std::string::npos;
    if (is_bad == bad) files.push_back(entry.path());
  }
  std::sort(files.begin(), files.end());
  return files;
}

/// A connected (client, server) TCP socket pair for raw-byte protocol tests.
struct SocketPair {
  support::Socket listener;
  support::Socket client;
  support::Socket server;
};

SocketPair make_pair() {
  SocketPair pair;
  std::uint16_t port = 0;
  auto listener = support::listen_tcp(0, &port);
  EXPECT_TRUE(listener.ok());
  pair.listener = std::move(listener).value();
  auto client = support::connect_tcp("127.0.0.1", port);
  EXPECT_TRUE(client.ok());
  pair.client = std::move(client).value();
  auto server = support::accept_connection(pair.listener);
  EXPECT_TRUE(server.ok());
  pair.server = std::move(server).value();
  return pair;
}

service::ServerOptions tcp_options() {
  service::ServerOptions options;
  options.tcp = true;
  options.tcp_port = 0;  // ephemeral
  options.engine_workers = 4;
  return options;
}

support::Socket connect_to(const service::Server& server) {
  auto socket = support::connect_tcp("127.0.0.1", server.tcp_port());
  EXPECT_TRUE(socket.ok());
  return std::move(socket).value();
}

service::Request submit_request(std::string source, std::string tenant = "",
                                bool want_data = false) {
  service::Request request;
  request.type = service::MessageType::kSubmit;
  request.submit.source = std::move(source);
  request.submit.tenant = std::move(tenant);
  request.submit.want_data = want_data;
  return request;
}

// ---- framing --------------------------------------------------------------

TEST(ServiceProtocol, RequestRoundTripsThroughEncodeDecode) {
  service::Request request;
  request.type = service::MessageType::kSubmit;
  request.submit.priority = 1;
  request.submit.want_data = true;
  request.submit.deadline_ms = 1234;
  request.submit.tenant = "tenant-a";
  request.submit.source = "doall i = 1, 4 { }";

  const auto payload = service::encode_request(request);
  auto decoded = service::decode_request(payload);
  ASSERT_TRUE(decoded.ok()) << decoded.error().to_string();
  EXPECT_EQ(decoded.value().type, request.type);
  EXPECT_EQ(decoded.value().submit.priority, 1);
  EXPECT_TRUE(decoded.value().submit.want_data);
  EXPECT_EQ(decoded.value().submit.deadline_ms, 1234u);
  EXPECT_EQ(decoded.value().submit.tenant, "tenant-a");
  EXPECT_EQ(decoded.value().submit.source, request.submit.source);
}

TEST(ServiceProtocol, ResponseRoundTripsWithArraysAndCounters) {
  service::Response response;
  response.status = service::Status::kOk;
  response.message = "ok";
  response.diagnostics = "[]";
  response.run.parallel_roots = 2;
  response.run.iterations = 100;
  response.run.iterations_requested = 128;
  response.run.wall_ns = 5'000'000;
  response.run.deadline_expired = true;
  response.arrays.push_back({"A", {1.0, 2.5, -3.75}});
  response.counters.accepted = 7;
  response.counters.queue_depth = 3;

  const auto payload = service::encode_response(response);
  auto decoded = service::decode_response(payload);
  ASSERT_TRUE(decoded.ok()) << decoded.error().to_string();
  EXPECT_EQ(decoded.value().status, service::Status::kOk);
  EXPECT_EQ(decoded.value().run.iterations, 100u);
  EXPECT_TRUE(decoded.value().run.deadline_expired);
  ASSERT_EQ(decoded.value().arrays.size(), 1u);
  EXPECT_EQ(decoded.value().arrays[0].name, "A");
  EXPECT_EQ(decoded.value().arrays[0].data,
            (std::vector<double>{1.0, 2.5, -3.75}));
  EXPECT_EQ(decoded.value().counters.accepted, 7u);
}

TEST(ServiceProtocol, FrameRoundTripsOverASocket) {
  SocketPair pair = make_pair();
  const std::vector<std::uint8_t> payload = {0x01, 0xAB, 0x00, 0xFF};
  ASSERT_TRUE(service::write_frame(pair.client, payload));
  auto frame = service::read_frame(pair.server);
  ASSERT_TRUE(frame.ok());
  ASSERT_TRUE(frame.value().has_value());
  EXPECT_EQ(*frame.value(), payload);
}

TEST(ServiceProtocol, CleanCloseBetweenFramesReadsAsEndOfStream) {
  SocketPair pair = make_pair();
  pair.client.close();
  auto frame = service::read_frame(pair.server);
  ASSERT_TRUE(frame.ok());
  EXPECT_FALSE(frame.value().has_value());
}

TEST(ServiceProtocol, TruncatedFrameIsAnError) {
  SocketPair pair = make_pair();
  // Prefix promises 100 bytes; send 3 and hang up.
  const std::vector<std::uint8_t> bytes = {100, 0, 0, 0, 0xDE, 0xAD, 0xBE};
  ASSERT_TRUE(pair.client.send_all(bytes));
  pair.client.close();
  auto frame = service::read_frame(pair.server);
  ASSERT_FALSE(frame.ok());
  EXPECT_EQ(frame.error().code, support::ErrorCode::kInvalidArgument);
}

TEST(ServiceProtocol, OversizedLengthPrefixIsRefusedWithoutAllocating) {
  SocketPair pair = make_pair();
  const std::uint32_t huge = service::kMaxFrameBytes + 1;
  const std::vector<std::uint8_t> bytes = {
      static_cast<std::uint8_t>(huge & 0xFF),
      static_cast<std::uint8_t>((huge >> 8) & 0xFF),
      static_cast<std::uint8_t>((huge >> 16) & 0xFF),
      static_cast<std::uint8_t>((huge >> 24) & 0xFF)};
  ASSERT_TRUE(pair.client.send_all(bytes));
  auto frame = service::read_frame(pair.server);
  ASSERT_FALSE(frame.ok());
  EXPECT_EQ(frame.error().code, support::ErrorCode::kInvalidArgument);
}

TEST(ServiceProtocol, GarbagePayloadFailsDecodeNotTheProcess) {
  const std::vector<std::uint8_t> garbage = {0x7F, 0xFF, 0xFF, 0xFF, 0x00};
  EXPECT_FALSE(service::decode_request(garbage).ok());
  EXPECT_FALSE(service::decode_response(garbage).ok());
  EXPECT_FALSE(service::decode_request({}).ok());
  // Truncated mid-string: kSubmit whose tenant length runs past the end.
  const std::vector<std::uint8_t> cut = {0x01, 0x00, 0x00, 0x00,
                                         0x00, 0x00, 0x00, 0xFF, 0xFF};
  EXPECT_FALSE(service::decode_request(cut).ok());
}

// ---- admission ------------------------------------------------------------

TEST(ServiceAdmission, EveryBadExampleIsRejectedWithDiagnostics) {
  const auto files = example_files(/*bad=*/true);
  ASSERT_GE(files.size(), 3u) << "expected racy_scalar, overflow, div_zero";
  for (const auto& file : files) {
    const auto result =
        service::admit(read_file(file), file.filename().string(),
                       service::DiagnosticsFormat::kJson);
    EXPECT_FALSE(result.admitted) << file;
    EXPECT_FALSE(result.reject_phase.empty()) << file;
    EXPECT_FALSE(result.diagnostics.empty()) << file;
    EXPECT_NE(result.diagnostics.find("\"rule\""), std::string::npos)
        << file << ": diagnostics should carry structured findings:\n"
        << result.diagnostics;
  }
}

TEST(ServiceAdmission, EveryGoodExampleIsAdmitted) {
  const auto files = example_files(/*bad=*/false);
  ASSERT_GE(files.size(), 3u);
  for (const auto& file : files) {
    const auto result =
        service::admit(read_file(file), file.filename().string(),
                       service::DiagnosticsFormat::kJson);
    EXPECT_TRUE(result.admitted) << file << ": " << result.message;
    EXPECT_FALSE(result.program.roots.empty()) << file;
  }
}

TEST(ServiceAdmission, ParseFailureReportsThePhase) {
  const auto result = service::admit("doall i = {", "<test>",
                                     service::DiagnosticsFormat::kJson);
  EXPECT_FALSE(result.admitted);
  EXPECT_EQ(result.reject_phase, "parse");
  EXPECT_FALSE(result.diagnostics.empty());
}

TEST(ServiceAdmission, RacyExamplesAreRejectedAtTheRacePhase) {
  for (const char* name : {"recurrence.racy.loop", "histogram.racy.loop"}) {
    const auto source =
        read_file(std::filesystem::path(EXAMPLES_LOOPS_DIR) / name);
    const auto result =
        service::admit(source, name, service::DiagnosticsFormat::kJson);
    EXPECT_FALSE(result.admitted) << name;
    EXPECT_EQ(result.reject_phase, "race") << name << ": " << result.message;
    EXPECT_NE(result.diagnostics.find("race-carried-dependence"),
              std::string::npos)
        << name << ":\n"
        << result.diagnostics;
  }
}

TEST(ServiceAdmission, SarifFormatIsHonoredForLintRejections) {
  const auto source = read_file(
      std::filesystem::path(EXAMPLES_LOOPS_DIR) / "racy_scalar.bad.loop");
  const auto result = service::admit(source, "racy_scalar.bad.loop",
                                     service::DiagnosticsFormat::kSarif);
  EXPECT_FALSE(result.admitted);
  EXPECT_EQ(result.reject_phase, "lint");
  EXPECT_NE(result.diagnostics.find("sarif"), std::string::npos)
      << result.diagnostics;
}

// ---- the server over the wire ---------------------------------------------

TEST(ServiceServer, AnswersPingAndStats) {
  auto server = service::Server::create(tcp_options());
  ASSERT_TRUE(server.ok()) << server.error().to_string();
  server.value()->start();

  auto socket = connect_to(*server.value());
  service::Request ping;
  ping.type = service::MessageType::kPing;
  auto reply = service::call(socket, ping);
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(reply.value().status, service::Status::kOk);

  service::Request stats;
  stats.type = service::MessageType::kStats;
  reply = service::call(socket, stats);
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(reply.value().status, service::Status::kOk);
  EXPECT_EQ(reply.value().counters.accepted, 0u);
  server.value()->stop();
}

TEST(ServiceServer, ServesOverAUnixSocketToo) {
  service::ServerOptions options;
  options.unix_path = "/tmp/coalesced_test_" +
                      std::to_string(::getpid()) + ".sock";
  options.engine_workers = 2;
  auto server = service::Server::create(options);
  ASSERT_TRUE(server.ok()) << server.error().to_string();
  server.value()->start();

  auto socket = support::connect_unix(options.unix_path);
  ASSERT_TRUE(socket.ok());
  auto reply = service::call(
      socket.value(), submit_request("array A[8];\n"
                                     "doall i = 1, 8 { A[i] = i * 2; }\n"));
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(reply.value().status, service::Status::kOk);
  EXPECT_EQ(reply.value().run.iterations, 8u);
  server.value()->stop();
  EXPECT_FALSE(std::filesystem::exists(options.unix_path))
      << "stop() should unlink the socket file";
}

TEST(ServiceServer, RejectsEveryBadExampleOverTheWire) {
  auto server = service::Server::create(tcp_options());
  ASSERT_TRUE(server.ok());
  server.value()->start();
  auto socket = connect_to(*server.value());

  for (const auto& file : example_files(/*bad=*/true)) {
    auto reply =
        service::call(socket, submit_request(read_file(file)));
    ASSERT_TRUE(reply.ok()) << file;
    EXPECT_EQ(reply.value().status, service::Status::kRejected) << file;
    EXPECT_FALSE(reply.value().diagnostics.empty()) << file;
  }
  const auto counters = server.value()->counters();
  EXPECT_EQ(counters.rejected, example_files(true).size());
  EXPECT_EQ(counters.accepted, 0u);
  server.value()->stop();
}

TEST(ServiceServer, GarbageFrameGetsAnErrorResponseAndTheConnectionLives) {
  auto server = service::Server::create(tcp_options());
  ASSERT_TRUE(server.ok());
  server.value()->start();
  auto socket = connect_to(*server.value());

  // Undecodable payload: unknown message type.
  ASSERT_TRUE(service::write_frame(socket, {0x6E, 0x01, 0x02}));
  auto frame = service::read_frame(socket);
  ASSERT_TRUE(frame.ok());
  ASSERT_TRUE(frame.value().has_value());
  auto decoded = service::decode_response(*frame.value());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().status, service::Status::kError);

  // The connection survives a decode error; a good request still works.
  service::Request ping;
  ping.type = service::MessageType::kPing;
  auto reply = service::call(socket, ping);
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(reply.value().status, service::Status::kOk);
  server.value()->stop();
}

TEST(ServiceServer, ZeroQuotaShedsEverySubmission) {
  auto options = tcp_options();
  options.tenant_quota = 0;
  auto server = service::Server::create(options);
  ASSERT_TRUE(server.ok());
  server.value()->start();
  auto socket = connect_to(*server.value());

  auto reply = service::call(
      socket, submit_request("array A[4];\ndoall i = 1, 4 { A[i] = 1; }\n",
                             "greedy"));
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(reply.value().status, service::Status::kShed);
  EXPECT_EQ(server.value()->counters().shed, 1u);
  server.value()->stop();
}

TEST(ServiceServer, SaturationShedsInsteadOfQueueingUnboundedly) {
  auto options = tcp_options();
  options.engine_workers = 1;
  options.queue_capacity = 1;
  options.tenant_quota = 1024;
  auto server = service::Server::create(options);
  ASSERT_TRUE(server.ok());
  server.value()->start();

  // A band big enough that requests overlap. Every response must be kOk or
  // kShed — never an error, never a hang.
  const std::string source =
      "array A[256][64];\n"
      "doall i = 1, 256 {\n"
      "  doall j = 1, 64 {\n"
      "    A[i][j] = i * j + i - j;\n"
      "  }\n"
      "}\n";
  constexpr int kThreads = 8;
  constexpr int kPerThread = 16;
  std::atomic<int> ok{0}, shed{0}, other{0};
  std::vector<std::thread> clients;
  clients.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    clients.emplace_back([&] {
      auto socket = connect_to(*server.value());
      for (int r = 0; r < kPerThread; ++r) {
        auto reply = service::call(socket, submit_request(source));
        if (!reply.ok()) {
          ++other;
          continue;
        }
        switch (reply.value().status) {
          case service::Status::kOk: ++ok; break;
          case service::Status::kShed: ++shed; break;
          default: ++other; break;
        }
      }
    });
  }
  for (auto& c : clients) c.join();
  EXPECT_EQ(ok + shed, kThreads * kPerThread);
  EXPECT_EQ(other, 0);
  EXPECT_GT(ok, 0);
  const auto counters = server.value()->counters();
  EXPECT_EQ(counters.accepted,
            static_cast<std::uint64_t>(ok.load()));
  EXPECT_EQ(counters.shed, static_cast<std::uint64_t>(shed.load()));
  server.value()->stop();
}

TEST(ServiceServer, ShutdownRequestStopsTheServerGracefully) {
  auto server = service::Server::create(tcp_options());
  ASSERT_TRUE(server.ok());
  server.value()->start();
  auto socket = connect_to(*server.value());

  service::Request shutdown;
  shutdown.type = service::MessageType::kShutdown;
  auto reply = service::call(socket, shutdown);
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(reply.value().status, service::Status::kOk);
  EXPECT_TRUE(server.value()->wait_for_stop(5000));
  server.value()->stop();
}

// ---- end-to-end: concurrent clients, bit-checked results ------------------

/// Runs `source` through the sequential interpreter and returns each
/// array's final contents by name — the ground truth the service's
/// want_data replies must match bit-for-bit.
std::map<std::string, std::vector<double>> reference_run(
    const std::string& source) {
  auto parsed = frontend::parse_program(source);
  EXPECT_TRUE(parsed.ok());
  ir::Program program = std::move(parsed).value();
  ir::Evaluator eval(program.symbols);
  for (const auto& root : program.roots) eval.run(*root);
  std::map<std::string, std::vector<double>> arrays;
  for (std::uint32_t raw = 0; raw < program.symbols.size(); ++raw) {
    const ir::VarId id{raw};
    if (program.symbols.kind(id) != ir::SymbolKind::kArray) continue;
    const auto data = eval.store().data(id);
    arrays[program.symbols.name(id)] =
        std::vector<double>(data.begin(), data.end());
  }
  return arrays;
}

TEST(ServiceServer, ConcurrentClientsGetBitExactResults) {
  auto server = service::Server::create(tcp_options());
  ASSERT_TRUE(server.ok());
  server.value()->start();

  std::vector<std::string> sources;
  std::vector<std::map<std::string, std::vector<double>>> expected;
  for (const auto& file : example_files(/*bad=*/false)) {
    sources.push_back(read_file(file));
    expected.push_back(reference_run(sources.back()));
  }
  ASSERT_GE(sources.size(), 3u);

  constexpr int kThreads = 6;
  constexpr int kRounds = 4;
  std::atomic<int> mismatches{0}, failures{0};
  std::vector<std::thread> clients;
  clients.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    clients.emplace_back([&, t] {
      auto socket = connect_to(*server.value());
      for (int r = 0; r < kRounds; ++r) {
        const std::size_t which = (t + r) % sources.size();
        auto reply = service::call(
            socket, submit_request(sources[which],
                                   "tenant-" + std::to_string(t),
                                   /*want_data=*/true));
        if (!reply.ok() ||
            reply.value().status != service::Status::kOk) {
          ++failures;
          continue;
        }
        std::map<std::string, std::vector<double>> got;
        for (const auto& array : reply.value().arrays) {
          got[array.name] = array.data;
        }
        if (got != expected[which]) ++mismatches;
      }
    });
  }
  for (auto& c : clients) c.join();
  EXPECT_EQ(failures, 0);
  EXPECT_EQ(mismatches, 0);

  const auto counters = server.value()->counters();
  EXPECT_EQ(counters.accepted,
            static_cast<std::uint64_t>(kThreads * kRounds));
  EXPECT_EQ(counters.completed, counters.accepted);
  server.value()->stop();
}

}  // namespace
