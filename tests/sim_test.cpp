// Tests for the machine simulator: determinism, conservation laws, closed-
// form checks against hand-computable schedules, and the qualitative
// relations the experiments rely on (coalesced beats nested, GSS dispatches
// logarithmically, serialized dispatch hurts).
#include <gtest/gtest.h>

#include <algorithm>

#include "index/coalesced_space.hpp"
#include "sim/machine.hpp"
#include "sim/workload.hpp"

namespace coalesce::sim {
namespace {

index::CoalescedSpace make_space(std::vector<i64> extents) {
  return index::CoalescedSpace::create(std::move(extents)).value();
}

CostModel zero_costs() {
  CostModel costs;
  costs.dispatch = 0;
  costs.fork = 0;
  costs.barrier = 0;
  costs.loop_overhead = 0;
  costs.recovery_division = 0;
  costs.recovery_increment = 0;
  return costs;
}

// ---- workload ----------------------------------------------------------------

TEST(Workload, ConstantTable) {
  const Workload w = Workload::constant(5, 7);
  EXPECT_EQ(w.iterations(), 5);
  EXPECT_EQ(w.time(1), 7);
  EXPECT_EQ(w.time(5), 7);
  EXPECT_EQ(w.total_time(), 35);
}

TEST(Workload, TriangularProfile) {
  const Workload w = Workload::triangular(3, 3, 10);
  // Row i: j <= i costs 10, else 1.
  EXPECT_EQ(w.time(1), 10);  // (1,1)
  EXPECT_EQ(w.time(2), 1);   // (1,2)
  EXPECT_EQ(w.time(9), 10);  // (3,3)
  EXPECT_EQ(w.total_time(), 6 * 10 + 3 * 1);
}

TEST(Workload, FromModelDeterministic) {
  const Workload a = Workload::from_model(support::WorkModel::kUniformRange,
                                          100, 1, 9, 42);
  const Workload b = Workload::from_model(support::WorkModel::kUniformRange,
                                          100, 1, 9, 42);
  for (i64 j = 1; j <= 100; ++j) EXPECT_EQ(a.time(j), b.time(j));
}

// ---- conservation and determinism ----------------------------------------------

class SimSweep : public ::testing::TestWithParam<SimScheduleParams> {};

TEST_P(SimSweep, BusyCyclesEqualUsefulWork) {
  const auto space = make_space({8, 9});
  const Workload work = Workload::from_model(
      support::WorkModel::kUniformRange, space.total(), 5, 50, 7);
  CostModel costs;
  const SimResult r =
      simulate_coalesced_dynamic(space, 4, GetParam(), costs, work);
  i64 busy = 0;
  for (i64 b : r.busy) busy += b;
  EXPECT_EQ(busy, work.total_time());
  EXPECT_EQ(r.work_total, work.total_time());
  EXPECT_EQ(r.iterations, space.total());
}

TEST_P(SimSweep, DeterministicAcrossRuns) {
  const auto space = make_space({10, 10});
  const Workload work = Workload::from_model(
      support::WorkModel::kExponential, space.total(), 20, 0, 99);
  CostModel costs;
  costs.serialized_dispatch = true;
  const SimResult r1 =
      simulate_coalesced_dynamic(space, 8, GetParam(), costs, work);
  const SimResult r2 =
      simulate_coalesced_dynamic(space, 8, GetParam(), costs, work);
  EXPECT_EQ(r1.completion, r2.completion);
  EXPECT_EQ(r1.dispatch_ops, r2.dispatch_ops);
  EXPECT_EQ(r1.busy, r2.busy);
}

TEST_P(SimSweep, CompletionAtLeastCriticalPath) {
  const auto space = make_space({16, 4});
  const Workload work = Workload::constant(space.total(), 10);
  CostModel costs;
  const SimResult r =
      simulate_coalesced_dynamic(space, 4, GetParam(), costs, work);
  // Lower bound: work/P plus fork and barrier.
  EXPECT_GE(r.completion,
            costs.fork + work.total_time() / 4 + costs.barrier);
}

INSTANTIATE_TEST_SUITE_P(
    Schedules, SimSweep,
    ::testing::Values(SimScheduleParams{SimSchedule::kSelf, 1},
                      SimScheduleParams{SimSchedule::kChunked, 8},
                      SimScheduleParams{SimSchedule::kGuided, 1},
                      SimScheduleParams{SimSchedule::kTrapezoid, 1}),
    [](const ::testing::TestParamInfo<SimScheduleParams>& info) {
      switch (info.param.kind) {
        case SimSchedule::kSelf: return std::string("self");
        case SimSchedule::kChunked: return std::string("chunked");
        case SimSchedule::kGuided: return std::string("guided");
        case SimSchedule::kTrapezoid: return std::string("trapezoid");
      }
      return std::string("x");
    });

// ---- closed-form checks -----------------------------------------------------------

TEST(SimClosedForm, SingleProcessorUnitSelfSchedule) {
  // P=1: completion = fork + N*(sigma + decode + body + loop) + barrier.
  const auto space = make_space({4, 5});
  const Workload work = Workload::constant(20, 10);
  CostModel costs;
  costs.dispatch = 3;
  costs.fork = 100;
  costs.barrier = 50;
  costs.loop_overhead = 2;
  costs.recovery_division = 4;
  costs.recovery_increment = 1;
  const SimResult r = simulate_coalesced_dynamic(
      space, 1, {SimSchedule::kSelf, 1}, costs, work);
  const i64 decode = 4 * static_cast<i64>(space.divisions_per_decode_paper());
  const i64 per_iter = 3 + decode + 10 + 2;  // dispatch + decode + body + loop
  EXPECT_EQ(r.completion, 100 + 20 * per_iter + 50);
  EXPECT_EQ(r.dispatch_ops, 20u);
}

TEST(SimClosedForm, StaticBlockBalancedUniform) {
  // 40 iterations, 4 procs, body 10: each block 10 iters.
  const auto space = make_space({40});
  const Workload work = Workload::constant(40, 10);
  CostModel costs;
  costs.fork = 100;
  costs.barrier = 50;
  costs.loop_overhead = 2;
  costs.recovery_division = 0;
  costs.recovery_increment = 0;
  const SimResult r = simulate_coalesced_static(space, 4, costs, work);
  EXPECT_EQ(r.completion, 100 + 10 * 12 + 50);
  EXPECT_EQ(r.dispatch_ops, 0u);
  EXPECT_DOUBLE_EQ(r.imbalance(), 1.0);
}

TEST(SimClosedForm, MulticounterDispatchOpsMatchLevelInstances) {
  // 2-deep N1 x N2 nest: inner counter touched N1*N2 times, outer N1 times.
  const auto space = make_space({6, 7});
  const Workload work = Workload::constant(42, 5);
  CostModel costs;
  const SimResult r = simulate_nested_multicounter(space, 4, costs, work);
  EXPECT_EQ(r.dispatch_ops, 42u + 6u);
  // 3-deep: N1*N2*N3 + N1*N2 + N1.
  const auto space3 = make_space({3, 4, 5});
  const Workload work3 = Workload::constant(60, 5);
  const SimResult r3 = simulate_nested_multicounter(space3, 4, costs, work3);
  EXPECT_EQ(r3.dispatch_ops, 60u + 12u + 3u);
}

TEST(SimClosedForm, ForkJoinInstancesEqualOuterProduct) {
  const auto space = make_space({3, 4, 5});
  const Workload work = Workload::constant(60, 5);
  CostModel costs;
  const SimResult r = simulate_nested_forkjoin(
      space, 4, {SimSchedule::kSelf, 1}, costs, work);
  EXPECT_EQ(r.fork_joins, 12u);  // 3 * 4 inner-loop instances
  // Coalesced pays fork+barrier once.
  const SimResult c = simulate_coalesced_dynamic(
      space, 4, {SimSchedule::kSelf, 1}, costs, work);
  EXPECT_EQ(c.fork_joins, 1u);
}

TEST(SimClosedForm, NestedStaticOuterUtilizationDropsWhenPNotDividing) {
  // N1 = 10 rows of equal work, P = 4: one processor gets 3 rows while
  // another gets 2 -> imbalance 3/2.5 = 1.2. Coalesced static over 100
  // iterations balances perfectly.
  const auto space = make_space({10, 10});
  const Workload work = Workload::constant(100, 10);
  const CostModel costs = zero_costs();
  const SimResult nested =
      simulate_nested_static_outer(space, 4, costs, work);
  const SimResult coalesced =
      simulate_coalesced_static(space, 4, costs, work);
  EXPECT_DOUBLE_EQ(nested.imbalance(), 1.2);
  EXPECT_DOUBLE_EQ(coalesced.imbalance(), 1.0);
  EXPECT_LT(coalesced.completion, nested.completion);
  EXPECT_GT(coalesced.utilization(), nested.utilization());
}

TEST(SimClosedForm, SerialTimeFormula) {
  const Workload work = Workload::constant(10, 7);
  CostModel costs;
  costs.loop_overhead = 2;
  EXPECT_EQ(serial_time(work, costs), 10 * 7 + 10 * 2);
}

// ---- qualitative relations ----------------------------------------------------------

TEST(SimRelations, GuidedDispatchesFarFewerChunksThanSelf) {
  const auto space = make_space({100, 100});
  const Workload work = Workload::constant(space.total(), 10);
  CostModel costs;
  const SimResult self = simulate_coalesced_dynamic(
      space, 16, {SimSchedule::kSelf, 1}, costs, work);
  const SimResult gss = simulate_coalesced_dynamic(
      space, 16, {SimSchedule::kGuided, 1}, costs, work);
  EXPECT_EQ(self.dispatch_ops, 10000u);
  EXPECT_LT(gss.dispatch_ops, 300u);
  EXPECT_LE(gss.completion, self.completion);
}

TEST(SimRelations, CoalescedBeatsMulticounterUnderDispatchCost) {
  const auto space = make_space({32, 32});
  const Workload work = Workload::constant(space.total(), 20);
  CostModel costs;
  costs.dispatch = 20;
  costs.recovery_division = 1;  // recovery much cheaper than dispatch
  const SimResult coal = simulate_coalesced_dynamic(
      space, 8, {SimSchedule::kChunked, 8}, costs, work);
  const SimResult nested =
      simulate_nested_multicounter(space, 8, costs, work);
  EXPECT_LT(coal.completion, nested.completion);
  EXPECT_LT(coal.dispatch_ops, nested.dispatch_ops);
}

TEST(SimRelations, CoalescedBeatsForkJoinNest) {
  const auto space = make_space({64, 16});
  const Workload work = Workload::constant(space.total(), 10);
  CostModel costs;  // default fork 100 / barrier 50 punish 64 instances
  const SimResult coal = simulate_coalesced_dynamic(
      space, 8, {SimSchedule::kGuided, 1}, costs, work);
  const SimResult nested = simulate_nested_forkjoin(
      space, 8, {SimSchedule::kGuided, 1}, costs, work);
  EXPECT_LT(coal.completion, nested.completion);
}

TEST(SimRelations, SerializedDispatchSlowsSelfScheduling) {
  const auto space = make_space({64, 8});
  const Workload work = Workload::constant(space.total(), 5);
  CostModel combining;
  combining.dispatch = 10;
  CostModel serialized = combining;
  serialized.serialized_dispatch = true;
  const SimResult fast = simulate_coalesced_dynamic(
      space, 16, {SimSchedule::kSelf, 1}, combining, work);
  const SimResult slow = simulate_coalesced_dynamic(
      space, 16, {SimSchedule::kSelf, 1}, serialized, work);
  EXPECT_GT(slow.completion, fast.completion);
}

TEST(SimRelations, SpeedupGrowsWithProcessorsThenSaturates) {
  const auto space = make_space({40, 25});
  const Workload work = Workload::constant(space.total(), 50);
  CostModel costs;
  double prev = 0.0;
  for (std::size_t p : {1u, 2u, 4u, 8u, 16u}) {
    const SimResult r = simulate_coalesced_dynamic(
        space, p, {SimSchedule::kGuided, 1}, costs, work);
    const double s = r.speedup(costs);
    EXPECT_GT(s, prev * 0.999);  // monotone up to modeling noise
    prev = s;
  }
  EXPECT_GT(prev, 8.0);  // 16 processors achieve substantial speedup
}

TEST(SimRelations, GssBalancesIncreasingWorkBetterThanCoarseChunks) {
  // Increasing iteration times: GSS's shrinking chunks land the heavy tail
  // in small pieces, while coarse fixed chunks strand it on one processor.
  const auto space = make_space({1000});
  const Workload work = Workload::from_model(support::WorkModel::kIncreasing,
                                             1000, 2, 200, 3);
  CostModel costs;
  const SimResult coarse = simulate_coalesced_dynamic(
      space, 8, {SimSchedule::kChunked, 250}, costs, work);
  const SimResult gss = simulate_coalesced_dynamic(
      space, 8, {SimSchedule::kGuided, 1}, costs, work);
  EXPECT_LT(gss.completion, coarse.completion);

  // Against well-tuned N/P chunking GSS is never meaningfully worse (its
  // first dispatch IS an N/P chunk), and pays far fewer dispatches than
  // unit self-scheduling for the same balance.
  const SimResult tuned = simulate_coalesced_dynamic(
      space, 8, {SimSchedule::kChunked, 125}, costs, work);
  EXPECT_LE(gss.completion, tuned.completion + work.total_time() / 100);
}

TEST(SimLocality, RowSwitchChargesMatchGeometry) {
  // One processor, chunk = row length: exactly one row switch per chunk.
  const auto space = make_space({8, 16});
  const Workload work = Workload::constant(space.total(), 10);
  CostModel costs = zero_costs();
  costs.row_switch = 7;
  const SimResult per_row = simulate_coalesced_dynamic(
      space, 1, {SimSchedule::kChunked, 16}, costs, work);
  CostModel free_costs = zero_costs();
  const SimResult baseline = simulate_coalesced_dynamic(
      space, 1, {SimSchedule::kChunked, 16}, free_costs, work);
  EXPECT_EQ(per_row.completion - baseline.completion, 8 * 7);

  // Unit chunks: one switch per iteration.
  const SimResult unit = simulate_coalesced_dynamic(
      space, 1, {SimSchedule::kSelf, 1}, costs, work);
  const SimResult unit_free = simulate_coalesced_dynamic(
      space, 1, {SimSchedule::kSelf, 1}, free_costs, work);
  EXPECT_EQ(unit.completion - unit_free.completion, 128 * 7);

  // A chunk spanning two rows: two switches (entry + one crossing).
  const SimResult span = simulate_coalesced_dynamic(
      space, 1, {SimSchedule::kChunked, 32}, costs, work);
  const SimResult span_free = simulate_coalesced_dynamic(
      space, 1, {SimSchedule::kChunked, 32}, free_costs, work);
  EXPECT_EQ(span.completion - span_free.completion, 4 * 2 * 7);
}

TEST(SimTrace, EventsCoverEveryIterationExactlyOnce) {
  const auto space = make_space({12, 8});
  const Workload work = Workload::from_model(
      support::WorkModel::kUniformRange, space.total(), 5, 40, 9);
  CostModel costs;
  costs.record_trace = true;
  const SimResult r = simulate_coalesced_dynamic(
      space, 4, {SimSchedule::kGuided, 1}, costs, work);
  ASSERT_EQ(r.trace.size(), r.chunks);
  std::vector<int> hits(static_cast<std::size_t>(space.total()), 0);
  for (const ChunkEvent& event : r.trace) {
    EXPECT_LT(event.proc, 4u);
    EXPECT_LE(event.start, event.end);
    EXPECT_LE(event.end, r.completion);
    for (i64 j = event.chunk.first; j < event.chunk.last; ++j) {
      ++hits[static_cast<std::size_t>(j - 1)];
    }
  }
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(SimTrace, EventsOnOneProcessorDoNotOverlap) {
  const auto space = make_space({64});
  const Workload work = Workload::constant(64, 25);
  CostModel costs;
  costs.record_trace = true;
  const SimResult r = simulate_coalesced_dynamic(
      space, 3, {SimSchedule::kChunked, 4}, costs, work);
  std::vector<i64> last_end(3, 0);
  for (const ChunkEvent& event : r.trace) {
    EXPECT_GE(event.start, last_end[event.proc]);
    last_end[event.proc] = event.end;
  }
}

TEST(SimTrace, OffByDefault) {
  const auto space = make_space({16});
  const Workload work = Workload::constant(16, 5);
  CostModel costs;
  const SimResult r = simulate_coalesced_dynamic(
      space, 2, {SimSchedule::kSelf, 1}, costs, work);
  EXPECT_TRUE(r.trace.empty());
}

TEST(SimTrace, GanttRendersOneRowPerProcessor) {
  const auto space = make_space({32});
  const Workload work = Workload::constant(32, 30);
  CostModel costs;
  costs.record_trace = true;
  const SimResult r = simulate_coalesced_dynamic(
      space, 4, {SimSchedule::kChunked, 8}, costs, work);
  const std::string gantt = render_gantt(r, 10);
  EXPECT_EQ(std::count(gantt.begin(), gantt.end(), '\n'), 4);
  EXPECT_NE(gantt.find('#'), std::string::npos);
  EXPECT_NE(gantt.find("P0"), std::string::npos);
  EXPECT_NE(gantt.find("P3"), std::string::npos);
}

TEST(SimRelations, UtilizationBounded) {
  const auto space = make_space({13, 17});
  const Workload work = Workload::from_model(
      support::WorkModel::kBimodal, space.total(), 10, 200, 5);
  CostModel costs;
  for (auto kind : {SimSchedule::kSelf, SimSchedule::kGuided}) {
    const SimResult r =
        simulate_coalesced_dynamic(space, 4, {kind, 1}, costs, work);
    EXPECT_GT(r.utilization(), 0.0);
    EXPECT_LE(r.utilization(), 1.0);
  }
}

}  // namespace
}  // namespace coalesce::sim
