// Unit and property tests for the support substrate: exact integer math,
// deterministic RNG, statistics, strings, and table rendering.
#include <gtest/gtest.h>

#include <cstdint>
#include <limits>

#include "support/int_math.hpp"
#include "support/magic_div.hpp"
#include "support/rng.hpp"
#include "support/stats.hpp"
#include "support/strings.hpp"
#include "support/table.hpp"

namespace coalesce::support {
namespace {

// ---- floor/ceil/mod ---------------------------------------------------------

TEST(IntMath, FloorDivMatchesMathematicalFloor) {
  EXPECT_EQ(floor_div(7, 2), 3);
  EXPECT_EQ(floor_div(-7, 2), -4);
  EXPECT_EQ(floor_div(7, -2), -4);
  EXPECT_EQ(floor_div(-7, -2), 3);
  EXPECT_EQ(floor_div(6, 3), 2);
  EXPECT_EQ(floor_div(-6, 3), -2);
  EXPECT_EQ(floor_div(0, 5), 0);
}

TEST(IntMath, CeilDivMatchesMathematicalCeiling) {
  EXPECT_EQ(ceil_div(7, 2), 4);
  EXPECT_EQ(ceil_div(-7, 2), -3);
  EXPECT_EQ(ceil_div(7, -2), -3);
  EXPECT_EQ(ceil_div(-7, -2), 4);
  EXPECT_EQ(ceil_div(6, 3), 2);
  EXPECT_EQ(ceil_div(1, 100), 1);
}

TEST(IntMath, ModFloorHasSignOfDivisor) {
  EXPECT_EQ(mod_floor(7, 3), 1);
  EXPECT_EQ(mod_floor(-7, 3), 2);
  EXPECT_EQ(mod_floor(7, -3), -2);
  EXPECT_EQ(mod_floor(-7, -3), -1);
  EXPECT_EQ(mod_floor(9, 3), 0);
}

// Property: a == floor_div(a,b)*b + mod_floor(a,b) for all sign combos.
class DivModProperty : public ::testing::TestWithParam<int> {};

TEST_P(DivModProperty, EuclideanIdentityHoldsOnRandomPairs) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  for (int trial = 0; trial < 500; ++trial) {
    const i64 a = rng.uniform_int(-1000000, 1000000);
    i64 b = rng.uniform_int(-1000, 1000);
    if (b == 0) b = 7;
    EXPECT_EQ(a, floor_div(a, b) * b + mod_floor(a, b))
        << "a=" << a << " b=" << b;
    // ceil(a/b) == -floor(-a/b)
    EXPECT_EQ(ceil_div(a, b), -floor_div(-a, b)) << "a=" << a << " b=" << b;
    // 0 <= |mod| < |b| with sign of b
    const i64 m = mod_floor(a, b);
    if (b > 0) {
      EXPECT_GE(m, 0);
      EXPECT_LT(m, b);
    } else {
      EXPECT_LE(m, 0);
      EXPECT_GT(m, b);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DivModProperty, ::testing::Values(1, 2, 3, 4));

// ---- gcd / lcm / ext_gcd ----------------------------------------------------

TEST(IntMath, GcdBasics) {
  EXPECT_EQ(gcd(12, 18), 6);
  EXPECT_EQ(gcd(-12, 18), 6);
  EXPECT_EQ(gcd(12, -18), 6);
  EXPECT_EQ(gcd(0, 5), 5);
  EXPECT_EQ(gcd(5, 0), 5);
  EXPECT_EQ(gcd(0, 0), 0);
  EXPECT_EQ(gcd(17, 13), 1);
}

TEST(IntMath, LcmBasics) {
  EXPECT_EQ(lcm(4, 6), 12);
  EXPECT_EQ(lcm(0, 6), 0);
  EXPECT_EQ(lcm(-4, 6), 12);
  EXPECT_EQ(lcm(7, 7), 7);
}

TEST(IntMath, ExtGcdProducesBezoutCoefficients) {
  Rng rng(99);
  for (int trial = 0; trial < 200; ++trial) {
    const i64 a = rng.uniform_int(-100000, 100000);
    const i64 b = rng.uniform_int(-100000, 100000);
    const ExtGcd r = ext_gcd(a, b);
    EXPECT_EQ(r.g, gcd(a, b));
    EXPECT_EQ(a * r.x + b * r.y, r.g) << "a=" << a << " b=" << b;
  }
}

// ---- checked arithmetic -----------------------------------------------------

TEST(IntMath, CheckedMulDetectsOverflow) {
  const i64 big = std::numeric_limits<i64>::max();
  EXPECT_FALSE(checked_mul(big, 2).has_value());
  EXPECT_FALSE(checked_mul(big / 2 + 1, 2).has_value());
  EXPECT_EQ(checked_mul(1 << 20, 1 << 20).value(), i64{1} << 40);
  EXPECT_EQ(checked_mul(-3, 7).value(), -21);
}

TEST(IntMath, CheckedAddDetectsOverflow) {
  const i64 big = std::numeric_limits<i64>::max();
  EXPECT_FALSE(checked_add(big, 1).has_value());
  EXPECT_EQ(checked_add(big, -1).value(), big - 1);
}

TEST(IntMath, CheckedSubDetectsOverflow) {
  const i64 big = std::numeric_limits<i64>::max();
  const i64 small = std::numeric_limits<i64>::min();
  EXPECT_FALSE(checked_sub(small, 1).has_value());
  EXPECT_FALSE(checked_sub(0, small).has_value());  // |INT64_MIN| unrepresentable
  EXPECT_FALSE(checked_sub(big, -1).has_value());
  EXPECT_EQ(checked_sub(big, big).value(), 0);
  EXPECT_EQ(checked_sub(small, small).value(), 0);
  EXPECT_EQ(checked_sub(-5, 7).value(), -12);
}

TEST(IntMath, CheckedProductEmptyIsOne) {
  EXPECT_EQ(checked_product({}).value(), 1);
}

TEST(IntMath, CheckedProductOverflow) {
  std::vector<i64> huge(10, 1'000'000'000);
  EXPECT_FALSE(checked_product(huge).has_value());
  std::vector<i64> ok{2, 3, 4};
  EXPECT_EQ(checked_product(ok).value(), 24);
}

// ---- trip counts ------------------------------------------------------------

TEST(IntMath, TripCount) {
  EXPECT_EQ(trip_count(1, 10, 1), 10);
  EXPECT_EQ(trip_count(1, 10, 3), 4);   // 1,4,7,10
  EXPECT_EQ(trip_count(1, 9, 3), 3);    // 1,4,7
  EXPECT_EQ(trip_count(5, 4, 1), 0);    // empty
  EXPECT_EQ(trip_count(-3, 3, 2), 4);   // -3,-1,1,3
  EXPECT_EQ(trip_count(7, 7, 5), 1);
}

// ---- mixed radix ------------------------------------------------------------

TEST(IntMath, MixedRadixDecodeKnownValues) {
  const std::vector<i64> radices{4, 3};
  std::vector<i64> digits(2);
  mixed_radix_decode(0, radices, digits);
  EXPECT_EQ(digits, (std::vector<i64>{0, 0}));
  mixed_radix_decode(5, radices, digits);
  EXPECT_EQ(digits, (std::vector<i64>{1, 2}));
  mixed_radix_decode(11, radices, digits);
  EXPECT_EQ(digits, (std::vector<i64>{3, 2}));
}

TEST(IntMath, MixedRadixRoundTripExhaustive) {
  const std::vector<i64> radices{3, 1, 4, 2};
  std::vector<i64> digits(radices.size());
  for (i64 v = 0; v < 3 * 1 * 4 * 2; ++v) {
    mixed_radix_decode(v, radices, digits);
    EXPECT_EQ(mixed_radix_encode(digits, radices), v);
  }
}

TEST(IntMath, SuffixProducts) {
  const std::vector<i64> radices{4, 3, 5};
  const auto suffix = suffix_products(radices);
  ASSERT_EQ(suffix.size(), 4u);
  EXPECT_EQ(suffix[0], 60);
  EXPECT_EQ(suffix[1], 15);
  EXPECT_EQ(suffix[2], 5);
  EXPECT_EQ(suffix[3], 1);
}

// ---- rng --------------------------------------------------------------------

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += a.next() == b.next();
  EXPECT_LT(same, 5);
}

TEST(Rng, UniformIntStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 2000; ++i) {
    const i64 v = rng.uniform_int(-3, 11);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 11);
  }
}

TEST(Rng, UniformIntSingletonRange) {
  Rng rng(7);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(rng.uniform_int(5, 5), 5);
}

TEST(Rng, Uniform01InHalfOpenInterval) {
  Rng rng(3);
  for (int i = 0; i < 2000; ++i) {
    const double v = rng.uniform01();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, UniformIntCoversRange) {
  Rng rng(11);
  std::vector<int> seen(5, 0);
  for (int i = 0; i < 1000; ++i) ++seen[rng.uniform_int(0, 4)];
  for (int count : seen) EXPECT_GT(count, 100);  // roughly uniform
}

TEST(Rng, ExponentialHasApproximateMean) {
  Rng rng(5);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(10.0);
  EXPECT_NEAR(sum / n, 10.0, 0.5);
}

TEST(Rng, NormalHasApproximateMoments) {
  Rng rng(6);
  Accumulator acc;
  for (int i = 0; i < 20000; ++i) acc.add(rng.normal(5.0, 2.0));
  EXPECT_NEAR(acc.mean(), 5.0, 0.1);
  EXPECT_NEAR(acc.stddev(), 2.0, 0.1);
}

TEST(Rng, SplitStreamsAreIndependent) {
  Rng a(42);
  Rng b = a.split();
  int same = 0;
  for (int i = 0; i < 100; ++i) same += a.next() == b.next();
  EXPECT_LT(same, 5);
}

TEST(Rng, ShufflePreservesMultiset) {
  Rng rng(8);
  std::vector<int> xs{1, 2, 3, 4, 5, 6, 7};
  auto copy = xs;
  rng.shuffle(std::span<int>(copy));
  std::sort(copy.begin(), copy.end());
  EXPECT_EQ(copy, xs);
}

// ---- work synthesis ---------------------------------------------------------

TEST(WorkSynthesis, ConstantModel) {
  Rng rng(1);
  const auto work = synthesize_work(WorkModel::kUniformConstant, 10, 7, 0, rng);
  ASSERT_EQ(work.size(), 10u);
  for (auto t : work) EXPECT_EQ(t, 7);
}

TEST(WorkSynthesis, UniformRangeStaysInBounds) {
  Rng rng(2);
  const auto work = synthesize_work(WorkModel::kUniformRange, 500, 3, 9, rng);
  for (auto t : work) {
    EXPECT_GE(t, 3);
    EXPECT_LE(t, 9);
  }
}

TEST(WorkSynthesis, DecreasingIsMonotone) {
  Rng rng(3);
  const auto work = synthesize_work(WorkModel::kDecreasing, 100, 50, 5, rng);
  for (std::size_t i = 1; i < work.size(); ++i) {
    EXPECT_LE(work[i], work[i - 1]);
  }
  EXPECT_EQ(work.front(), 50);
  EXPECT_EQ(work.back(), 5);
}

TEST(WorkSynthesis, IncreasingIsMonotone) {
  Rng rng(4);
  const auto work = synthesize_work(WorkModel::kIncreasing, 100, 5, 50, rng);
  for (std::size_t i = 1; i < work.size(); ++i) {
    EXPECT_GE(work[i], work[i - 1]);
  }
}

TEST(WorkSynthesis, AllValuesAtLeastOne) {
  Rng rng(5);
  for (auto model : {WorkModel::kExponential, WorkModel::kBimodal,
                     WorkModel::kUniformRange}) {
    const auto work = synthesize_work(model, 300, 1, 2, rng);
    for (auto t : work) EXPECT_GE(t, 1) << to_string(model);
  }
}

// ---- stats ------------------------------------------------------------------

TEST(Stats, AccumulatorBasics) {
  Accumulator acc;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) acc.add(x);
  EXPECT_EQ(acc.count(), 8u);
  EXPECT_DOUBLE_EQ(acc.mean(), 5.0);
  EXPECT_DOUBLE_EQ(acc.min(), 2.0);
  EXPECT_DOUBLE_EQ(acc.max(), 9.0);
  EXPECT_NEAR(acc.stddev(), 2.138, 1e-3);  // sample stddev
  EXPECT_DOUBLE_EQ(acc.sum(), 40.0);
}

TEST(Stats, VarianceOfSingletonIsZero) {
  Accumulator acc;
  acc.add(3.0);
  EXPECT_DOUBLE_EQ(acc.variance(), 0.0);
}

TEST(Stats, PercentileNearestRank) {
  const std::vector<double> xs{15, 20, 35, 40, 50};
  EXPECT_DOUBLE_EQ(percentile(xs, 30), 20);
  EXPECT_DOUBLE_EQ(percentile(xs, 40), 20);
  EXPECT_DOUBLE_EQ(percentile(xs, 50), 35);
  EXPECT_DOUBLE_EQ(percentile(xs, 100), 50);
  EXPECT_DOUBLE_EQ(percentile(xs, 0), 15);
}

TEST(Stats, ImbalanceRatioBalanced) {
  const std::vector<double> xs{5, 5, 5, 5};
  EXPECT_DOUBLE_EQ(imbalance_ratio(xs), 1.0);
}

TEST(Stats, ImbalanceRatioSkewed) {
  const std::vector<double> xs{10, 0, 0, 0};
  EXPECT_DOUBLE_EQ(imbalance_ratio(xs), 4.0);
}

TEST(Stats, HistogramBinsAndClamping) {
  Histogram h(0.0, 10.0, 5);
  h.add(0.5);
  h.add(9.9);
  h.add(-100.0);  // clamps to first bin
  h.add(100.0);   // clamps to last bin
  const auto counts = h.counts();
  EXPECT_EQ(counts[0], 2u);
  EXPECT_EQ(counts[4], 2u);
  EXPECT_FALSE(h.render().empty());
}

// ---- strings ----------------------------------------------------------------

TEST(Strings, Join) {
  const std::vector<std::string> parts{"a", "b", "c"};
  EXPECT_EQ(join(parts, ", "), "a, b, c");
  EXPECT_EQ(join({}, ", "), "");
}

TEST(Strings, Format) {
  EXPECT_EQ(format("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(format("%.2f", 1.5), "1.50");
}

TEST(Strings, IndexName) {
  EXPECT_EQ(index_name(0), "i0");
  EXPECT_EQ(index_name(12), "i12");
}

TEST(Strings, Repeat) {
  EXPECT_EQ(repeat("ab", 3), "ababab");
  EXPECT_EQ(repeat("x", 0), "");
}

TEST(Strings, IndentAddsPadding) {
  EXPECT_EQ(indent("a\nb", 2), "  a\n  b");
  EXPECT_EQ(indent("a\n\nb", 2), "  a\n\n  b");  // blank lines not padded
}

TEST(Strings, Split) {
  EXPECT_EQ(split("a,b,,c", ','),
            (std::vector<std::string>{"a", "b", "", "c"}));
  EXPECT_EQ(split("", ','), (std::vector<std::string>{""}));
}

TEST(Strings, StartsWith) {
  EXPECT_TRUE(starts_with("foobar", "foo"));
  EXPECT_FALSE(starts_with("fo", "foo"));
}

// ---- table ------------------------------------------------------------------

TEST(Table, RendersAlignedColumns) {
  Table t("demo");
  t.header({"name", "value"});
  t.cell("alpha").cell(std::int64_t{42}).end_row();
  t.cell("b").cell(3.14159, 2).end_row();
  const std::string out = t.render();
  EXPECT_NE(out.find("== demo =="), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("3.14"), std::string::npos);
  EXPECT_EQ(t.row_count(), 2u);
  // Every data line has the same width.
  const auto lines = split(out, '\n');
  std::size_t width = 0;
  for (const auto& line : lines) {
    if (line.empty() || line[0] != '|') continue;
    if (width == 0) width = line.size();
    EXPECT_EQ(line.size(), width);
  }
}

TEST(Table, RowVectorApi) {
  Table t("t");
  t.header({"a"});
  t.row({"1"});
  t.row({"2"});
  EXPECT_EQ(t.row_count(), 2u);
}

// ---- magic-number division --------------------------------------------------

namespace {

/// Checks divide/remainder against the hardware result at the edge
/// dividends of `d` plus the extremes of the valid range [0, 2^63).
void check_magic_edges(i64 d) {
  const MagicDiv magic(d);
  EXPECT_EQ(magic.divisor(), d);
  const u64 ud = static_cast<u64>(d);
  const u64 max_dividend = (u64{1} << 63) - 1;
  const u64 dividends[] = {0,
                           1,
                           ud - 1,
                           ud,
                           ud + 1,
                           2 * ud,
                           2 * ud + 1,
                           max_dividend - 1,
                           max_dividend};
  for (const u64 n : dividends) {
    if (n > max_dividend) continue;
    EXPECT_EQ(magic.divide(n), n / ud) << "n=" << n << " d=" << d;
    EXPECT_EQ(magic.remainder(n), n % ud) << "n=" << n << " d=" << d;
  }
}

}  // namespace

TEST(MagicDiv, ExactAtEdgeCasesForRepresentativeDivisors) {
  for (const i64 d : {i64{1}, i64{2}, i64{3}, i64{5}, i64{7}, i64{10},
                      i64{641}, i64{1} << 20, (i64{1} << 20) + 1,
                      (i64{1} << 62) - 1, i64{1} << 62,
                      std::numeric_limits<i64>::max()}) {
    check_magic_edges(d);
  }
}

TEST(MagicDiv, PowerOfTwoDivisorsAreExact) {
  for (unsigned bit = 0; bit < 63; ++bit) {
    check_magic_edges(i64{1} << bit);
  }
}

TEST(MagicDiv, RandomizedAgreementWithHardwareDivision) {
  Rng rng(20260807);
  const i64 max_i64 = std::numeric_limits<i64>::max();
  for (int trial = 0; trial < 20000; ++trial) {
    // Mix small divisors (the common suffix-product case) with huge ones.
    const i64 d = (trial % 2 == 0) ? rng.uniform_int(1, 1 << 20)
                                   : rng.uniform_int(1, max_i64);
    const u64 n = static_cast<u64>(rng.uniform_int(0, max_i64));
    const MagicDiv magic(d);
    ASSERT_EQ(magic.divide(n), n / static_cast<u64>(d))
        << "n=" << n << " d=" << d;
    ASSERT_EQ(magic.remainder(n), n % static_cast<u64>(d))
        << "n=" << n << " d=" << d;
  }
}

}  // namespace
}  // namespace coalesce::support
