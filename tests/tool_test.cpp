// End-to-end tests of the coalescec driver binary: real process, real
// files, asserting on stdout/stderr and exit codes. The binary path is
// injected by CMake as COALESCEC_PATH.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

namespace {

#ifndef COALESCEC_PATH
#error "COALESCEC_PATH must be defined by the build"
#endif

struct RunResult {
  int exit_code = -1;
  std::string output;  ///< stdout + stderr, interleaved
};

RunResult run_tool(const std::string& args, const std::string& source) {
  static int counter = 0;
  const std::string dir = ::testing::TempDir();
  // The pid keeps names unique when ctest runs each discovered test as its
  // own concurrent process against the same temp directory.
  const std::string tag =
      std::to_string(::getpid()) + "_" + std::to_string(counter);
  const std::string in_path = dir + "/tool_in_" + tag + ".loop";
  const std::string out_path = dir + "/tool_out_" + tag + ".txt";
  ++counter;
  {
    std::ofstream out(in_path);
    out << source;
  }
  const std::string command = std::string(COALESCEC_PATH) + " " + args + " " +
                              in_path + " > " + out_path + " 2>&1";
  const int status = std::system(command.c_str());
  RunResult result;
  result.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  std::ifstream in(out_path);
  result.output = std::string(std::istreambuf_iterator<char>(in),
                              std::istreambuf_iterator<char>());
  return result;
}

constexpr const char* kMatmul = R"(
array A[4][3]; array B[3][5]; array C[4][5];
doall i = 1, 4 {
  doall j = 1, 5 {
    C[i][j] = 0;
    do k = 1, 3 {
      C[i][j] = C[i][j] + A[i][k] * B[k][j];
    }
  }
}
)";

constexpr const char* kTriangle = R"(
array OUT[8][8];
doall i = 1, 8 {
  doall j = 1, i {
    OUT[i][j] = i * 10 + j;
  }
}
)";

TEST(Coalescec, DefaultCoalescesAndEmitsIr) {
  const RunResult r = run_tool("--verify", kMatmul);
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("verified equivalent"), std::string::npos);
  EXPECT_NE(r.output.find("cdiv("), std::string::npos);
  EXPECT_NE(r.output.find("doall j0 = 1, 20"), std::string::npos);
}

TEST(Coalescec, MakePerfectSplitsMatmul) {
  const RunResult r = run_tool("--make-perfect --verify --stats", kMatmul);
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("roots=2"), std::string::npos);
  EXPECT_NE(r.output.find("verified equivalent"), std::string::npos);
}

TEST(Coalescec, GuardedHandlesTriangle) {
  const RunResult r = run_tool("--guarded --verify", kTriangle);
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("if (j <= i)"), std::string::npos);
  EXPECT_NE(r.output.find("doall j0 = 1, 64"), std::string::npos);
}

TEST(Coalescec, PlainCoalesceLeavesTriangleUntouched) {
  // coalesce_all silently skips bands it cannot fuse (non-constant bounds):
  // the triangle passes through unchanged; --guarded is the tool for it.
  const RunResult plain = run_tool("--verify", kTriangle);
  EXPECT_EQ(plain.exit_code, 0) << plain.output;
  EXPECT_EQ(plain.output.find("cdiv("), std::string::npos);
  EXPECT_NE(plain.output.find("doall j = 1, i"), std::string::npos);
}

TEST(Coalescec, EmitCProducesCompilableSource) {
  const RunResult r = run_tool("--emit=c-main", kMatmul);
  ASSERT_EQ(r.exit_code, 0) << r.output;
  // Compile the emitted C to prove it's valid.
  const std::string dir = ::testing::TempDir();
  const std::string c_path = dir + "/coalescec_emit.c";
  const std::string bin_path = dir + "/coalescec_emit.bin";
  {
    std::ofstream out(c_path);
    out << r.output;
  }
  EXPECT_EQ(std::system(("cc -std=c11 -o " + bin_path + " " + c_path +
                         " && " + bin_path + " > /dev/null")
                            .c_str()),
            0);
}

TEST(Coalescec, OpenMpEmission) {
  const RunResult r = run_tool("--emit=c --openmp", kMatmul);
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("#pragma omp parallel for"), std::string::npos);
  EXPECT_NE(r.output.find("private("), std::string::npos);
}

TEST(Coalescec, ReportPrintsDependencesAndReductions) {
  const RunResult r = run_tool("--report --no-coalesce", kMatmul);
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("parallelism report"), std::string::npos);
  EXPECT_NE(r.output.find("AS REDUCTION"), std::string::npos);
}

TEST(Coalescec, DotEmitsGraph) {
  const RunResult r = run_tool("--dot", kMatmul);
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_EQ(r.output.find("digraph dependences {"), 0u);
}

TEST(Coalescec, CollapseLevelsRespected) {
  const char* three_deep = R"(
array T[2][3][4];
doall a = 1, 2 {
  doall b = 1, 3 {
    doall c = 1, 4 {
      T[a][b][c] = a * 100 + b * 10 + c;
    }
  }
}
)";
  const RunResult r = run_tool("--collapse=2 --verify", three_deep);
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("doall j = 1, 6"), std::string::npos);
  EXPECT_NE(r.output.find("doall c = 1, 4"), std::string::npos);
}

TEST(Coalescec, ParseErrorsExitNonZeroWithLocation) {
  const RunResult r = run_tool("", "array A[3]; do i = 1 { A[i] = 1; }");
  EXPECT_NE(r.exit_code, 0);
  EXPECT_NE(r.output.find("parse error"), std::string::npos);
  EXPECT_NE(r.output.find("expected ','"), std::string::npos);
}

TEST(Coalescec, BadFlagShowsUsage) {
  const RunResult r = run_tool("--no-such-flag", kMatmul);
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.output.find("usage:"), std::string::npos);
}

TEST(Coalescec, MixedRadixRecoveryStyle) {
  const RunResult r = run_tool("--mixed-radix --verify", kMatmul);
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("mod("), std::string::npos);
  EXPECT_NE(r.output.find("verified equivalent"), std::string::npos);
}

TEST(Coalescec, ExpandScalarsPass) {
  const char* with_temp = R"(
array A[6]; array B[6]; scalar t;
doall i = 1, 6 {
  t = A[i];
  A[i] = B[i];
  B[i] = t;
}
)";
  const RunResult r = run_tool("--expand-scalars --verify", with_temp);
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("t_x"), std::string::npos);
  EXPECT_NE(r.output.find("verified equivalent"), std::string::npos);
}

TEST(Coalescec, TraceWritesChromeTraceJson) {
  const std::string trace_path = ::testing::TempDir() + "/tool_trace_" +
                                 std::to_string(::getpid()) + ".json";
  const RunResult r = run_tool(
      "--verify --trace=" + trace_path + " --trace-workers=2", kMatmul);
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("verified equivalent"), std::string::npos);
  EXPECT_NE(r.output.find("traced"), std::string::npos);

  std::ifstream in(trace_path);
  ASSERT_TRUE(in.good()) << "trace file not written: " << trace_path;
  const std::string json((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\""), std::string::npos);
  EXPECT_NE(json.find("worker 0"), std::string::npos);
  EXPECT_NE(json.find("worker 1"), std::string::npos);
  std::remove(trace_path.c_str());
}

// ---- lint / verify flags ----------------------------------------------------

constexpr const char* kRacyScalar = R"(
array A[8]; scalar s;
doall i = 1, 8 {
  s = s + A[i];
  A[i] = s;
}
)";

TEST(Coalescec, LintCleanNestExitsZero) {
  const RunResult r = run_tool("--lint", kMatmul);
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("no findings"), std::string::npos);
}

TEST(Coalescec, LintErrorExitsNonZeroWithLocation) {
  const RunResult r = run_tool("--lint", kRacyScalar);
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_NE(r.output.find("error:"), std::string::npos);
  EXPECT_NE(r.output.find("[unprivatized-scalar]"), std::string::npos);
  // Findings carry file:line:col anchors into the input file.
  EXPECT_NE(r.output.find(".loop:"), std::string::npos);
}

TEST(Coalescec, LintWarningAloneExitsZero) {
  const RunResult r = run_tool("--lint", kTriangle);
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("[nonrectangular-band]"), std::string::npos);
}

TEST(Coalescec, LintJsonFormat) {
  const RunResult r = run_tool("--lint --lint-format=json", kRacyScalar);
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_EQ(r.output.find('['), 0u);
  EXPECT_NE(r.output.find("\"rule\": \"unprivatized-scalar\""),
            std::string::npos);
}

TEST(Coalescec, LintSarifFormat) {
  const RunResult r = run_tool("--lint --lint-format=sarif", kRacyScalar);
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_NE(r.output.find("\"version\": \"2.1.0\""), std::string::npos);
  EXPECT_NE(r.output.find("unprivatized-scalar"), std::string::npos);
}

TEST(Coalescec, LintRejectsUnknownFormat) {
  const RunResult r = run_tool("--lint --lint-format=xml", kMatmul);
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.output.find("usage:"), std::string::npos);
}

TEST(Coalescec, VerifyIrAcceptsWellFormedInput) {
  const RunResult r = run_tool("--verify-ir --verify", kMatmul);
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("verified equivalent"), std::string::npos);
}

TEST(Coalescec, NoVerifyStillCoalesces) {
  const RunResult r = run_tool("--no-verify --verify", kMatmul);
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("verified equivalent"), std::string::npos);
}

TEST(Coalescec, TraceSummaryRendersWorkerGantt) {
  const std::string trace_path = ::testing::TempDir() + "/tool_trace_s_" +
                                 std::to_string(::getpid()) + ".json";
  const RunResult r = run_tool(
      "--trace=" + trace_path + " --trace-workers=2 --trace-summary",
      kMatmul);
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("W0"), std::string::npos);
  std::remove(trace_path.c_str());
}

}  // namespace
