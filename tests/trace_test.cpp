// Tests for the observability subsystem: recorder semantics, counter
// merging, exporter validity, and the cost of the disabled path.
#include <atomic>
#include <cctype>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <map>
#include <new>
#include <set>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "index/chunk.hpp"
#include "index/coalesced_space.hpp"
#include "runtime/dispatcher.hpp"
#include "runtime/launch.hpp"
#include "runtime/thread_pool.hpp"
#include "trace/counters.hpp"
#include "trace/event.hpp"
#include "trace/export.hpp"
#include "trace/recorder.hpp"

// ---- allocation counting ----------------------------------------------------
// Global operator new/delete overrides that tally every heap allocation in
// the test binary. Tests snapshot the counter around a code region to prove
// the region allocates nothing (the disabled-tracing fast path).

namespace {
std::atomic<std::uint64_t> g_allocations{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace coalesce::trace {
namespace {

using support::i64;

// ---- a minimal JSON syntax checker ------------------------------------------
// Enough of a recursive-descent parser to prove the exporter emits
// syntactically valid JSON and to count elements; no DOM is built.

class JsonChecker {
 public:
  explicit JsonChecker(std::string_view text) : text_(text) {}

  /// Parses one complete JSON value; true iff the whole input is consumed.
  bool valid() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == text_.size();
  }

  /// Elements seen in the array that followed `"key":` (last occurrence).
  [[nodiscard]] std::size_t array_size(std::string_view key) const {
    const auto it = array_sizes_.find(std::string(key));
    return it == array_sizes_.end() ? 0 : it->second;
  }

  [[nodiscard]] bool has_key(std::string_view key) const {
    return keys_.count(std::string(key)) > 0;
  }

 private:
  bool value() {
    if (pos_ >= text_.size()) return false;
    switch (text_[pos_]) {
      case '{': return object();
      case '[': return array(nullptr);
      case '"': return string(nullptr);
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }

  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') { ++pos_; return true; }
    while (true) {
      skip_ws();
      std::string key;
      if (!string(&key)) return false;
      keys_.insert(key);
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      skip_ws();
      if (peek() == '[') {
        std::size_t n = 0;
        if (!array(&n)) return false;
        array_sizes_[key] = n;
      } else if (!value()) {
        return false;
      }
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == '}') { ++pos_; return true; }
      return false;
    }
  }

  bool array(std::size_t* count) {
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!value()) return false;
      if (count != nullptr) ++*count;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == ']') { ++pos_; return true; }
      return false;
    }
  }

  bool string(std::string* out) {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') { ++pos_; return true; }
      if (c == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) return false;
        ++pos_;
        continue;
      }
      if (out != nullptr) out->push_back(c);
      ++pos_;
    }
    return false;
  }

  bool number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    return pos_ > start;
  }

  bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\n' || text_[pos_] == '\t' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  [[nodiscard]] char peek() const {
    return pos_ < text_.size() ? text_[pos_] : '\0';
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  std::map<std::string, std::size_t> array_sizes_;
  std::set<std::string> keys_;
};

// ---- recorder semantics -----------------------------------------------------

TEST(Recorder, EventsOnOneWorkerReadBackInRecordOrder) {
  Recorder rec;
  rec.record(EventKind::kChunkExec, 3, 100, 200, 1, 10);
  rec.record(EventKind::kChunkExec, 3, 250, 300, 11, 10);
  rec.record(EventKind::kMark, 3, 400, 400, 0, 0);

  const std::vector<Event> events = rec.events(3);
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].begin_ns, 100u);
  EXPECT_EQ(events[0].end_ns, 200u);
  EXPECT_EQ(events[0].arg0, 1);
  EXPECT_EQ(events[1].begin_ns, 250u);
  EXPECT_EQ(events[2].kind, EventKind::kMark);
  // Within one worker's timeline the order is append order.
  EXPECT_LE(events[0].begin_ns, events[1].begin_ns);
  EXPECT_LE(events[1].begin_ns, events[2].begin_ns);

  EXPECT_TRUE(rec.events(4).empty());
  EXPECT_EQ(rec.active_workers(), std::vector<std::uint32_t>{3});
}

TEST(Recorder, RingKeepsMostRecentEventsAndCountsDrops) {
  Recorder rec(/*capacity_per_worker=*/4);
  ASSERT_EQ(rec.ring_capacity(), 4u);
  for (std::uint64_t n = 0; n < 10; ++n) {
    rec.record(EventKind::kChunkExec, 0, n, n + 1,
               static_cast<i64>(n), 0);
  }
  const std::vector<Event> events = rec.events(0);
  ASSERT_EQ(events.size(), 4u);
  // The window is the most recent four appends, oldest first.
  EXPECT_EQ(events[0].arg0, 6);
  EXPECT_EQ(events[3].arg0, 9);
  EXPECT_EQ(rec.dropped(), 6u);
}

TEST(Recorder, WorkersBeyondMaxFoldOntoLowerTimelines) {
  Recorder rec;
  rec.record(EventKind::kMark, Recorder::kMaxWorkers + 7, 1, 1);
  EXPECT_EQ(rec.events(7).size(), 1u);
}

TEST(Recorder, InstallMakesRecorderCurrentAndUninstallClears) {
  EXPECT_EQ(Recorder::current(), nullptr);
  {
    Recorder rec;
    rec.install();
    EXPECT_EQ(Recorder::current(), &rec);
    rec.uninstall();
    EXPECT_EQ(Recorder::current(), nullptr);
  }
  EXPECT_EQ(Recorder::current(), nullptr);
}

TEST(Recorder, AllEventsSortedByBeginAcrossWorkers) {
  Recorder rec;
  rec.record(EventKind::kChunkExec, 1, 500, 600);
  rec.record(EventKind::kChunkExec, 0, 100, 200);
  rec.record(EventKind::kChunkExec, 2, 300, 400);
  const std::vector<Event> all = rec.all_events();
  ASSERT_EQ(all.size(), 3u);
  EXPECT_EQ(all[0].worker, 0u);
  EXPECT_EQ(all[1].worker, 2u);
  EXPECT_EQ(all[2].worker, 1u);
}

// ---- counters ---------------------------------------------------------------

TEST(Counters, MergesTalliesAcrossWorkerShards) {
  Counters counters(8);
  counters.add(0, Counter::kIterations, 10);
  counters.add(3, Counter::kIterations, 20);
  counters.add(7, Counter::kIterations, 30);
  counters.add(3, Counter::kDispatchOps, 5);

  EXPECT_EQ(counters.total(Counter::kIterations), 60u);
  EXPECT_EQ(counters.total(Counter::kDispatchOps), 5u);
  EXPECT_EQ(counters.total(Counter::kRegions), 0u);
  EXPECT_EQ(counters.of_worker(3, Counter::kIterations), 20u);
  EXPECT_EQ(counters.of_worker(1, Counter::kIterations), 0u);
}

TEST(Counters, MergesConcurrentWritersOnDistinctShards) {
  // One writer thread per shard, plain stores, merged after join — the
  // sharded design's whole claim.
  Counters counters(4);
  std::vector<std::thread> threads;
  for (std::size_t w = 0; w < 4; ++w) {
    threads.emplace_back([w, &counters] {
      for (int n = 0; n < 1000; ++n) {
        counters.add(w, Counter::kChunksExecuted);
        counters.observe(w, Hist::kChunkSize, 16);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(counters.total(Counter::kChunksExecuted), 4000u);
  EXPECT_EQ(counters.snapshot(Hist::kChunkSize).total(), 4000u);
}

TEST(Counters, HistogramBucketsArePowersOfTwo) {
  EXPECT_EQ(Counters::bucket_of(0), 0u);
  EXPECT_EQ(Counters::bucket_of(1), 0u);
  EXPECT_EQ(Counters::bucket_of(2), 1u);
  EXPECT_EQ(Counters::bucket_of(3), 1u);
  EXPECT_EQ(Counters::bucket_of(4), 2u);
  EXPECT_EQ(Counters::bucket_of(1023), 9u);
  EXPECT_EQ(Counters::bucket_of(1024), 10u);

  Counters counters(2);
  counters.observe(0, Hist::kDispatchLatencyNs, 100);   // bucket 6
  counters.observe(1, Hist::kDispatchLatencyNs, 100);
  counters.observe(0, Hist::kDispatchLatencyNs, 5000);  // bucket 12
  const HistogramSnapshot snap = counters.snapshot(Hist::kDispatchLatencyNs);
  EXPECT_EQ(snap.total(), 3u);
  EXPECT_EQ(snap.buckets[6], 2u);
  EXPECT_EQ(snap.buckets[12], 1u);
  EXPECT_GT(snap.approx_mean(), 0.0);
}

// ---- integration with the runtime -------------------------------------------

TEST(TraceIntegration, ParallelForEmitsEventsOnEveryWorker) {
  Recorder rec;
  rec.install();
  {
    runtime::ThreadPool pool(4);
    const auto space =
        index::CoalescedSpace::create(std::vector<i64>{32, 32}).value();
    const runtime::ForStats stats =
        runtime::run(pool, space, [](std::span<const i64>) {},
                     {.schedule = {runtime::Schedule::kGuided, 1}});
    EXPECT_EQ(stats.trace, &rec);
  }  // pool joined: safe to read
  rec.uninstall();

  // Every pool worker ran its region body, so every worker timeline holds
  // at least one event (kWorkerRun at minimum) even if it won no chunks.
  EXPECT_EQ(rec.active_workers().size(), 4u);
  for (std::uint32_t w = 0; w < 4; ++w) {
    EXPECT_GE(rec.events(w).size(), 1u) << "worker " << w;
  }

  // The counters saw the whole iteration space exactly once.
  EXPECT_EQ(rec.counters().total(Counter::kIterations), 1024u);
  EXPECT_EQ(rec.counters().total(Counter::kRegions), 1u);
  EXPECT_GT(rec.counters().total(Counter::kDispatchOps), 0u);
  EXPECT_GT(rec.counters().total(Counter::kChunksExecuted), 0u);

  // Spans never run backwards.
  for (const Event& e : rec.all_events()) {
    EXPECT_LE(e.begin_ns, e.end_ns);
  }
}

TEST(TraceIntegration, WaitFreeDispatcherEmitsDispatchSpansAndLatency) {
  // The precomputed wait-free dispatcher must be as observable as the
  // mutex path it replaces: one kChunkDispatch span and one latency
  // observation per successful dispatch, none for exhausted polls.
  Recorder rec;
  rec.install();
  index::GuidedPolicy policy(4);
  runtime::ChunkScheduleDispatcher dispatcher(
      index::ChunkSchedule::precompute(policy, 500));
  while (!dispatcher.next().empty()) {
  }
  EXPECT_TRUE(dispatcher.next().empty());  // poll: must emit nothing
  rec.uninstall();

  const std::uint64_t ops = rec.counters().total(Counter::kDispatchOps);
  EXPECT_GT(ops, 0u);
  EXPECT_EQ(ops, dispatcher.dispatch_ops());

  std::size_t dispatch_events = 0;
  i64 covered = 0;
  for (const Event& e : rec.all_events()) {
    if (e.kind == EventKind::kChunkDispatch) {
      ++dispatch_events;
      covered += e.arg1;  // arg1 carries the chunk size
      EXPECT_LE(e.begin_ns, e.end_ns);
    }
  }
  EXPECT_EQ(dispatch_events, ops);
  EXPECT_EQ(covered, 500);

  const HistogramSnapshot latency =
      rec.counters().snapshot(Hist::kDispatchLatencyNs);
  EXPECT_EQ(latency.total(), ops);
  const HistogramSnapshot sizes =
      rec.counters().snapshot(Hist::kChunkSize);
  EXPECT_EQ(sizes.total(), ops);
}

TEST(TraceIntegration, StatsTraceIsNullWithoutInstalledRecorder) {
  runtime::ThreadPool pool(2);
  const runtime::ForStats stats =
      runtime::run(pool, 100, [](i64) {},
                   {.schedule = {runtime::Schedule::kChunked, 10}});
  EXPECT_EQ(stats.trace, nullptr);
}

// ---- exporters --------------------------------------------------------------

TEST(Export, ChromeTraceIsValidJsonWithOneRowPerWorker) {
  Recorder rec;
  rec.install();
  {
    runtime::ThreadPool pool(3);
    const auto space =
        index::CoalescedSpace::create(std::vector<i64>{16, 16}).value();
    runtime::run(pool, space, [](std::span<const i64>) {},
                 {.schedule = {runtime::Schedule::kChunked, 8}});
  }
  rec.uninstall();

  const std::string json = chrome_trace_json(rec);
  JsonChecker checker(json);
  ASSERT_TRUE(checker.valid()) << json.substr(0, 400);
  EXPECT_TRUE(checker.has_key("displayTimeUnit"));
  EXPECT_TRUE(checker.has_key("otherData"));
  // At least one metadata event and one span per active worker.
  EXPECT_GE(checker.array_size("traceEvents"),
            2 * rec.active_workers().size());
  // Counter totals surface in the export.
  EXPECT_NE(json.find("\"iterations\":256"), std::string::npos);
}

TEST(Export, WorkerSummaryListsEveryActiveWorker) {
  Recorder rec;
  rec.record(EventKind::kChunkExec, 0, 0, 1000, 1, 64);
  rec.record(EventKind::kChunkExec, 2, 500, 1500, 65, 64);
  const std::string summary = worker_summary(rec);
  EXPECT_NE(summary.find("W0"), std::string::npos);
  EXPECT_NE(summary.find("W2"), std::string::npos);
  EXPECT_EQ(summary.find("W1 "), std::string::npos);
  EXPECT_NE(summary.find('#'), std::string::npos);
}

TEST(Export, JsonEscapeHandlesControlCharacters) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(json_escape("a\nb"), "a\\nb");
  EXPECT_EQ(json_escape(std::string_view("a\x01z", 3)), "a\\u0001z");
}

// ---- the disabled fast path -------------------------------------------------

TEST(DisabledPath, EmitHelpersAllocateNothingWithoutRecorder) {
  ASSERT_EQ(Recorder::current(), nullptr);

  const std::uint64_t before = g_allocations.load();
  for (int n = 0; n < 10000; ++n) {
    ScopedSpan span(EventKind::kChunkExec, n, 1);
    span.set_args(n, 2);
    mark(EventKind::kMark, n);
    count(Counter::kIterations);
    observe(Hist::kChunkSize, static_cast<std::uint64_t>(n));
    const std::uint64_t t0 = span_begin();
    span_end(EventKind::kIndexRecovery, t0, n);
  }
  const std::uint64_t after = g_allocations.load();
  EXPECT_EQ(after, before)
      << "emit helpers allocated with tracing uninstalled";
}

TEST(DisabledPath, RecordingAllocatesOnlyOnRingCreation) {
  Recorder rec;
  rec.record(EventKind::kChunkExec, 0, 0, 1);  // creates worker 0's ring

  const std::uint64_t before = g_allocations.load();
  for (std::uint64_t n = 0; n < 10000; ++n) {
    rec.record(EventKind::kChunkExec, 0, n, n + 1);
    rec.counters().add(0, Counter::kIterations);
    rec.counters().observe(0, Hist::kChunkSize, n);
  }
  const std::uint64_t after = g_allocations.load();
  EXPECT_EQ(after, before) << "steady-state recording allocated";
}

}  // namespace
}  // namespace coalesce::trace
