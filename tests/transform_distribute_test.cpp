// Tests for loop distribution, make_perfect, scalar expansion, and the
// distribute-then-coalesce pipeline.
#include <gtest/gtest.h>

#include "analysis/doall.hpp"
#include "core/api.hpp"
#include "index/chunk.hpp"
#include "ir/builder.hpp"
#include "ir/printer.hpp"
#include "transform/coalesce.hpp"
#include "transform/distribute.hpp"
#include "transform/scalar_expand.hpp"

namespace coalesce::transform {
namespace {

using core::equivalent_by_execution;
using ir::int_const;
using ir::LoopNest;
using ir::NestBuilder;
using ir::VarId;
using ir::var_ref;

// ---- distribute_loop ------------------------------------------------------------

TEST(Distribute, SplitsIndependentStatements) {
  // do i { A(i) = i; B(i) = 2i } — no shared array: two loops.
  NestBuilder b;
  const VarId a = b.array("A", {8});
  const VarId bb = b.array("B", {8});
  const VarId i = b.begin_parallel_loop("i", 1, 8);
  b.assign(b.element(a, {i}), var_ref(i));
  b.assign(b.element(bb, {i}), ir::mul(int_const(2), var_ref(i)));
  b.end_loop();
  const LoopNest nest = b.build();

  const auto program = distribute_root(nest);
  ASSERT_TRUE(program.ok());
  EXPECT_EQ(program.value().roots.size(), 2u);
  EXPECT_TRUE(equivalent_by_execution(nest, program.value()));
}

TEST(Distribute, SplitPiecesGetFreshInductionVariables) {
  NestBuilder b;
  const VarId a = b.array("A", {8});
  const VarId bb = b.array("B", {8});
  const VarId i = b.begin_parallel_loop("i", 1, 8);
  b.assign(b.element(a, {i}), var_ref(i));
  b.assign(b.element(bb, {i}), var_ref(i));
  b.end_loop();
  const LoopNest nest = b.build();

  const auto program = distribute_root(nest);
  ASSERT_TRUE(program.ok());
  ASSERT_EQ(program.value().roots.size(), 2u);
  EXPECT_NE(program.value().roots[0]->var, program.value().roots[1]->var);
}

TEST(Distribute, ForwardDependenceOrdersLoops) {
  // do i { A(i) = i; B(i) = A(i) }: flow dep A->B, loop-independent:
  // distribution legal with producer loop first.
  NestBuilder b;
  const VarId a = b.array("A", {8});
  const VarId bb = b.array("B", {8});
  const VarId i = b.begin_parallel_loop("i", 1, 8);
  b.assign(b.element(a, {i}), var_ref(i));
  b.assign(b.element(bb, {i}), b.read(a, {i}));
  b.end_loop();
  const LoopNest nest = b.build();

  const auto program = distribute_root(nest);
  ASSERT_TRUE(program.ok());
  ASSERT_EQ(program.value().roots.size(), 2u);
  // First loop writes A, second reads it.
  const auto arrays0 = ir::arrays_touched(*program.value().roots[0]);
  EXPECT_EQ(arrays0.size(), 1u);
  EXPECT_EQ(program.value().symbols.name(arrays0[0]), "A");
  EXPECT_TRUE(equivalent_by_execution(nest, program.value()));
}

TEST(Distribute, CycleKeepsStatementsTogether) {
  // do i { A(i) = B(i-1); B(i) = A(i) } — A->B loop-independent forward and
  // B->A carried backward: a cycle; no split.
  NestBuilder b;
  const VarId a = b.array("A", {9});
  const VarId bb = b.array("B", {9});
  const VarId i = b.begin_loop("i", 2, 9);
  b.assign(b.element(a, {i}),
           ir::array_read(bb, {ir::sub(var_ref(i), int_const(1))}));
  b.assign(b.element(bb, {i}), b.read(a, {i}));
  b.end_loop();
  const LoopNest nest = b.build();

  const auto program = distribute_root(nest);
  ASSERT_TRUE(program.ok());
  EXPECT_EQ(program.value().roots.size(), 1u);
}

TEST(Distribute, BackwardDependenceReordersLoops) {
  // do i { A(i) = B(i+1) ; B(i) = i } — anti dep from stmt0's read of
  // B(i+1) to stmt1's write of B: carried (distance -1 as computed), i.e.
  // the write must happen AFTER the read of the later iteration... the
  // legal distribution keeps the reader loop first.
  NestBuilder b;
  const VarId a = b.array("A", {8});
  const VarId bb = b.array("B", {9});
  const VarId i = b.begin_loop("i", 1, 8);
  b.assign(b.element(a, {i}),
           ir::array_read(bb, {ir::add(var_ref(i), int_const(1))}));
  b.assign(b.element(bb, {i}), var_ref(i));
  b.end_loop();
  const LoopNest nest = b.build();

  const auto program = distribute_root(nest);
  ASSERT_TRUE(program.ok());
  EXPECT_TRUE(equivalent_by_execution(nest, program.value()));
}

TEST(Distribute, ScalarConflictWeldsStatements) {
  // t is written by S1 and read by S2: conservative weld (one loop), even
  // though a human can see the order.
  NestBuilder b;
  const VarId a = b.array("A", {8});
  const VarId bb = b.array("B", {8});
  const VarId t = b.scalar("t");
  const VarId i = b.begin_parallel_loop("i", 1, 8);
  b.assign(t, b.read(a, {i}));
  b.assign(b.element(bb, {i}), var_ref(t));
  b.end_loop();
  const LoopNest nest = b.build();

  const auto program = distribute_root(nest);
  ASSERT_TRUE(program.ok());
  EXPECT_EQ(program.value().roots.size(), 1u);
}

TEST(Distribute, SingleStatementLoopIsUntouched) {
  const LoopNest nest = ir::make_rectangular_witness({4, 4});
  const auto program = distribute_root(nest);
  ASSERT_TRUE(program.ok());
  EXPECT_EQ(program.value().roots.size(), 1u);
  EXPECT_TRUE(equivalent_by_execution(nest, program.value()));
}

// ---- make_perfect + coalesce_program ----------------------------------------------

TEST(MakePerfect, MatmulBecomesTwoPerfectNests) {
  const LoopNest nest = ir::make_matmul(6, 5, 4);
  const auto program = make_perfect(nest);
  ASSERT_TRUE(program.ok()) << program.error().to_string();
  // init nest {i,j} and compute nest {i,j,k}.
  ASSERT_EQ(program.value().roots.size(), 2u);
  EXPECT_EQ(ir::perfect_band(*program.value().roots[0]).size(), 2u);
  EXPECT_EQ(ir::perfect_band(*program.value().roots[1]).size(), 3u);
  EXPECT_TRUE(equivalent_by_execution(nest, program.value()));
}

TEST(MakePerfect, IncreasesParallelBandDepth) {
  const LoopNest nest = ir::make_matmul(6, 5, 4);
  const Program before{nest.symbols, {nest.root}};
  const auto after = make_perfect(nest);
  ASSERT_TRUE(after.ok());
  EXPECT_GT(total_parallel_band_depth(after.value()),
            total_parallel_band_depth(before));
}

TEST(MakePerfect, ThenCoalesceProgramFusesBothBands) {
  const LoopNest nest = ir::make_matmul(6, 5, 4);
  auto program = make_perfect(nest);
  ASSERT_TRUE(program.ok());
  const auto coalesced = coalesce_program(program.value());
  EXPECT_EQ(coalesced.bands_coalesced, 2u);
  for (const auto& root : coalesced.program.roots) {
    EXPECT_TRUE(root->parallel);
    EXPECT_TRUE(ir::is_normalized(*root));
  }
  EXPECT_TRUE(equivalent_by_execution(nest, coalesced.program));
}

TEST(MakePerfect, AlreadyPerfectNestPassesThrough) {
  const LoopNest nest = ir::make_rectangular_witness({3, 4, 5});
  const auto program = make_perfect(nest);
  ASSERT_TRUE(program.ok());
  EXPECT_EQ(program.value().roots.size(), 1u);
  EXPECT_EQ(ir::to_string(LoopNest{program.value().symbols,
                                   program.value().roots[0]}),
            ir::to_string(nest));
}

TEST(MakePerfect, PiStripsStaysWhole) {
  // The reduction welds SUM(t)=0 and the accumulation loop: flow + output
  // deps at t-level distance 0 force order but allow distribution; the
  // inner accumulation self-dep is carried by r inside one statement.
  const LoopNest nest = ir::make_pi_strips(4, 8);
  const auto program = make_perfect(nest);
  ASSERT_TRUE(program.ok());
  EXPECT_TRUE(equivalent_by_execution(nest, program.value()));
}

// ---- scalar expansion ---------------------------------------------------------------

TEST(ScalarExpansion, SwapBecomesArrayTemp) {
  NestBuilder b;
  const VarId a = b.array("A", {8});
  const VarId bb = b.array("B", {8});
  const VarId t = b.scalar("t");
  const VarId i = b.begin_parallel_loop("i", 1, 8);
  b.assign(t, b.read(a, {i}));
  b.assign(b.element(a, {i}), b.read(bb, {i}));
  b.assign(b.element(bb, {i}), var_ref(t));
  b.end_loop();
  const LoopNest nest = b.build();

  const auto expanded = expand_scalar(nest, t);
  ASSERT_TRUE(expanded.ok()) << expanded.error().to_string();
  EXPECT_TRUE(expanded.value().symbols.lookup("t_x").has_value());
  EXPECT_TRUE(ir::scalars_written(*expanded.value().root).empty());
  EXPECT_TRUE(equivalent_by_execution(nest, expanded.value()));
}

TEST(ScalarExpansion, OffsetSteppedRootIndexesOrdinally) {
  NestBuilder b;
  const VarId a = b.array("A", {20});
  const VarId t = b.scalar("t");
  const VarId i = b.begin_parallel_loop("i", 4, 20, 4);  // 4,8,12,16,20
  b.assign(t, ir::mul(var_ref(i), int_const(3)));
  b.assign(b.element(a, {i}), var_ref(t));
  b.end_loop();
  const LoopNest nest = b.build();

  const auto expanded = expand_scalar(nest, t);
  ASSERT_TRUE(expanded.ok());
  const auto tx = expanded.value().symbols.lookup("t_x");
  ASSERT_TRUE(tx.has_value());
  EXPECT_EQ(expanded.value().symbols[*tx].shape,
            (std::vector<std::int64_t>{5}));
  EXPECT_TRUE(equivalent_by_execution(nest, expanded.value()));
}

TEST(ScalarExpansion, RejectsUpwardExposedScalar) {
  // t read before assigned: its value flows in from outside.
  NestBuilder b;
  const VarId a = b.array("A", {8});
  const VarId t = b.scalar("t");
  const VarId i = b.begin_loop("i", 1, 8);
  b.assign(b.element(a, {i}), var_ref(t));
  b.assign(t, b.read(a, {i}));
  b.end_loop();
  const LoopNest nest = b.build();
  const auto expanded = expand_scalar(nest, t);
  ASSERT_FALSE(expanded.ok());
  EXPECT_EQ(expanded.error().code, support::ErrorCode::kIllegalTransform);
}

TEST(ScalarExpansion, RejectsNonScalarAndUnwritten) {
  NestBuilder b;
  const VarId a = b.array("A", {4});
  const VarId t = b.scalar("t");
  const VarId i = b.begin_loop("i", 1, 4);
  b.assign(b.element(a, {i}), int_const(1));
  b.end_loop();
  const LoopNest nest = b.build();
  EXPECT_FALSE(expand_scalar(nest, a).ok());  // array, not scalar
  EXPECT_FALSE(expand_scalar(nest, t).ok());  // never assigned
}

TEST(ScalarExpansion, ExpansionUnlocksDistribution) {
  // With the scalar welded: 1 loop. After expansion: the weld is gone and
  // the producer/consumer split succeeds.
  NestBuilder b;
  const VarId a = b.array("A", {8});
  const VarId bb = b.array("B", {8});
  const VarId t = b.scalar("t");
  const VarId i = b.begin_parallel_loop("i", 1, 8);
  b.assign(t, ir::add(b.read(a, {i}), int_const(1)));
  b.assign(b.element(bb, {i}), var_ref(t));
  b.end_loop();
  const LoopNest nest = b.build();

  ASSERT_EQ(distribute_root(nest).value().roots.size(), 1u);

  const auto expanded = expand_all_scalars(nest);
  ASSERT_TRUE(expanded.ok());
  EXPECT_EQ(expanded.value().expanded, 1u);
  const auto program = distribute_root(expanded.value().nest);
  ASSERT_TRUE(program.ok());
  EXPECT_EQ(program.value().roots.size(), 2u);
  EXPECT_TRUE(equivalent_by_execution(nest, program.value()));
}

TEST(ScalarExpansion, ExpandAllIsIdempotentOnCleanNest) {
  const LoopNest nest = ir::make_rectangular_witness({4, 4});
  const auto expanded = expand_all_scalars(nest);
  ASSERT_TRUE(expanded.ok());
  EXPECT_EQ(expanded.value().expanded, 0u);
}

// ---- factoring policy -----------------------------------------------------------

TEST(Factoring, BatchesHalveRemaining) {
  index::FactoringPolicy policy(4);
  // R=1000: batch chunk = ceil(1000/8) = 125, four chunks of 125;
  // R=500: chunk 63, four chunks; ...
  const auto chunks = index::dispatch_sequence(policy, 1000);
  ASSERT_GE(chunks.size(), 8u);
  EXPECT_EQ(chunks[0].size(), 125);
  EXPECT_EQ(chunks[1].size(), 125);
  EXPECT_EQ(chunks[2].size(), 125);
  EXPECT_EQ(chunks[3].size(), 125);
  EXPECT_EQ(chunks[4].size(), 63);  // ceil(500/8)
}

TEST(Factoring, CoversExactlyOnce) {
  for (support::i64 total : {1, 7, 100, 999}) {
    index::FactoringPolicy policy(4);
    const auto chunks = index::dispatch_sequence(policy, total);
    support::i64 next = 1;
    for (const auto& c : chunks) {
      EXPECT_EQ(c.first, next);
      next = c.last;
    }
    EXPECT_EQ(next, total + 1);
  }
}

}  // namespace
}  // namespace coalesce::transform
