// Tests for loop fusion: legality, DOALL preservation, and the
// distribute/fuse round trip.
#include <gtest/gtest.h>

#include "core/api.hpp"
#include "ir/builder.hpp"
#include "ir/printer.hpp"
#include "transform/distribute.hpp"
#include "transform/fusion.hpp"
#include "transform/scalar_expand.hpp"

namespace coalesce::transform {
namespace {

using core::equivalent_by_execution;
using ir::int_const;
using ir::LoopNest;
using ir::NestBuilder;
using ir::VarId;
using ir::var_ref;

/// Two separate elementwise loops over distinct/related arrays, as a
/// Program for fuse_roots.
struct TwoLoops {
  ir::Program program;
  LoopNest reference;  ///< single nest with the same overall semantics
};

TEST(Fusion, IndependentElementwiseLoopsFuseAndStayParallel) {
  NestBuilder b;
  const VarId a = b.array("A", {10});
  const VarId c = b.array("C", {10});
  const VarId i = b.begin_parallel_loop("i", 1, 10);
  b.assign(b.element(a, {i}), var_ref(i));
  b.assign(b.element(c, {i}), ir::mul(var_ref(i), int_const(2)));
  b.end_loop();
  const LoopNest reference = b.build();

  // Distribute, then fuse back: should round-trip semantically.
  const auto program = distribute_root(reference);
  ASSERT_TRUE(program.ok());
  ASSERT_EQ(program.value().roots.size(), 2u);

  const auto fused = fuse_roots(program.value(), 0);
  ASSERT_TRUE(fused.ok()) << fused.error().to_string();
  ASSERT_EQ(fused.value().roots.size(), 1u);
  EXPECT_TRUE(fused.value().roots[0]->parallel);
  EXPECT_TRUE(equivalent_by_execution(reference, fused.value()));
}

TEST(Fusion, ProducerConsumerFusesWithZeroDistance) {
  // do i { A(i) = i } ; do i { B(i) = A(i) }: distance 0 — fuse, stay DOALL.
  NestBuilder b1;
  const VarId a1 = b1.array("A", {8});
  const VarId i1 = b1.begin_parallel_loop("i", 1, 8);
  b1.assign(b1.element(a1, {i1}), var_ref(i1));
  b1.end_loop();
  LoopNest first = b1.build();

  // Build the second loop in the SAME symbol table universe.
  ir::SymbolTable symbols = first.symbols;
  const VarId bb = symbols.declare("B", ir::SymbolKind::kArray, {8});
  const VarId i2 = symbols.fresh_induction("i");
  auto second = std::make_shared<ir::Loop>();
  second->var = i2;
  second->lower = int_const(1);
  second->upper = int_const(8);
  second->parallel = true;
  second->body.push_back(ir::AssignStmt{
      ir::ArrayAccess{bb, {var_ref(i2)}},
      ir::array_read(symbols.lookup("A").value(), {var_ref(i2)})});

  ir::Program program{symbols, {first.root, second}};
  const auto fused = fuse_roots(program, 0);
  ASSERT_TRUE(fused.ok()) << fused.error().to_string();
  EXPECT_TRUE(fused.value().roots[0]->parallel);
}

TEST(Fusion, ForwardShiftFusesButLosesDoall) {
  // do i { A(i) = i } ; do i { B(i) = A(i-1)... }: wait — reading A(i-1)
  // from the second loop gives distance -1 (backward) and must be REJECTED?
  // No: src = first-loop write A(i1); dst = second-loop read A(i2-1);
  // equal elements need i2 = i1 + 1: distance +1 — forward-carried: fusion
  // is legal but the fused loop is no longer DOALL.
  NestBuilder b1;
  const VarId a1 = b1.array("A", {10});
  const VarId i1 = b1.begin_parallel_loop("i", 2, 9);
  b1.assign(b1.element(a1, {i1}), var_ref(i1));
  b1.end_loop();
  LoopNest first = b1.build();

  ir::SymbolTable symbols = first.symbols;
  const VarId bb = symbols.declare("B", ir::SymbolKind::kArray, {10});
  const VarId i2 = symbols.fresh_induction("i");
  auto second = std::make_shared<ir::Loop>();
  second->var = i2;
  second->lower = int_const(2);
  second->upper = int_const(9);
  second->parallel = true;
  second->body.push_back(ir::AssignStmt{
      ir::ArrayAccess{bb, {var_ref(i2)}},
      ir::array_read(symbols.lookup("A").value(),
                     {ir::sub(var_ref(i2), int_const(1))})});

  ir::Program program{symbols, {first.root, second}};
  const auto fused = fuse_roots(program, 0);
  ASSERT_TRUE(fused.ok()) << fused.error().to_string();
  EXPECT_FALSE(fused.value().roots[0]->parallel);  // carried dep now
}

TEST(Fusion, BackwardShiftIsRejected) {
  // do i { A(i) = i } ; do i { B(i) = A(i+1) }: the second loop's read of
  // A(i+1) matches the first loop's write at iteration i+1: distance -1 —
  // after fusion iteration i would read a value not yet written. Illegal.
  NestBuilder b1;
  const VarId a1 = b1.array("A", {10});
  const VarId i1 = b1.begin_parallel_loop("i", 1, 8);
  b1.assign(b1.element(a1, {i1}), var_ref(i1));
  b1.end_loop();
  LoopNest first = b1.build();

  ir::SymbolTable symbols = first.symbols;
  const VarId bb = symbols.declare("B", ir::SymbolKind::kArray, {10});
  const VarId i2 = symbols.fresh_induction("i");
  auto second = std::make_shared<ir::Loop>();
  second->var = i2;
  second->lower = int_const(1);
  second->upper = int_const(8);
  second->parallel = true;
  second->body.push_back(ir::AssignStmt{
      ir::ArrayAccess{bb, {var_ref(i2)}},
      ir::array_read(symbols.lookup("A").value(),
                     {ir::add(var_ref(i2), int_const(1))})});

  ir::Program program{symbols, {first.root, second}};
  const auto fused = fuse_roots(program, 0);
  ASSERT_FALSE(fused.ok());
  EXPECT_EQ(fused.error().code, support::ErrorCode::kIllegalTransform);
}

TEST(Fusion, MismatchedHeadersRejected) {
  NestBuilder b1;
  const VarId a1 = b1.array("A", {10});
  const VarId i1 = b1.begin_parallel_loop("i", 1, 10);
  b1.assign(b1.element(a1, {i1}), var_ref(i1));
  b1.end_loop();
  LoopNest first = b1.build();

  ir::SymbolTable symbols = first.symbols;
  const VarId bb = symbols.declare("B", ir::SymbolKind::kArray, {10});
  const VarId i2 = symbols.fresh_induction("i");
  auto second = std::make_shared<ir::Loop>();
  second->var = i2;
  second->lower = int_const(1);
  second->upper = int_const(9);  // shorter
  second->parallel = true;
  second->body.push_back(
      ir::AssignStmt{ir::ArrayAccess{bb, {var_ref(i2)}}, int_const(0)});

  ir::Program program{symbols, {first.root, second}};
  EXPECT_FALSE(fuse_roots(program, 0).ok());
}

TEST(Fusion, SharedScalarRejectedUntilExpanded) {
  // Both loops write/read the scalar t: rejected with a helpful message.
  NestBuilder b;
  const VarId a = b.array("A", {6});
  const VarId c = b.array("C", {6});
  const VarId t = b.scalar("t");
  const VarId i = b.begin_parallel_loop("i", 1, 6);
  b.assign(t, b.read(a, {i}));
  b.assign(b.element(c, {i}), var_ref(t));
  b.end_loop();
  const LoopNest nest = b.build();

  // Expansion removes the weld, distribution splits, fusion re-joins.
  const auto expanded = expand_all_scalars(nest);
  ASSERT_TRUE(expanded.ok());
  const auto program = distribute_root(expanded.value().nest);
  ASSERT_TRUE(program.ok());
  ASSERT_EQ(program.value().roots.size(), 2u);
  const auto fused = fuse_roots(program.value(), 0);
  ASSERT_TRUE(fused.ok()) << fused.error().to_string();
  EXPECT_TRUE(equivalent_by_execution(nest, fused.value()));
}

TEST(Fusion, FuseRootsIndexOutOfRange) {
  const LoopNest nest = ir::make_rectangular_witness({4});
  ir::Program program{nest.symbols, {nest.root}};
  EXPECT_FALSE(fuse_roots(program, 0).ok());
}

TEST(Fusion, FuseAdjacentRootsGreedy) {
  // Three independent elementwise loops: all collapse into one.
  NestBuilder b;
  const VarId a = b.array("A", {7});
  const VarId c = b.array("C", {7});
  const VarId d = b.array("D", {7});
  const VarId i = b.begin_parallel_loop("i", 1, 7);
  b.assign(b.element(a, {i}), var_ref(i));
  b.assign(b.element(c, {i}), ir::mul(var_ref(i), int_const(2)));
  b.assign(b.element(d, {i}), ir::mul(var_ref(i), int_const(3)));
  b.end_loop();
  const LoopNest reference = b.build();

  const auto program = distribute_root(reference);
  ASSERT_TRUE(program.ok());
  ASSERT_EQ(program.value().roots.size(), 3u);

  const FuseAllResult fused = fuse_adjacent_roots(program.value());
  EXPECT_EQ(fused.fused, 2u);
  ASSERT_EQ(fused.program.roots.size(), 1u);
  EXPECT_TRUE(equivalent_by_execution(reference, fused.program));
}

TEST(Fusion, DistributeFuseRoundTripOnMatmulInit) {
  // make_perfect splits matmul; greedily fusing the distributed roots can
  // rejoin the init and compute nests (distance-0 dependence) — and the
  // result must still compute matmul.
  const LoopNest nest = ir::make_matmul(5, 4, 3);
  auto program = make_perfect(nest);
  ASSERT_TRUE(program.ok());
  ASSERT_EQ(program.value().roots.size(), 2u);
  const FuseAllResult fused = fuse_adjacent_roots(program.value());
  EXPECT_TRUE(equivalent_by_execution(nest, fused.program));
}

}  // namespace
}  // namespace coalesce::transform
