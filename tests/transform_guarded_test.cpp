// Tests for guarded (non-rectangular) coalescing and the IfStmt machinery
// it rests on.
#include <gtest/gtest.h>

#include "core/api.hpp"
#include "ir/builder.hpp"
#include "ir/eval.hpp"
#include "ir/printer.hpp"
#include "transform/guarded.hpp"

namespace coalesce::transform {
namespace {

using core::equivalent_by_execution;
using ir::int_const;
using ir::LoopNest;
using ir::NestBuilder;
using ir::VarId;
using ir::var_ref;

// ---- IfStmt / comparison groundwork -------------------------------------------

TEST(GuardIr, BuilderEvaluatorRoundTrip) {
  NestBuilder b;
  const VarId a = b.array("A", {6, 6});
  const VarId i = b.begin_parallel_loop("i", 1, 6);
  const VarId j = b.begin_parallel_loop("j", 1, 6);
  b.begin_if(ir::cmp_le(var_ref(j), var_ref(i)));
  b.assign(b.element(a, {i, j}), int_const(1));
  b.end_if();
  b.end_loop();
  b.end_loop();
  const LoopNest nest = b.build();

  ir::Evaluator eval(nest.symbols);
  eval.run(*nest.root);
  double sum = 0.0;
  for (double v : eval.store().data(a)) sum += v;
  EXPECT_EQ(sum, 21.0);  // 6*7/2 lower-triangular cells
}

TEST(GuardIr, PrinterRendersGuardsAndComparisons) {
  const LoopNest nest = ir::make_pivot_update(4, 2);
  const std::string text = ir::to_string(nest);
  EXPECT_NE(text.find("if (i != 2) {"), std::string::npos);
}

TEST(GuardIr, CloneCopiesGuardsDeeply) {
  const LoopNest nest = ir::make_pivot_update(4, 2);
  const ir::LoopPtr copy = ir::clone(*nest.root);
  EXPECT_EQ(ir::to_string(*copy, nest.symbols),
            ir::to_string(*nest.root, nest.symbols));
}

TEST(GuardIr, ComparisonSimplification) {
  const auto one = ir::simplify(ir::cmp_le(int_const(3), int_const(7)));
  EXPECT_EQ(ir::as_constant(one).value(), 1);
  const auto zero = ir::simplify(ir::cmp_gt(int_const(3), int_const(7)));
  EXPECT_EQ(ir::as_constant(zero).value(), 0);
  const auto folded =
      ir::simplify(ir::logical_and(int_const(1), ir::cmp_ne(int_const(2),
                                                            int_const(2))));
  EXPECT_EQ(ir::as_constant(folded).value(), 0);
}

TEST(GuardIr, AssignmentCountSeesThroughGuards) {
  const LoopNest nest = ir::make_pivot_update(5, 2);
  EXPECT_EQ(ir::assignment_count(*nest.root), 1u);
  EXPECT_EQ(ir::collect_guards(*nest.root).size(), 1u);
}

// ---- triangular coalescing ------------------------------------------------------

TEST(GuardedCoalesce, TriangularWitnessStructure) {
  const LoopNest nest = ir::make_triangular_witness(8);
  const auto result = coalesce_guarded(nest);
  ASSERT_TRUE(result.ok()) << result.error().to_string();
  const auto& r = result.value();
  EXPECT_EQ(r.levels, 2u);
  EXPECT_EQ(r.box_points, 64);
  EXPECT_EQ(r.active_points, 36);  // 8*9/2
  EXPECT_EQ(r.guards_emitted, 1u);  // only the upper bound j <= i varies
  EXPECT_TRUE(r.nest.root->parallel);
  EXPECT_EQ(ir::as_constant(r.nest.root->upper).value(), 64);
}

TEST(GuardedCoalesce, TriangularWitnessEquivalent) {
  for (std::int64_t n : {1, 2, 3, 7, 12}) {
    const LoopNest nest = ir::make_triangular_witness(n);
    const auto result = coalesce_guarded(nest);
    ASSERT_TRUE(result.ok());
    EXPECT_TRUE(equivalent_by_execution(nest, result.value().nest)) << n;
  }
}

TEST(GuardedCoalesce, RectangularBandEmitsNoGuard) {
  const LoopNest nest = ir::make_rectangular_witness({5, 4});
  const auto result = coalesce_guarded(nest);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().guards_emitted, 0u);
  EXPECT_EQ(result.value().box_points, result.value().active_points);
  EXPECT_TRUE(equivalent_by_execution(nest, result.value().nest));
}

TEST(GuardedCoalesce, UpperTriangularLowerBoundDependence) {
  // j runs i..n (upper triangle): the *lower* bound varies.
  NestBuilder b;
  const VarId a = b.array("A", {6, 6});
  const VarId i = b.begin_parallel_loop("i", 1, 6);
  const VarId j =
      b.begin_loop_expr("j", var_ref(i), int_const(6), 1, /*parallel=*/true);
  b.assign(b.element(a, {i, j}),
           ir::add(ir::mul(var_ref(i), int_const(10)), var_ref(j)));
  b.end_loop();
  b.end_loop();
  const LoopNest nest = b.build();

  const auto result = coalesce_guarded(nest);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().active_points, 21);
  EXPECT_EQ(result.value().guards_emitted, 1u);
  EXPECT_TRUE(equivalent_by_execution(nest, result.value().nest));
}

TEST(GuardedCoalesce, BandedMatrixBothBoundsVary) {
  // j in i-1 .. i+1 clipped is NOT expressible affinely with min/max, so use
  // the unclipped band over a padded array: j in i..i+2 over A(8, 10).
  NestBuilder b;
  const VarId a = b.array("A", {8, 10});
  const VarId i = b.begin_parallel_loop("i", 1, 8);
  const VarId j = b.begin_loop_expr(
      "j", var_ref(i), ir::add(var_ref(i), int_const(2)), 1, true);
  b.assign(b.element(a, {i, j}), var_ref(j));
  b.end_loop();
  b.end_loop();
  const LoopNest nest = b.build();

  const auto result = coalesce_guarded(nest);
  ASSERT_TRUE(result.ok()) << result.error().to_string();
  EXPECT_EQ(result.value().guards_emitted, 2u);  // both bounds vary
  EXPECT_EQ(result.value().active_points, 24);   // 3 per row
  EXPECT_TRUE(equivalent_by_execution(nest, result.value().nest));
}

TEST(GuardedCoalesce, ThreeDeepWithMiddleDependence) {
  // i: 1..4; j: 1..i; k: 1..3 — the varying level in the middle.
  NestBuilder b;
  const VarId a = b.array("A", {4, 4, 3});
  const VarId i = b.begin_parallel_loop("i", 1, 4);
  const VarId j =
      b.begin_loop_expr("j", int_const(1), var_ref(i), 1, true);
  const VarId k = b.begin_parallel_loop("k", 1, 3);
  b.assign(b.element(a, {i, j, k}),
           ir::add(ir::add(ir::mul(var_ref(i), int_const(100)),
                           ir::mul(var_ref(j), int_const(10))),
                   var_ref(k)));
  b.end_loop();
  b.end_loop();
  b.end_loop();
  const LoopNest nest = b.build();

  const auto result = coalesce_guarded(nest);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().box_points, 4 * 4 * 3);
  EXPECT_EQ(result.value().active_points, 10 * 3);  // sum(i)=10 pairs x 3
  EXPECT_TRUE(equivalent_by_execution(nest, result.value().nest));
}

TEST(GuardedCoalesce, GuardedBodyInsideTriangularBand) {
  // The band body itself contains a guard: guards nest correctly.
  NestBuilder b;
  const VarId a = b.array("A", {6, 6});
  const VarId i = b.begin_parallel_loop("i", 1, 6);
  const VarId j =
      b.begin_loop_expr("j", int_const(1), var_ref(i), 1, true);
  b.begin_if(ir::cmp_ne(var_ref(j), int_const(2)));
  b.assign(b.element(a, {i, j}), int_const(5));
  b.end_if();
  b.end_loop();
  b.end_loop();
  const LoopNest nest = b.build();

  const auto result = coalesce_guarded(nest);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(equivalent_by_execution(nest, result.value().nest));
}

// ---- rejections --------------------------------------------------------------------

TEST(GuardedCoalesce, RejectsNonAffineBound) {
  NestBuilder b;
  const VarId a = b.array("A", {6, 6});
  const VarId idx = b.array("IDX", {6});
  const VarId i = b.begin_parallel_loop("i", 1, 6);
  const VarId j = b.begin_loop_expr(
      "j", int_const(1), ir::array_read(idx, {var_ref(i)}), 1, true);
  b.assign(b.element(a, {i, j}), int_const(1));
  b.end_loop();
  b.end_loop();
  const LoopNest nest = b.build();
  const auto result = coalesce_guarded(nest);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code, support::ErrorCode::kUnsupported);
}

TEST(GuardedCoalesce, RejectsVariableBoundWithStep) {
  NestBuilder b;
  const VarId a = b.array("A", {8, 8});
  const VarId i = b.begin_parallel_loop("i", 1, 8);
  const VarId j = b.begin_loop_expr("j", int_const(1), var_ref(i),
                                    /*step=*/2, true);
  b.assign(b.element(a, {i, j}), int_const(1));
  b.end_loop();
  b.end_loop();
  const LoopNest nest = b.build();
  EXPECT_FALSE(coalesce_guarded(nest).ok());
}

TEST(GuardedCoalesce, RejectsShallowBand) {
  const LoopNest nest = ir::make_recurrence(6);
  EXPECT_FALSE(coalesce_guarded(nest).ok());
}

TEST(GuardedCoalesce, PivotUpdateRectangularOffsetBand) {
  // make_pivot_update: rectangular but offset band with an interior guard.
  const LoopNest nest = ir::make_pivot_update(8, 3);
  const auto result = coalesce_guarded(nest);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().guards_emitted, 0u);  // bounds are constant
  EXPECT_TRUE(equivalent_by_execution(nest, result.value().nest));
}

}  // namespace
}  // namespace coalesce::transform
