// Tests for general loop permutation and the best-parallel-permutation
// search.
#include <gtest/gtest.h>

#include "analysis/doall.hpp"
#include "core/api.hpp"
#include "ir/builder.hpp"
#include "transform/coalesce.hpp"
#include "transform/permute.hpp"

namespace coalesce::transform {
namespace {

using core::equivalent_by_execution;
using ir::int_const;
using ir::LoopNest;
using ir::NestBuilder;
using ir::VarId;
using ir::var_ref;

TEST(Permute, RotatesThreeIndependentLevels) {
  const LoopNest nest = ir::make_rectangular_witness({2, 3, 4});
  const auto rotated = permute(nest, {2, 0, 1});
  ASSERT_TRUE(rotated.ok()) << rotated.error().to_string();
  const auto band = ir::perfect_band(*rotated.value().root);
  EXPECT_EQ(ir::as_constant(band[0]->upper).value(), 4);
  EXPECT_EQ(ir::as_constant(band[1]->upper).value(), 2);
  EXPECT_EQ(ir::as_constant(band[2]->upper).value(), 3);
  EXPECT_TRUE(equivalent_by_execution(nest, rotated.value()));
}

TEST(Permute, IdentityIsAlwaysLegal) {
  const LoopNest nest = ir::make_recurrence(8);
  const auto legal = permutation_legal(nest, {0});
  ASSERT_TRUE(legal.ok());
  EXPECT_TRUE(legal.value());
}

TEST(Permute, AllPermutationsOfIndependentNestAreEquivalent) {
  const LoopNest nest = ir::make_rectangular_witness({2, 3, 2});
  const std::vector<std::vector<std::size_t>> perms = {
      {0, 1, 2}, {0, 2, 1}, {1, 0, 2}, {1, 2, 0}, {2, 0, 1}, {2, 1, 0}};
  for (const auto& perm : perms) {
    const auto permuted = permute(nest, perm);
    ASSERT_TRUE(permuted.ok());
    EXPECT_TRUE(equivalent_by_execution(nest, permuted.value()));
  }
}

TEST(Permute, RejectsDirectionReversingPermutation) {
  // A(i, j) = A(i-1, j+1): distance (1, -1); any permutation placing j
  // first leads with -1: illegal.
  NestBuilder b;
  const VarId a = b.array("A", {8, 8});
  const VarId i = b.begin_loop("i", 2, 7);
  const VarId j = b.begin_loop("jj", 2, 7);
  b.assign(b.element(a, {i, j}),
           ir::array_read(a, {ir::sub(var_ref(i), int_const(1)),
                              ir::add(var_ref(j), int_const(1))}));
  b.end_loop();
  b.end_loop();
  const LoopNest nest = b.build();

  const auto legal = permutation_legal(nest, {1, 0});
  ASSERT_TRUE(legal.ok());
  EXPECT_FALSE(legal.value());
  EXPECT_FALSE(permute(nest, {1, 0}).ok());
}

TEST(Permute, RejectsMalformedInputs) {
  const LoopNest nest = ir::make_rectangular_witness({3, 3});
  EXPECT_FALSE(permute(nest, {0, 0}).ok());      // not a permutation
  EXPECT_FALSE(permute(nest, {0, 2, 1}).ok());   // deeper than the band
  EXPECT_FALSE(permute(ir::make_triangular_witness(4), {1, 0}).ok());
}

TEST(Permute, MatchesInterchangeForAdjacentSwap) {
  // A(i, j) = A(i-1, j-1): distance (1, 1) — swap legal both ways.
  NestBuilder b;
  const VarId a = b.array("A", {8, 8});
  const VarId i = b.begin_loop("i", 2, 8);
  const VarId j = b.begin_loop("jj", 2, 8);
  b.assign(b.element(a, {i, j}),
           ir::array_read(a, {ir::sub(var_ref(i), int_const(1)),
                              ir::sub(var_ref(j), int_const(1))}));
  b.end_loop();
  b.end_loop();
  const LoopNest nest = b.build();
  const auto swapped = permute(nest, {1, 0});
  ASSERT_TRUE(swapped.ok());
  EXPECT_TRUE(equivalent_by_execution(nest, swapped.value()));
}

TEST(BestParallelPermutation, MovesParallelLoopOutward) {
  // A(i, j) = A(i-1, j): the i loop carries a dependence; j is parallel but
  // inner. The best permutation puts j outermost, deepening the leading
  // parallel band from 0 to 1.
  NestBuilder b;
  const VarId a = b.array("A", {8, 8});
  const VarId i = b.begin_loop("i", 2, 8);
  const VarId j = b.begin_loop("jj", 1, 8);
  b.assign(b.element(a, {i, j}),
           ir::array_read(a, {ir::sub(var_ref(i), int_const(1)),
                              var_ref(j)}));
  b.end_loop();
  b.end_loop();
  LoopNest nest = b.build();
  analysis::analyze_and_mark(nest);
  EXPECT_EQ(ir::parallel_band(*nest.root).size(), 0u);  // serial outer

  const auto perm = best_parallel_permutation(nest, 2);
  EXPECT_EQ(perm, (std::vector<std::size_t>{1, 0}));
  auto permuted = permute(nest, perm);
  ASSERT_TRUE(permuted.ok());
  analysis::analyze_and_mark(permuted.value());
  EXPECT_EQ(ir::parallel_band(*permuted.value().root).size(), 1u);
  EXPECT_TRUE(equivalent_by_execution(nest, permuted.value()));
}

TEST(BestParallelPermutation, IdentityWhenAlreadyOptimal) {
  LoopNest nest = ir::make_rectangular_witness({4, 4});
  analysis::analyze_and_mark(nest);
  const auto perm = best_parallel_permutation(nest, 2);
  EXPECT_EQ(perm, (std::vector<std::size_t>{0, 1}));
}

TEST(BestParallelPermutation, EnablesDeeperCoalescing) {
  // 3-deep: serial k sandwiched between parallel i (outer) and parallel j
  // (inner): band depth 1. Moving k innermost gives band depth 2, which
  // coalesce_nest then fuses.
  NestBuilder b;
  const VarId a = b.array("A", {6, 6, 6});
  const VarId i = b.begin_parallel_loop("i", 1, 6);
  const VarId k = b.begin_loop("k", 2, 6);
  const VarId j = b.begin_parallel_loop("jj", 1, 6);
  b.assign(b.element(a, {i, k, j}),
           ir::array_read(a, {var_ref(i),
                              ir::sub(var_ref(k), int_const(1)),
                              var_ref(j)}));
  b.end_loop();
  b.end_loop();
  b.end_loop();
  LoopNest nest = b.build();
  analysis::analyze_and_mark(nest);
  EXPECT_EQ(ir::parallel_band(*nest.root).size(), 1u);

  const auto perm = best_parallel_permutation(nest, 3);
  auto permuted = permute(nest, perm);
  ASSERT_TRUE(permuted.ok());
  analysis::analyze_and_mark(permuted.value());
  EXPECT_GE(ir::parallel_band(*permuted.value().root).size(), 2u);

  const auto coalesced = coalesce_nest(permuted.value());
  ASSERT_TRUE(coalesced.ok());
  EXPECT_TRUE(equivalent_by_execution(nest, coalesced.value().nest));
}

}  // namespace
}  // namespace coalesce::transform
