// Tests for the transformations: coalescing (full, partial, hybrid, both
// recovery styles), normalization, interchange, strip mining, and the static
// metrics. Semantic equivalence is checked by interpreting the original and
// transformed nests on identical inputs and demanding bit-equal arrays.
#include <gtest/gtest.h>

#include "analysis/doall.hpp"
#include "core/api.hpp"
#include "ir/builder.hpp"
#include "ir/eval.hpp"
#include "ir/printer.hpp"
#include "transform/coalesce.hpp"
#include "transform/interchange.hpp"
#include "transform/normalize.hpp"
#include "transform/stats.hpp"
#include "transform/strip_mine.hpp"

namespace coalesce::transform {
namespace {

using core::equivalent_by_execution;
using ir::int_const;
using ir::LoopNest;
using ir::NestBuilder;
using ir::VarId;
using ir::var_ref;

// ---- coalesce_nest structure -------------------------------------------------

TEST(Coalesce, FusesTwoLevelWitness) {
  const LoopNest nest = ir::make_rectangular_witness({4, 3});
  const auto result = coalesce_nest(nest);
  ASSERT_TRUE(result.ok()) << result.error().to_string();
  const auto& r = result.value();
  EXPECT_EQ(r.levels, 2u);
  EXPECT_EQ(r.space.total(), 12);
  EXPECT_TRUE(r.nest.root->parallel);
  EXPECT_EQ(ir::as_constant(r.nest.root->upper).value(), 12);
  // Body: 2 recovery assignments + 1 original statement.
  EXPECT_EQ(r.nest.root->body.size(), 3u);
  EXPECT_EQ(ir::loop_count(*r.nest.root), 1u);
}

TEST(Coalesce, RecoveredVariablesAreTheOriginalInductions) {
  const LoopNest nest = ir::make_rectangular_witness({4, 3});
  const auto result = coalesce_nest(nest);
  ASSERT_TRUE(result.ok());
  const auto& r = result.value();
  ASSERT_EQ(r.recovered.size(), 2u);
  EXPECT_EQ(r.nest.symbols.name(r.recovered[0]), "i0");
  EXPECT_EQ(r.nest.symbols.name(r.recovered[1]), "i1");
  EXPECT_EQ(r.nest.symbols.name(r.coalesced_var), "j");
}

TEST(Coalesce, ThreeAndFourDeepBands) {
  for (const auto& extents :
       {std::vector<std::int64_t>{3, 4, 5}, std::vector<std::int64_t>{2, 3, 2, 2}}) {
    const LoopNest nest = ir::make_rectangular_witness(extents);
    const auto result = coalesce_nest(nest);
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result.value().levels, extents.size());
    EXPECT_EQ(ir::loop_count(*result.value().nest.root), 1u);
  }
}

TEST(Coalesce, PartialLevelsKeepsInnerLoops) {
  const LoopNest nest = ir::make_rectangular_witness({3, 4, 5});
  CoalesceOptions options;
  options.levels = 2;  // collapse(2): fuse i0, i1; keep i2
  const auto result = coalesce_nest(nest, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().levels, 2u);
  EXPECT_EQ(result.value().space.total(), 12);
  EXPECT_EQ(ir::loop_count(*result.value().nest.root), 2u);
}

TEST(Coalesce, MatmulFusesIJAroundReduction) {
  LoopNest nest = ir::make_matmul(4, 6, 5);
  const auto result = coalesce_nest(nest);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().levels, 2u);
  EXPECT_EQ(result.value().space.total(), 24);
  EXPECT_EQ(ir::loop_count(*result.value().nest.root), 2u);  // j-loop + k
}

TEST(Coalesce, CoalescedNameCollisionGetsFreshName) {
  NestBuilder b;
  const VarId a = b.array("A", {4, 4});
  b.scalar("j");  // taken
  const VarId i0 = b.begin_parallel_loop("x", 1, 4);
  const VarId i1 = b.begin_parallel_loop("y", 1, 4);
  b.assign(b.element(a, {i0, i1}), int_const(1));
  b.end_loop();
  b.end_loop();
  const LoopNest nest = b.build();
  const auto result = coalesce_nest(nest);
  ASSERT_TRUE(result.ok());
  EXPECT_NE(result.value().nest.symbols.name(result.value().coalesced_var),
            "j");
}

// ---- legality rejections -------------------------------------------------------

TEST(Coalesce, RejectsDepthOneBand) {
  const LoopNest nest = ir::make_rectangular_witness({8});
  const auto result = coalesce_nest(nest);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code, support::ErrorCode::kIllegalTransform);
}

TEST(Coalesce, RejectsSerialOuterLoop) {
  const LoopNest nest = ir::make_recurrence(8);
  EXPECT_FALSE(coalesce_nest(nest).ok());
}

TEST(Coalesce, RejectsMoreLevelsThanBand) {
  const LoopNest nest = ir::make_rectangular_witness({3, 4});
  CoalesceOptions options;
  options.levels = 3;
  const auto result = coalesce_nest(nest, options);
  ASSERT_FALSE(result.ok());
}

TEST(Coalesce, RejectsNonConstantBounds) {
  NestBuilder b;
  const VarId n = b.param("n");
  const VarId a = b.array("A", {10, 10});
  const VarId i = b.begin_loop_expr("i", int_const(1), var_ref(n), 1, true);
  const VarId j = b.begin_parallel_loop("jj", 1, 10);
  b.assign(b.element(a, {i, j}), int_const(1));
  b.end_loop();
  b.end_loop();
  const LoopNest nest = b.build();
  const auto result = coalesce_nest(nest);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.error().message.find("non-constant"), std::string::npos);
}

TEST(Coalesce, RejectsTriangularBand) {
  // Inner bound depends on the outer variable: not rectangular, and also
  // not constant — must be rejected, not silently mis-coalesced.
  NestBuilder b;
  const VarId a = b.array("A", {10, 10});
  const VarId i = b.begin_parallel_loop("i", 1, 10);
  const VarId j = b.begin_loop_expr("jj", int_const(1), var_ref(i), 1, true);
  b.assign(b.element(a, {i, j}), int_const(1));
  b.end_loop();
  b.end_loop();
  const LoopNest nest = b.build();
  EXPECT_FALSE(coalesce_nest(nest).ok());
}

TEST(Coalesce, RejectsEmptyLoop) {
  NestBuilder b;
  const VarId a = b.array("A", {4, 4});
  const VarId i = b.begin_parallel_loop("i", 3, 2);  // empty
  const VarId j = b.begin_parallel_loop("jj", 1, 4);
  b.assign(b.element(a, {j, j}), int_const(1));
  b.end_loop();
  b.end_loop();
  (void)i;
  const LoopNest nest = b.build();
  const auto result = coalesce_nest(nest);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.error().message.find("empty"), std::string::npos);
}

TEST(Coalesce, RejectsBodyAssigningBandVariable) {
  NestBuilder b;
  const VarId a = b.array("A", {4, 4});
  const VarId i = b.begin_parallel_loop("i", 1, 4);
  const VarId j = b.begin_parallel_loop("jj", 1, 4);
  b.assign(i, int_const(2));  // clobbers the band variable
  b.assign(b.element(a, {i, j}), int_const(1));
  b.end_loop();
  b.end_loop();
  const LoopNest nest = b.build();
  EXPECT_FALSE(coalesce_nest(nest).ok());
}

TEST(Coalesce, InputNestIsNotModified) {
  const LoopNest nest = ir::make_rectangular_witness({3, 4});
  const std::string before = ir::to_string(nest);
  const auto result = coalesce_nest(nest);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(ir::to_string(nest), before);
}

// ---- semantic equivalence (the core property) ---------------------------------

struct EquivCase {
  std::vector<std::int64_t> extents;
  RecoveryStyle style;
};

class CoalesceEquivalence : public ::testing::TestWithParam<EquivCase> {};

TEST_P(CoalesceEquivalence, WitnessNestProducesIdenticalArrays) {
  const LoopNest nest = ir::make_rectangular_witness(GetParam().extents);
  CoalesceOptions options;
  options.recovery = GetParam().style;
  const auto result = coalesce_nest(nest, options);
  ASSERT_TRUE(result.ok()) << result.error().to_string();
  EXPECT_TRUE(equivalent_by_execution(nest, result.value().nest));
}

INSTANTIATE_TEST_SUITE_P(
    ShapesAndStyles, CoalesceEquivalence,
    ::testing::Values(
        EquivCase{{2, 3}, RecoveryStyle::kPaperClosedForm},
        EquivCase{{2, 3}, RecoveryStyle::kMixedRadix},
        EquivCase{{5, 1}, RecoveryStyle::kPaperClosedForm},
        EquivCase{{1, 5}, RecoveryStyle::kPaperClosedForm},
        EquivCase{{1, 1}, RecoveryStyle::kMixedRadix},
        EquivCase{{7, 11}, RecoveryStyle::kPaperClosedForm},
        EquivCase{{3, 4, 5}, RecoveryStyle::kPaperClosedForm},
        EquivCase{{3, 4, 5}, RecoveryStyle::kMixedRadix},
        EquivCase{{2, 2, 2, 2}, RecoveryStyle::kPaperClosedForm},
        EquivCase{{6, 1, 4}, RecoveryStyle::kMixedRadix}));

TEST(CoalesceEquivalenceWorkloads, Matmul) {
  const LoopNest nest = ir::make_matmul(5, 4, 6);
  const auto result = coalesce_nest(nest);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(equivalent_by_execution(nest, result.value().nest));
}

TEST(CoalesceEquivalenceWorkloads, GaussJordanBacksolve) {
  const LoopNest nest = ir::make_gauss_jordan_backsolve(6, 4);
  const auto result = coalesce_nest(nest);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(equivalent_by_execution(nest, result.value().nest));
}

TEST(CoalesceEquivalenceWorkloads, JacobiWithNonUnitLowerBounds) {
  const LoopNest nest = ir::make_jacobi_step(6);
  const auto result = coalesce_nest(nest);
  ASSERT_TRUE(result.ok());
  // Band lower bounds are 2..n+1: exercises LevelGeometry lower != 1.
  EXPECT_EQ(result.value().space.level(0).lower, 2);
  EXPECT_TRUE(equivalent_by_execution(nest, result.value().nest));
}

TEST(CoalesceEquivalenceWorkloads, SteppedBand) {
  NestBuilder b;
  const VarId a = b.array("A", {20, 20});
  const VarId i = b.begin_parallel_loop("i", 2, 20, 3);   // 2,5,...,20
  const VarId j = b.begin_parallel_loop("jj", 1, 19, 2);  // 1,3,...,19
  b.assign(b.element(a, {i, j}),
           ir::add(ir::mul(var_ref(i), int_const(100)), var_ref(j)));
  b.end_loop();
  b.end_loop();
  const LoopNest nest = b.build();
  const auto result = coalesce_nest(nest);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().space.total(), 7 * 10);
  EXPECT_TRUE(equivalent_by_execution(nest, result.value().nest));
}

TEST(CoalesceEquivalenceWorkloads, PartialOfThreeDeep) {
  const LoopNest nest = ir::make_rectangular_witness({3, 4, 5});
  CoalesceOptions options;
  options.levels = 2;
  const auto result = coalesce_nest(nest, options);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(equivalent_by_execution(nest, result.value().nest));
}

// ---- recovery expressions -----------------------------------------------------

TEST(RecoveryExpression, PaperFormDivisionCounts) {
  const auto space =
      index::CoalescedSpace::create(std::vector<support::i64>{4, 3}).value();
  ir::SymbolTable symbols;
  const VarId j = symbols.declare("j", ir::SymbolKind::kInduction);
  const auto e0 =
      recovery_expression(space, 0, j, RecoveryStyle::kPaperClosedForm);
  const auto e1 =
      recovery_expression(space, 1, j, RecoveryStyle::kPaperClosedForm);
  EXPECT_EQ(ir::division_count(e0), 2u);
  // Innermost level: ceil(j / P_{m+1}) = ceil(j / 1) folds to j, leaving a
  // single floor division — the emitted code is cheaper than the formula's
  // nominal 2 divisions per level.
  EXPECT_EQ(ir::division_count(e1), 1u);
}

TEST(RecoveryExpression, InnermostMixedRadixSimplifies) {
  // Innermost level: (j-1)/1 mod N + 1 -> mod(j-1, N) + 1: one division.
  const auto space =
      index::CoalescedSpace::create(std::vector<support::i64>{4, 3}).value();
  ir::SymbolTable symbols;
  const VarId j = symbols.declare("j", ir::SymbolKind::kInduction);
  const auto e1 = recovery_expression(space, 1, j, RecoveryStyle::kMixedRadix);
  EXPECT_EQ(ir::division_count(e1), 1u);
}

TEST(RecoveryExpression, EvaluatesToDecodeOriginal) {
  const auto space = index::CoalescedSpace::create(
                         {index::LevelGeometry{3, 4, 2},
                          index::LevelGeometry{-1, 3, 1}})
                         .value();
  ir::SymbolTable symbols;
  const VarId j = symbols.declare("j", ir::SymbolKind::kInduction);
  for (auto style : {RecoveryStyle::kPaperClosedForm,
                     RecoveryStyle::kMixedRadix}) {
    std::vector<support::i64> expect(2);
    for (support::i64 jj = 1; jj <= space.total(); ++jj) {
      space.decode_original(jj, expect);
      for (std::size_t level = 0; level < 2; ++level) {
        const auto expr = recovery_expression(space, level, j, style);
        const auto value =
            ir::as_constant(ir::simplify(ir::substitute(expr, j,
                                                        int_const(jj))));
        ASSERT_TRUE(value.has_value());
        EXPECT_EQ(*value, expect[level]) << "j=" << jj << " level=" << level;
      }
    }
  }
}

// ---- coalesce_all (hybrid nests) -----------------------------------------------

TEST(CoalesceAll, HandlesSerialOuterParallelInnerBand) {
  // do t { doall i { doall j { ... } } }: the inner band is fused in place.
  NestBuilder b;
  const VarId a = b.array("A", {4, 4});
  const VarId t = b.begin_loop("t", 1, 3);  // serial time loop
  const VarId i = b.begin_parallel_loop("i", 1, 4);
  const VarId j = b.begin_parallel_loop("jj", 1, 4);
  b.assign(b.element(a, {i, j}),
           ir::add(b.read(a, {i, j}), var_ref(t)));
  b.end_loop();
  b.end_loop();
  b.end_loop();
  const LoopNest nest = b.build();

  const auto result = coalesce_all(nest);
  EXPECT_EQ(result.bands_coalesced, 1u);
  // Serial outer survives; inside it a single coalesced loop.
  EXPECT_FALSE(result.nest.root->parallel);
  EXPECT_EQ(ir::loop_count(*result.nest.root), 2u);
  EXPECT_TRUE(equivalent_by_execution(nest, result.nest));
}

TEST(CoalesceAll, FusesRootBandAndLeavesReductionAlone) {
  const LoopNest nest = ir::make_matmul(4, 4, 4);
  const auto result = coalesce_all(nest);
  EXPECT_EQ(result.bands_coalesced, 1u);
  EXPECT_TRUE(equivalent_by_execution(nest, result.nest));
}

TEST(CoalesceAll, LeavesUncoalescibleTreesUntouched) {
  const LoopNest nest = ir::make_recurrence(8);
  const auto result = coalesce_all(nest);
  EXPECT_EQ(result.bands_coalesced, 0u);
  EXPECT_EQ(ir::to_string(result.nest), ir::to_string(nest));
}

TEST(CoalesceAll, TwoIndependentBandsBothFused) {
  // A serial loop containing two disjoint 2-deep parallel bands.
  NestBuilder b;
  const VarId a = b.array("A", {3, 3});
  const VarId c = b.array("C", {3, 3});
  const VarId t = b.begin_loop("t", 1, 2);
  {
    const VarId i = b.begin_parallel_loop("i", 1, 3);
    const VarId j = b.begin_parallel_loop("jj", 1, 3);
    b.assign(b.element(a, {i, j}), ir::add(b.read(a, {i, j}), var_ref(t)));
    b.end_loop();
    b.end_loop();
  }
  {
    const VarId p = b.begin_parallel_loop("p", 1, 3);
    const VarId q = b.begin_parallel_loop("q", 1, 3);
    b.assign(b.element(c, {p, q}), ir::add(b.read(c, {p, q}), int_const(1)));
    b.end_loop();
    b.end_loop();
  }
  b.end_loop();
  const LoopNest nest = b.build();
  const auto result = coalesce_all(nest);
  EXPECT_EQ(result.bands_coalesced, 2u);
  EXPECT_TRUE(equivalent_by_execution(nest, result.nest));
}

// ---- normalization --------------------------------------------------------------

TEST(Normalize, RewritesLowerBoundAndStep) {
  NestBuilder b;
  const VarId a = b.array("A", {20});
  const VarId i = b.begin_parallel_loop("i", 5, 19, 2);  // 5,7,...,19
  b.assign(b.element(a, {i}), var_ref(i));
  b.end_loop();
  const LoopNest nest = b.build();

  const auto normalized = normalize_nest(nest);
  ASSERT_TRUE(normalized.ok());
  EXPECT_TRUE(fully_normalized(*normalized.value().root));
  EXPECT_EQ(ir::constant_trip_count(*normalized.value().root).value(), 8);
  EXPECT_TRUE(equivalent_by_execution(nest, normalized.value()));
}

TEST(Normalize, LeavesNormalLoopsAlone) {
  const LoopNest nest = ir::make_rectangular_witness({4, 3});
  const auto normalized = normalize_nest(nest);
  ASSERT_TRUE(normalized.ok());
  EXPECT_EQ(ir::to_string(normalized.value()), ir::to_string(nest));
}

TEST(Normalize, RecursesIntoInnerLoops) {
  const LoopNest nest = ir::make_jacobi_step(5);  // bounds 2..n+1
  const auto normalized = normalize_nest(nest);
  ASSERT_TRUE(normalized.ok());
  EXPECT_TRUE(fully_normalized(*normalized.value().root));
  EXPECT_TRUE(equivalent_by_execution(nest, normalized.value()));
}

TEST(Normalize, RejectsSelfReferencingBounds) {
  NestBuilder b;
  const VarId a = b.array("A", {10});
  const VarId i = b.begin_loop_expr("i", int_const(1), int_const(5));
  b.assign(b.element(a, {i}), int_const(1));
  b.end_loop();
  LoopNest nest = b.build();
  // Manually corrupt: upper references the loop's own variable.
  nest.root->upper = var_ref(nest.root->var);
  EXPECT_FALSE(normalize_nest(nest).ok());
}

TEST(Normalize, ThenCoalesceHandlesOffsetBands) {
  const LoopNest nest = ir::make_jacobi_step(6);
  const auto normalized = normalize_nest(nest);
  ASSERT_TRUE(normalized.ok());
  const auto result = coalesce_nest(normalized.value());
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(equivalent_by_execution(nest, result.value().nest));
}

// ---- interchange ----------------------------------------------------------------

TEST(Interchange, SwapsRectangularParallelLevels) {
  const LoopNest nest = ir::make_rectangular_witness({3, 5});
  const auto swapped = interchange(nest, 0);
  ASSERT_TRUE(swapped.ok()) << swapped.error().to_string();
  const auto band = ir::perfect_band(*swapped.value().root);
  ASSERT_EQ(band.size(), 2u);
  EXPECT_EQ(ir::as_constant(band[0]->upper).value(), 5);
  EXPECT_EQ(ir::as_constant(band[1]->upper).value(), 3);
  EXPECT_TRUE(equivalent_by_execution(nest, swapped.value()));
}

TEST(Interchange, LegalWhenDistancePositiveAtBothLevels) {
  // A(i, j) = A(i-1, j-1): distance (1, 1) stays lexicographically positive
  // under the swap.
  NestBuilder b;
  const VarId a = b.array("A", {8, 8});
  const VarId i = b.begin_loop("i", 2, 8);
  const VarId j = b.begin_loop("jj", 2, 8);
  b.assign(b.element(a, {i, j}),
           ir::array_read(a, {ir::sub(var_ref(i), int_const(1)),
                              ir::sub(var_ref(j), int_const(1))}));
  b.end_loop();
  b.end_loop();
  const LoopNest nest = b.build();
  const auto legal = interchange_legal(nest, 0);
  ASSERT_TRUE(legal.ok());
  EXPECT_TRUE(legal.value());
  const auto swapped = interchange(nest, 0);
  ASSERT_TRUE(swapped.ok());
  EXPECT_TRUE(equivalent_by_execution(nest, swapped.value()));
}

TEST(Interchange, IllegalWhenSwapFlipsDirection) {
  // A(i, j) = A(i-1, j+1): distance (1, -1); swapping makes (-1, 1): illegal.
  NestBuilder b;
  const VarId a = b.array("A", {8, 8});
  const VarId i = b.begin_loop("i", 2, 7);
  const VarId j = b.begin_loop("jj", 2, 7);
  b.assign(b.element(a, {i, j}),
           ir::array_read(a, {ir::sub(var_ref(i), int_const(1)),
                              ir::add(var_ref(j), int_const(1))}));
  b.end_loop();
  b.end_loop();
  const LoopNest nest = b.build();
  const auto legal = interchange_legal(nest, 0);
  ASSERT_TRUE(legal.ok());
  EXPECT_FALSE(legal.value());
  EXPECT_FALSE(interchange(nest, 0).ok());
}

TEST(Interchange, RejectsTooShallowBand) {
  const LoopNest nest = ir::make_rectangular_witness({4});
  EXPECT_FALSE(interchange(nest, 0).ok());
}

TEST(Interchange, RejectsNonRectangular) {
  NestBuilder b;
  const VarId a = b.array("A", {10, 10});
  const VarId i = b.begin_parallel_loop("i", 1, 10);
  const VarId j = b.begin_loop_expr("jj", int_const(1), var_ref(i), 1, true);
  b.assign(b.element(a, {i, j}), int_const(1));
  b.end_loop();
  b.end_loop();
  const LoopNest nest = b.build();
  EXPECT_FALSE(interchange(nest, 0).ok());
}

// ---- strip mining ----------------------------------------------------------------

TEST(StripMine, SplitsAndStaysEquivalent) {
  NestBuilder b;
  const VarId a = b.array("A", {17});
  const VarId i = b.begin_parallel_loop("i", 1, 17);
  b.assign(b.element(a, {i}), ir::mul(var_ref(i), var_ref(i)));
  b.end_loop();
  const LoopNest nest = b.build();

  const auto mined = strip_mine(nest, 5);
  ASSERT_TRUE(mined.ok());
  const auto band = ir::perfect_band(*mined.value().root);
  ASSERT_EQ(band.size(), 2u);
  EXPECT_EQ(ir::as_constant(band[0]->upper).value(), 4);  // ceil(17/5)
  EXPECT_TRUE(band[0]->parallel);
  EXPECT_FALSE(band[1]->parallel);
  EXPECT_TRUE(equivalent_by_execution(nest, mined.value()));
}

TEST(StripMine, ExactDivision) {
  NestBuilder b;
  const VarId a = b.array("A", {16});
  const VarId i = b.begin_parallel_loop("i", 1, 16);
  b.assign(b.element(a, {i}), var_ref(i));
  b.end_loop();
  const LoopNest nest = b.build();
  const auto mined = strip_mine(nest, 4);
  ASSERT_TRUE(mined.ok());
  EXPECT_TRUE(equivalent_by_execution(nest, mined.value()));
}

TEST(StripMine, RejectsBadInputs) {
  const LoopNest nest = ir::make_rectangular_witness({8});
  EXPECT_FALSE(strip_mine(nest, 0).ok());
  const LoopNest offset = ir::make_jacobi_step(4);  // lower bound 2
  EXPECT_FALSE(strip_mine(offset, 2).ok());
}

// ---- static metrics ---------------------------------------------------------------

TEST(Stats, WitnessBeforeAndAfterCoalescing) {
  const LoopNest nest = ir::make_rectangular_witness({10, 20});
  const NestStats before = compute_stats(nest);
  EXPECT_EQ(before.loops, 2u);
  EXPECT_EQ(before.parallel_loops, 2u);
  EXPECT_EQ(before.max_depth, 2u);
  // Outer parallel loop entered once; inner entered once per outer iter.
  EXPECT_EQ(before.fork_join_points, 1u + 10u);
  EXPECT_EQ(before.loop_iterations, 10u + 200u);
  EXPECT_EQ(before.assignment_instances, 200u);
  EXPECT_EQ(before.division_ops, 0u);

  const auto result = coalesce_nest(nest);
  ASSERT_TRUE(result.ok());
  const NestStats after = compute_stats(result.value().nest);
  EXPECT_EQ(after.loops, 1u);
  EXPECT_EQ(after.fork_join_points, 1u);       // the paper's headline effect
  EXPECT_EQ(after.loop_iterations, 200u);
  EXPECT_EQ(after.assignment_instances, 600u); // 2 recovery + 1 body per iter
  // 2 divisions for the outer level + 1 for the inner (cdiv(j,1) folded).
  EXPECT_EQ(after.division_ops, 200u * 3u);
}

TEST(Stats, MatmulDepth) {
  const NestStats stats = compute_stats(ir::make_matmul(4, 5, 6));
  EXPECT_EQ(stats.loops, 3u);
  EXPECT_EQ(stats.max_depth, 3u);
  EXPECT_EQ(stats.parallel_loops, 2u);
  EXPECT_EQ(stats.fork_join_points, 1u + 4u);
  EXPECT_EQ(stats.assignment_instances, 4u * 5u + 4u * 5u * 6u);
}

}  // namespace
}  // namespace coalesce::transform
