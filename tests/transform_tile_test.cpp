// Tests for tiling and tile-then-coalesce.
#include <gtest/gtest.h>

#include "core/api.hpp"
#include "ir/builder.hpp"
#include "ir/printer.hpp"
#include "transform/normalize.hpp"
#include "transform/tile.hpp"

namespace coalesce::transform {
namespace {

using core::equivalent_by_execution;
using ir::LoopNest;

TEST(Tile, StructureOfTiledWitness) {
  const LoopNest nest = ir::make_rectangular_witness({10, 12});
  const auto tiled = tile2(nest, 4, 5);
  ASSERT_TRUE(tiled.ok()) << tiled.error().to_string();
  const auto band = ir::perfect_band(*tiled.value().root);
  ASSERT_EQ(band.size(), 4u);
  EXPECT_TRUE(band[0]->parallel);   // it
  EXPECT_TRUE(band[1]->parallel);   // jt
  EXPECT_FALSE(band[2]->parallel);  // i strip
  EXPECT_FALSE(band[3]->parallel);  // j strip
  EXPECT_EQ(ir::as_constant(band[0]->upper).value(), 3);  // ceil(10/4)
  EXPECT_EQ(ir::as_constant(band[1]->upper).value(), 3);  // ceil(12/5)
}

class TileSweep
    : public ::testing::TestWithParam<std::tuple<int, int, int, int>> {};

TEST_P(TileSweep, TiledNestIsEquivalent) {
  const auto [n, m, ti, tj] = GetParam();
  const LoopNest nest = ir::make_rectangular_witness({n, m});
  const auto tiled = tile2(nest, ti, tj);
  ASSERT_TRUE(tiled.ok());
  EXPECT_TRUE(equivalent_by_execution(nest, tiled.value()));
}

TEST_P(TileSweep, TileAndCoalesceIsEquivalent) {
  const auto [n, m, ti, tj] = GetParam();
  const LoopNest nest = ir::make_rectangular_witness({n, m});
  const auto result = tile_and_coalesce(nest, ti, tj);
  ASSERT_TRUE(result.ok()) << result.error().to_string();
  // One parallel loop over all tiles.
  EXPECT_TRUE(result.value().nest.root->parallel);
  EXPECT_EQ(result.value().space.total(),
            support::ceil_div(n, ti) * support::ceil_div(m, tj));
  EXPECT_TRUE(equivalent_by_execution(nest, result.value().nest));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, TileSweep,
    ::testing::Values(std::make_tuple(10, 12, 4, 5),   // ragged tiles
                      std::make_tuple(8, 8, 4, 4),     // exact tiles
                      std::make_tuple(7, 3, 10, 10),   // tile > extent
                      std::make_tuple(5, 5, 1, 1),     // degenerate tiles
                      std::make_tuple(16, 2, 3, 2),
                      std::make_tuple(1, 9, 2, 4)));

TEST(Tile, MatmulTiledKeepsReductionInside) {
  const LoopNest nest = ir::make_matmul(6, 6, 4);
  const auto result = tile_and_coalesce(nest, 3, 2);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(equivalent_by_execution(nest, result.value().nest));
  // 2x3 = 6 tiles.
  EXPECT_EQ(result.value().space.total(), 6);
}

TEST(Tile, RejectsBadInputs) {
  EXPECT_FALSE(tile2(ir::make_rectangular_witness({8, 8}), 0, 4).ok());
  EXPECT_FALSE(tile2(ir::make_rectangular_witness({8}), 2, 2).ok());
  EXPECT_FALSE(tile2(ir::make_recurrence(8), 2, 2).ok());
  // Non-normalized band (jacobi: lower bound 2) is rejected until
  // normalized.
  EXPECT_FALSE(tile2(ir::make_jacobi_step(6), 2, 2).ok());
  const auto normalized = normalize_nest(ir::make_jacobi_step(6));
  ASSERT_TRUE(normalized.ok());
  const auto tiled = tile2(normalized.value(), 2, 3);
  ASSERT_TRUE(tiled.ok());
  EXPECT_TRUE(
      equivalent_by_execution(ir::make_jacobi_step(6), tiled.value()));
}

TEST(Tile, CoalescedTileLoopCountsMatchChunking) {
  // tile_and_coalesce(N x M, tx, ty) over P workers is chunk scheduling
  // with chunk = tx*ty expressed at the source level: the coalesced tile
  // count equals the chunk count of the equivalent chunked dispatch.
  const LoopNest nest = ir::make_rectangular_witness({32, 32});
  const auto result = tile_and_coalesce(nest, 8, 8);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().space.total(), 16);  // 1024 / 64 per tile
}

}  // namespace
}  // namespace coalesce::transform
