#!/usr/bin/env python3
"""Compare two bench_harness --json outputs and flag regressions.

Usage:
    bench_compare.py baseline.json current.json [--threshold 0.10]
                     [--metrics name1,name2,...]

Records are matched by their string fields (kind, schedule, variant, ...):
two records pair up when every string field agrees. Numeric fields are then
compared pairwise:

  * fields whose name contains "ns" (per-op / per-iter / per-decode times)
    are lower-is-better: a regression is current > baseline * (1 + t);
  * fields named "ratio" are higher-is-better (old-path cost over new-path
    cost): a regression is current < baseline * (1 - t);
  * every other numeric field (sizes, op counts) is informational only.

--metrics restricts the comparison to the named fields. Exit status is 1
when any regression beyond the threshold is found, else 0 — suitable as a
CI gate around the E16 hot-path bench.
"""

import argparse
import json
import sys


def record_key(record):
    """Identity of a record: its string fields, in a stable order."""
    return tuple(
        sorted((k, v) for k, v in record.items() if isinstance(v, str))
    )


def numeric_fields(record):
    return {
        k: v
        for k, v in record.items()
        if isinstance(v, (int, float)) and not isinstance(v, bool)
    }


def direction(metric):
    """-1 = lower is better, +1 = higher is better, 0 = informational."""
    if metric == "ratio":
        return 1
    if "ns" in metric.split("_") or metric.endswith("_ns"):
        return -1
    return 0


def load_records(path):
    with open(path) as f:
        doc = json.load(f)
    return doc.get("bench", "?"), doc.get("records", [])


def main():
    parser = argparse.ArgumentParser(
        description="Diff two bench --json outputs, flag regressions."
    )
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.10,
        help="relative change tolerated before a metric counts as a "
        "regression (default 0.10 = 10%%)",
    )
    parser.add_argument(
        "--metrics",
        default="",
        help="comma-separated list of numeric fields to compare "
        "(default: every time metric and every ratio)",
    )
    args = parser.parse_args()

    base_name, base_records = load_records(args.baseline)
    cur_name, cur_records = load_records(args.current)
    if base_name != cur_name:
        print(
            f"warning: comparing different benches "
            f"({base_name!r} vs {cur_name!r})",
            file=sys.stderr,
        )

    selected = {m for m in args.metrics.split(",") if m}
    baseline_by_key = {}
    for record in base_records:
        baseline_by_key.setdefault(record_key(record), []).append(record)

    regressions = []
    compared = 0
    unmatched = 0
    for record in cur_records:
        candidates = baseline_by_key.get(record_key(record))
        if not candidates:
            unmatched += 1
            continue
        base = candidates.pop(0)
        label = " ".join(
            f"{k}={v}" for k, v in record.items() if isinstance(v, str)
        )
        base_nums = numeric_fields(base)
        for metric, cur_value in numeric_fields(record).items():
            if selected and metric not in selected:
                continue
            sense = direction(metric)
            if sense == 0 and not selected:
                continue
            if metric not in base_nums:
                continue
            base_value = base_nums[metric]
            if base_value == 0:
                continue
            compared += 1
            change = (cur_value - base_value) / abs(base_value)
            worse = (sense <= 0 and change > args.threshold) or (
                sense > 0 and change < -args.threshold
            )
            marker = "REGRESSION" if worse else "ok"
            print(
                f"{marker:>10}  {label}  {metric}: "
                f"{base_value:.4g} -> {cur_value:.4g} "
                f"({change:+.1%})"
            )
            if worse:
                regressions.append((label, metric, base_value, cur_value))

    if unmatched:
        print(
            f"note: {unmatched} current record(s) had no baseline match",
            file=sys.stderr,
        )
    if compared == 0:
        print("error: no comparable metrics found", file=sys.stderr)
        return 1
    if regressions:
        print(
            f"\n{len(regressions)} regression(s) beyond "
            f"{args.threshold:.0%}:",
            file=sys.stderr,
        )
        for label, metric, base_value, cur_value in regressions:
            print(
                f"  {label}  {metric}: {base_value:.4g} -> {cur_value:.4g}",
                file=sys.stderr,
            )
        return 1
    print(f"\nall {compared} compared metrics within {args.threshold:.0%}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
