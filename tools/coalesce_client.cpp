// coalesce-client — CLI client and load generator for the coalesced daemon.
//
// Single-shot mode submits one .loop program and prints the run summary
// (or the rejection diagnostics). Load-generator mode (--threads/--repeat)
// hammers the daemon from T concurrent connections and reports throughput
// and p50/p99 latency — the same loop bench_e19_service runs in-process.
//
// Usage:
//   coalesce-client --socket=PATH [options] [file]
//   coalesce-client --tcp=HOST:PORT [options] [file]
//
// The program is read from `file`, or stdin with --stdin / "-" / no file.
//
// Options:
//   --stdin              read the program from stdin
//   --priority=P         normal (default) | high (engine priority class)
//   --deadline-ms=N      per-request deadline (0 = none)
//   --tenant=NAME        quota bucket to submit under ("" = anonymous)
//   --schedule=SPEC      per-request schedule override (static-block,
//                        static-cyclic, self, chunked:N, guided, factoring,
//                        trapezoid, auto); default: the server's schedule
//   --want-data          print final array contents from the response
//   --threads=T          load generator: T concurrent client connections
//   --repeat=R           load generator: R submissions per connection
//   --ping               liveness probe instead of a submission
//   --stats              print the server's counters snapshot
//   --shutdown           ask the daemon to stop gracefully
//
// Exit codes: 0 ok, 1 rejected at admission, 2 usage/connect failure,
// 3 transport or server error, 4 shed (retry with backoff).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "coalesce.hpp"

namespace {

using namespace coalesce;

struct Options {
  std::string socket_path;
  std::string tcp_host;
  std::uint16_t tcp_port = 0;
  bool use_tcp = false;
  std::string input_path;
  std::uint8_t priority = 0;
  std::uint32_t deadline_ms = 0;
  std::string tenant;
  std::string schedule;
  bool want_data = false;
  std::size_t threads = 0;  // 0: single-shot mode
  std::size_t repeat = 1;
  bool ping = false;
  bool stats = false;
  bool shutdown = false;
};

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s (--socket=PATH | --tcp=HOST:PORT) [--stdin] "
               "[--priority=normal|high] [--deadline-ms=N] [--tenant=NAME] "
               "[--schedule=SPEC] [--want-data] [--threads=T] [--repeat=R] "
               "[--ping|--stats|--shutdown] [file]\n",
               argv0);
  return 2;
}

bool parse_args(int argc, char** argv, Options& options) {
  for (int a = 1; a < argc; ++a) {
    const std::string arg = argv[a];
    if (arg.rfind("--socket=", 0) == 0) {
      options.socket_path = arg.substr(9);
    } else if (arg.rfind("--tcp=", 0) == 0) {
      const std::string spec = arg.substr(6);
      const auto colon = spec.rfind(':');
      if (colon == std::string::npos || colon + 1 >= spec.size()) return false;
      options.tcp_host = spec.substr(0, colon);
      const long long port = std::strtoll(spec.c_str() + colon + 1, nullptr, 10);
      if (port <= 0 || port > 65535) return false;
      options.tcp_port = static_cast<std::uint16_t>(port);
      options.use_tcp = true;
    } else if (arg == "--stdin") {
      options.input_path = "-";
    } else if (arg.rfind("--priority=", 0) == 0) {
      const std::string p = arg.substr(11);
      if (p == "normal") options.priority = 0;
      else if (p == "high") options.priority = 1;
      else return false;
    } else if (arg.rfind("--deadline-ms=", 0) == 0) {
      options.deadline_ms = static_cast<std::uint32_t>(
          std::strtoul(arg.c_str() + 14, nullptr, 10));
    } else if (arg.rfind("--tenant=", 0) == 0) {
      options.tenant = arg.substr(9);
    } else if (arg.rfind("--schedule=", 0) == 0) {
      options.schedule = arg.substr(11);
    } else if (arg == "--want-data") {
      options.want_data = true;
    } else if (arg.rfind("--threads=", 0) == 0) {
      options.threads = static_cast<std::size_t>(
          std::strtoull(arg.c_str() + 10, nullptr, 10));
      if (options.threads == 0) return false;
    } else if (arg.rfind("--repeat=", 0) == 0) {
      options.repeat = static_cast<std::size_t>(
          std::strtoull(arg.c_str() + 9, nullptr, 10));
      if (options.repeat == 0) return false;
    } else if (arg == "--ping") {
      options.ping = true;
    } else if (arg == "--stats") {
      options.stats = true;
    } else if (arg == "--shutdown") {
      options.shutdown = true;
    } else if (arg != "-" && !arg.empty() && arg[0] == '-') {
      return false;
    } else {
      options.input_path = arg;
    }
  }
  return !options.socket_path.empty() || options.use_tcp;
}

support::Expected<support::Socket> connect(const Options& options) {
  if (options.use_tcp) {
    return support::connect_tcp(options.tcp_host, options.tcp_port);
  }
  return support::connect_unix(options.socket_path);
}

int status_exit_code(service::Status status) {
  switch (status) {
    case service::Status::kOk: return 0;
    case service::Status::kRejected: return 1;
    case service::Status::kShed: return 4;
    case service::Status::kError: return 3;
  }
  return 3;
}

void print_summary(const service::Response& response) {
  const auto& run = response.run;
  std::fprintf(stderr,
               "coalesce-client: %s: %llu parallel / %llu sequential roots, "
               "%llu/%llu iterations, %llu dispatch ops, %.3f ms%s%s\n",
               service::to_string(response.status),
               static_cast<unsigned long long>(run.parallel_roots),
               static_cast<unsigned long long>(run.sequential_roots),
               static_cast<unsigned long long>(run.iterations),
               static_cast<unsigned long long>(run.iterations_requested),
               static_cast<unsigned long long>(run.dispatch_ops),
               static_cast<double>(run.wall_ns) / 1e6,
               run.cancelled ? " [cancelled]" : "",
               run.deadline_expired ? " [deadline expired]" : "");
}

int run_single(const Options& options, const service::Request& request) {
  auto socket = connect(options);
  if (!socket.ok()) {
    std::fprintf(stderr, "coalesce-client: %s\n",
                 socket.error().to_string().c_str());
    return 2;
  }
  auto response = service::call(socket.value(), request);
  if (!response.ok()) {
    std::fprintf(stderr, "coalesce-client: %s\n",
                 response.error().to_string().c_str());
    return 3;
  }
  const service::Response& reply = response.value();
  switch (reply.status) {
    case service::Status::kOk:
      if (request.type == service::MessageType::kSubmit) {
        print_summary(reply);
        for (const auto& array : reply.arrays) {
          std::fprintf(stdout, "%s:", array.name.c_str());
          for (const double v : array.data) std::fprintf(stdout, " %g", v);
          std::fputc('\n', stdout);
        }
      } else if (request.type == service::MessageType::kStats) {
        // Same block format as the daemon's shutdown summary, so the two
        // outputs diff cleanly.
        const auto& c = reply.counters;
        std::fprintf(stdout,
                     "counters: connections=%llu accepted=%llu "
                     "completed=%llu rejected=%llu shed=%llu steals=%llu "
                     "queue_depth=%llu imbalance=%.3f steals_p50=%llu "
                     "steals_p99=%llu\n",
                     static_cast<unsigned long long>(c.connections),
                     static_cast<unsigned long long>(c.accepted),
                     static_cast<unsigned long long>(c.completed),
                     static_cast<unsigned long long>(c.rejected),
                     static_cast<unsigned long long>(c.shed),
                     static_cast<unsigned long long>(c.steals),
                     static_cast<unsigned long long>(c.queue_depth),
                     c.mean_imbalance,
                     static_cast<unsigned long long>(c.steals_p50),
                     static_cast<unsigned long long>(c.steals_p99));
      } else if (!reply.message.empty()) {
        std::fprintf(stderr, "coalesce-client: %s\n", reply.message.c_str());
      }
      break;
    case service::Status::kRejected:
      std::fprintf(stderr, "coalesce-client: rejected: %s\n",
                   reply.message.c_str());
      if (!reply.diagnostics.empty()) {
        std::fputs(reply.diagnostics.c_str(), stdout);
        std::fputc('\n', stdout);
      }
      break;
    case service::Status::kShed:
      std::fprintf(stderr, "coalesce-client: shed: %s\n",
                   reply.message.c_str());
      break;
    case service::Status::kError:
      std::fprintf(stderr, "coalesce-client: server error: %s\n",
                   reply.message.c_str());
      break;
  }
  return status_exit_code(reply.status);
}

/// One load-generator connection: `repeat` submissions, per-request
/// latency appended to `latencies_ns` (under `mutex`).
struct LoadCounts {
  std::size_t ok = 0;
  std::size_t rejected = 0;
  std::size_t shed = 0;
  std::size_t errors = 0;
};

void load_worker(const Options& options, const service::Request& request,
                 std::mutex& mutex, std::vector<double>& latencies_ns,
                 LoadCounts& counts) {
  auto socket = connect(options);
  if (!socket.ok()) {
    std::lock_guard<std::mutex> lock(mutex);
    counts.errors += options.repeat;
    return;
  }
  std::vector<double> local;
  LoadCounts local_counts;
  local.reserve(options.repeat);
  for (std::size_t r = 0; r < options.repeat; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    auto response = service::call(socket.value(), request);
    const auto t1 = std::chrono::steady_clock::now();
    if (!response.ok()) {
      ++local_counts.errors;
      continue;
    }
    local.push_back(static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
            .count()));
    switch (response.value().status) {
      case service::Status::kOk: ++local_counts.ok; break;
      case service::Status::kRejected: ++local_counts.rejected; break;
      case service::Status::kShed: ++local_counts.shed; break;
      case service::Status::kError: ++local_counts.errors; break;
    }
  }
  std::lock_guard<std::mutex> lock(mutex);
  latencies_ns.insert(latencies_ns.end(), local.begin(), local.end());
  counts.ok += local_counts.ok;
  counts.rejected += local_counts.rejected;
  counts.shed += local_counts.shed;
  counts.errors += local_counts.errors;
}

double percentile(std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const auto index = static_cast<std::size_t>(
      p * static_cast<double>(sorted.size() - 1));
  return sorted[index];
}

int run_load(const Options& options, const service::Request& request) {
  std::mutex mutex;
  std::vector<double> latencies_ns;
  LoadCounts counts;
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> workers;
  workers.reserve(options.threads);
  for (std::size_t t = 0; t < options.threads; ++t) {
    workers.emplace_back([&] {
      load_worker(options, request, mutex, latencies_ns, counts);
    });
  }
  for (auto& w : workers) w.join();
  const auto t1 = std::chrono::steady_clock::now();
  const double wall_s =
      std::chrono::duration<double>(t1 - t0).count();

  std::sort(latencies_ns.begin(), latencies_ns.end());
  const std::size_t total = options.threads * options.repeat;
  std::fprintf(stdout,
               "coalesce-client: %zu requests (%zu threads x %zu) in %.3f s "
               "(%.1f req/s)\n",
               total, options.threads, options.repeat, wall_s,
               wall_s > 0 ? static_cast<double>(total) / wall_s : 0.0);
  std::fprintf(stdout,
               "  ok=%zu rejected=%zu shed=%zu errors=%zu\n",
               counts.ok, counts.rejected, counts.shed, counts.errors);
  std::fprintf(stdout, "  latency p50=%.3f ms p99=%.3f ms max=%.3f ms\n",
               percentile(latencies_ns, 0.50) / 1e6,
               percentile(latencies_ns, 0.99) / 1e6,
               latencies_ns.empty() ? 0.0 : latencies_ns.back() / 1e6);
  return counts.errors == 0 ? 0 : 3;
}

}  // namespace

int main(int argc, char** argv) {
  Options options;
  if (!parse_args(argc, argv, options)) return usage(argv[0]);
  const int modes = (options.ping ? 1 : 0) + (options.stats ? 1 : 0) +
                    (options.shutdown ? 1 : 0);
  if (modes > 1) return usage(argv[0]);

  service::Request request;
  if (options.ping) {
    request.type = service::MessageType::kPing;
  } else if (options.stats) {
    request.type = service::MessageType::kStats;
  } else if (options.shutdown) {
    request.type = service::MessageType::kShutdown;
  } else {
    auto source = frontend::read_source(options.input_path);
    if (!source.ok()) {
      std::fprintf(stderr, "coalesce-client: %s\n",
                   source.error().to_string().c_str());
      return 2;
    }
    request.type = service::MessageType::kSubmit;
    request.submit.priority = options.priority;
    request.submit.want_data = options.want_data;
    request.submit.deadline_ms = options.deadline_ms;
    request.submit.tenant = options.tenant;
    request.submit.source = std::move(source).value();
    if (!options.schedule.empty()) {
      // Validate locally so a typo fails fast instead of costing a
      // round-trip to be rejected at admission.
      auto parsed = support::parse_schedule(options.schedule);
      if (!parsed.ok()) {
        std::fprintf(stderr, "coalesce-client: %s\n",
                     parsed.error().to_string().c_str());
        return 2;
      }
      request.submit.schedule = options.schedule;
    }
  }

  if (options.threads > 0) {
    if (request.type != service::MessageType::kSubmit) {
      std::fprintf(stderr,
                   "coalesce-client: --threads applies to submissions\n");
      return 2;
    }
    return run_load(options, request);
  }
  return run_single(options, request);
}
