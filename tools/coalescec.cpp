// coalescec — the source-to-source driver.
//
// Reads a program in the textual loop language, runs the requested passes,
// and prints the result. This is the paper's transformation as a standalone
// compiler tool.
//
// Usage:
//   coalescec [options] [file]          (file defaults to stdin)
//
// Options:
//   --stdin            read the program from stdin explicitly (same as
//                      passing "-" or omitting the file argument)
//   --analyze          prove and set DOALL flags (default on; --no-analyze)
//   --make-perfect     distribute loops to maximize perfect bands
//   --coalesce         coalesce every maximal parallel band (default)
//   --guarded          use guarded coalescing (triangular bands allowed);
//                      implies a single top-level loop
//   --collapse=K       partially coalesce only K levels
//   --mixed-radix      use mixed-radix index recovery
//   --expand-scalars   scalar-expand privatizable temporaries first
//   --locality         locality-aware ordering: permute each nest so its
//                      most contiguous axis runs innermost (cost-model
//                      driven, oracle-checked) before coalescing; with
//                      --trace the pool dispatches through the
//                      cache-sharded dispatcher
//   --pin              pin --trace pool workers to CPUs (best-effort;
//                      Linux sched_setaffinity, no-op elsewhere)
//   --jit              execute the transformed program on the thread pool
//                      through the JIT backend (native chunk kernels,
//                      IR-keyed compile cache) instead of the interpreter;
//                      incompatible roots fall back to the interpreter and
//                      the cache stats are printed to stderr. Combines
//                      with --verify and --trace.
//   --emit=ir|c|c-main emit transformed IR (default), a C kernel, or a
//                      standalone C program
//   --openmp           add OpenMP pragmas to emitted C
//   --lint             run coalesce-lint on the parsed program, print the
//                      findings, and exit (1 when any finding is an error)
//   --lint-format=F    lint output format: text (default), json, or sarif
//   --race-check       check the parsed program's doall plan against the
//                      dependence graph (analysis/race.hpp), print the
//                      findings in --lint-format, and exit (1 when any
//                      proven race or exposed scalar is found)
//   --verify-ir        run the structural IR verifier on the parsed program
//                      before any pass; exit 1 on violations
//   --no-verify        disable the post-pass IR verifier and differential
//                      oracle (escape hatch; passes run unchecked)
//   --verify           interpret original and result; fail on divergence
//   --stats            print before/after static metrics to stderr
//   --report           print the dependence/parallelism report to stderr
//   --dot              print the dependence graph (Graphviz) and exit
//   --trace=FILE       execute the transformed program on the thread pool
//                      with event tracing and write a Chrome trace-event
//                      JSON file (open in chrome://tracing). Combined with
//                      --verify, the traced parallel execution is what is
//                      checked against the original's interpretation.
//   --trace-workers=P  worker count for --trace (default: hardware)
//   --schedule=SPEC    schedule for the pool execution path (--trace /
//                      --jit): static-block, static-cyclic, self,
//                      chunked:N, guided, factoring, trapezoid, or auto
//                      (adaptive controller, trained by run feedback);
//                      default guided
//   --trace-summary    also print the per-worker Gantt summary to stderr
//   --deadline-ms=N    give the traced execution a deadline of N ms; on
//                      expiry workers stop at their next chunk grant and
//                      the partial progress is reported (exit 0)
//   --inject-fault=S   arm the deterministic fault harness for the traced
//                      execution. S is throw@K (throw at coalesced
//                      iteration K), stall@W:MS (stall worker W for MS ms),
//                      or cancel@C (cancel at the C-th chunk grant). The
//                      fault is recorded in the trace; an injected throw
//                      exits 3 after writing the trace file.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>

#include "coalesce.hpp"

namespace {

using namespace coalesce;

struct Options {
  bool analyze = true;
  bool make_perfect = false;
  bool do_coalesce = true;
  bool guarded = false;
  std::size_t collapse = 0;
  bool mixed_radix = false;
  bool expand_scalars = false;
  bool locality = false;
  bool pin = false;
  bool jit = false;
  std::string emit = "ir";
  bool openmp = false;
  bool lint = false;
  bool race_check = false;
  std::string lint_format = "text";
  bool verify_ir = false;
  bool post_checks = true;  // --no-verify clears
  bool verify = false;
  bool stats = false;
  bool report = false;
  bool dot = false;
  std::string trace_path;
  std::size_t trace_workers = 0;  // 0: hardware_concurrency
  std::string schedule = "guided";
  bool trace_summary = false;
  long long deadline_ms = 0;  // 0: no deadline
  std::string inject_fault;   // empty: no injected fault
  std::string input_path;
};

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--stdin] [--analyze|--no-analyze] [--make-perfect] "
               "[--coalesce|--no-coalesce] [--guarded] [--collapse=K] "
               "[--mixed-radix] [--expand-scalars] [--locality] [--pin] "
               "[--jit] [--emit=ir|c|c-main] "
               "[--openmp] [--lint] [--race-check] "
               "[--lint-format=text|json|sarif] "
               "[--verify-ir] [--no-verify] [--verify] [--stats] "
               "[--trace=FILE] [--trace-workers=P] [--schedule=SPEC] "
               "[--trace-summary] [--deadline-ms=N] "
               "[--inject-fault=throw@K|stall@W:MS|cancel@C] "
               "[file]\n",
               argv0);
  return 2;
}

bool parse_args(int argc, char** argv, Options& options) {
  for (int a = 1; a < argc; ++a) {
    const std::string arg = argv[a];
    if (arg == "--stdin") options.input_path = "-";
    else if (arg == "--analyze") options.analyze = true;
    else if (arg == "--no-analyze") options.analyze = false;
    else if (arg == "--make-perfect") options.make_perfect = true;
    else if (arg == "--coalesce") options.do_coalesce = true;
    else if (arg == "--no-coalesce") options.do_coalesce = false;
    else if (arg == "--guarded") options.guarded = true;
    else if (arg.rfind("--collapse=", 0) == 0)
      options.collapse = static_cast<std::size_t>(
          std::strtoull(arg.c_str() + 11, nullptr, 10));
    else if (arg == "--mixed-radix") options.mixed_radix = true;
    else if (arg == "--expand-scalars") options.expand_scalars = true;
    else if (arg == "--locality") options.locality = true;
    else if (arg == "--pin") options.pin = true;
    else if (arg == "--jit") options.jit = true;
    else if (arg.rfind("--emit=", 0) == 0) options.emit = arg.substr(7);
    else if (arg == "--openmp") options.openmp = true;
    else if (arg == "--lint") options.lint = true;
    else if (arg == "--race-check") options.race_check = true;
    else if (arg.rfind("--lint-format=", 0) == 0)
      options.lint_format = arg.substr(14);
    else if (arg == "--verify-ir") options.verify_ir = true;
    else if (arg == "--no-verify") options.post_checks = false;
    else if (arg == "--verify") options.verify = true;
    else if (arg == "--stats") options.stats = true;
    else if (arg.rfind("--trace=", 0) == 0) options.trace_path = arg.substr(8);
    else if (arg.rfind("--trace-workers=", 0) == 0)
      options.trace_workers = static_cast<std::size_t>(
          std::strtoull(arg.c_str() + 16, nullptr, 10));
    else if (arg.rfind("--schedule=", 0) == 0)
      options.schedule = arg.substr(11);
    else if (arg == "--trace-summary") options.trace_summary = true;
    else if (arg.rfind("--deadline-ms=", 0) == 0)
      options.deadline_ms = std::strtoll(arg.c_str() + 14, nullptr, 10);
    else if (arg.rfind("--inject-fault=", 0) == 0)
      options.inject_fault = arg.substr(15);
    else if (arg == "--report") options.report = true;
    else if (arg == "--dot") options.dot = true;
    else if (arg != "-" && !arg.empty() && arg[0] == '-') return false;
    else options.input_path = arg;
  }
  if (options.lint_format != "text" && options.lint_format != "json" &&
      options.lint_format != "sarif") {
    return false;
  }
  return options.emit == "ir" || options.emit == "c" ||
         options.emit == "c-main";
}

/// Parses throw@K | stall@W:MS | cancel@C into the plan's config fields.
bool parse_fault_spec(const std::string& spec,
                      runtime::fault::FaultPlan& plan) {
  const auto at = spec.find('@');
  if (at == std::string::npos || at + 1 >= spec.size()) return false;
  const std::string kind = spec.substr(0, at);
  const std::string rest = spec.substr(at + 1);
  char* end = nullptr;
  if (kind == "throw") {
    plan.throw_at_iteration = std::strtoll(rest.c_str(), &end, 10);
    return *end == '\0' && plan.throw_at_iteration >= 1;
  }
  if (kind == "stall") {
    plan.stall_worker = std::strtoll(rest.c_str(), &end, 10);
    if (end == nullptr || *end != ':') return false;
    const long long ms = std::strtoll(end + 1, &end, 10);
    plan.stall_ns = ms * 1'000'000;
    return *end == '\0' && plan.stall_worker >= 0 && ms >= 1;
  }
  if (kind == "cancel") {
    plan.cancel_at_chunk = std::strtoll(rest.c_str(), &end, 10);
    return *end == '\0' && plan.cancel_at_chunk >= 1;
  }
  return false;
}

std::string read_input(const Options& options) {
  auto source = frontend::read_source(options.input_path);
  if (!source.ok()) {
    std::fprintf(stderr, "coalescec: %s\n",
                 source.error().to_string().c_str());
    std::exit(1);
  }
  return std::move(source).value();
}

void print_stats(const char* label, const ir::Program& program) {
  transform::NestStats total;
  for (const auto& root : program.roots) {
    const auto s =
        transform::try_compute_stats(ir::LoopNest{program.symbols, root});
    if (!s.has_value()) {
      std::fprintf(stderr,
                   "%s: (dynamic counts unavailable: non-constant bounds)\n",
                   label);
      return;
    }
    total.loops += s->loops;
    total.parallel_loops += s->parallel_loops;
    total.fork_join_points += s->fork_join_points;
    total.loop_iterations += s->loop_iterations;
    total.assignment_instances += s->assignment_instances;
    total.division_ops += s->division_ops;
  }
  std::fprintf(stderr,
               "%s: roots=%zu loops=%zu doall=%zu fork/joins=%llu "
               "iterations=%llu divisions=%llu\n",
               label, program.roots.size(), total.loops,
               total.parallel_loops,
               static_cast<unsigned long long>(total.fork_join_points),
               static_cast<unsigned long long>(total.loop_iterations),
               static_cast<unsigned long long>(total.division_ops));
}

}  // namespace

int main(int argc, char** argv) {
  Options options;
  if (!parse_args(argc, argv, options)) return usage(argv[0]);
  if (const auto spec = support::parse_schedule(options.schedule);
      !spec.ok()) {
    std::fprintf(stderr, "coalescec: %s\n", spec.error().to_string().c_str());
    return 2;
  }
  if ((options.deadline_ms > 0 || !options.inject_fault.empty()) &&
      options.trace_path.empty()) {
    std::fprintf(stderr,
                 "coalescec: --deadline-ms / --inject-fault apply to the "
                 "pool execution path; combine them with --trace=FILE\n");
    return 2;
  }

  const std::string source = read_input(options);
  auto parsed = frontend::parse_program(source);
  if (!parsed.ok()) {
    std::fprintf(stderr, "coalescec: parse error: %s\n",
                 parsed.error().to_string().c_str());
    return 1;
  }
  ir::Program original = std::move(parsed).value();

  if (!options.post_checks) {
    transform::set_post_verify(false);
    transform::set_differential_oracle(false);
  }

  if (options.verify_ir) {
    const auto issues = ir::verify_program(original);
    for (const auto& issue : issues) {
      std::fprintf(stderr, "coalescec: verify: %s\n",
                   ir::to_string(issue).c_str());
    }
    if (!issues.empty()) return 1;
  }

  if (options.lint) {
    const auto diags = analysis::lint_program(original);
    const std::string file = frontend::source_name(options.input_path);
    if (options.lint_format == "json") {
      std::fputs(analysis::render_json(diags).c_str(), stdout);
    } else if (options.lint_format == "sarif") {
      std::fputs(analysis::render_sarif(diags, file).c_str(), stdout);
    } else {
      std::fputs(analysis::render_text(diags, file).c_str(), stdout);
    }
    return analysis::has_errors(diags) ? 1 : 0;
  }

  if (options.race_check) {
    // The race detector reads the *planned* flags of the program as written;
    // it runs before --analyze could overwrite them with proven verdicts.
    const auto issues = ir::verify_program(original);
    if (!issues.empty()) {
      for (const auto& issue : issues) {
        std::fprintf(stderr, "coalescec: verify: %s\n",
                     ir::to_string(issue).c_str());
      }
      return 1;
    }
    const auto diags = analysis::race_diagnostics(original);
    const std::string file = frontend::source_name(options.input_path);
    if (options.lint_format == "json") {
      std::fputs(analysis::render_json(diags).c_str(), stdout);
    } else if (options.lint_format == "sarif") {
      std::fputs(analysis::render_sarif(diags, file).c_str(), stdout);
    } else {
      std::fputs(analysis::render_text(diags, file).c_str(), stdout);
    }
    return analysis::has_errors(diags) ? 1 : 0;
  }

  if (options.dot) {
    for (const auto& root : original.roots) {
      std::fputs(analysis::dependence_graph_dot(
                     ir::LoopNest{original.symbols, root})
                     .c_str(),
                 stdout);
    }
    return 0;
  }

  // Passes operate root-by-root over the program.
  ir::Program current{original.symbols, {}};
  for (const auto& root : original.roots) {
    current.roots.push_back(ir::clone(*root));
  }

  auto per_root = [&](auto&& fn) -> bool {
    ir::Program next{current.symbols, {}};
    for (const auto& root : current.roots) {
      if (!fn(ir::LoopNest{current.symbols, root}, next)) return false;
    }
    current = std::move(next);
    return true;
  };

  if (options.analyze) {
    per_root([&](ir::LoopNest nest, ir::Program& next) {
      const auto report = analysis::analyze_and_mark(nest);
      if (options.report) {
        std::fputs(analysis::render_report(nest, report).c_str(), stderr);
        std::fputs(analysis::render_report(
                       nest, analysis::analyze_with_reductions(nest))
                       .c_str(),
                   stderr);
      }
      next.symbols = std::move(nest.symbols);
      next.roots.push_back(nest.root);
      return true;
    });
  }

  if (options.expand_scalars) {
    if (!per_root([&](ir::LoopNest nest, ir::Program& next) {
          auto expanded = transform::expand_all_scalars(nest);
          if (!expanded.ok()) {
            std::fprintf(stderr, "coalescec: %s\n",
                         expanded.error().to_string().c_str());
            return false;
          }
          next.symbols = std::move(expanded.value().nest.symbols);
          next.roots.push_back(expanded.value().nest.root);
          return true;
        })) {
      return 1;
    }
  }

  if (options.make_perfect) {
    ir::Program next{current.symbols, {}};
    for (const auto& root : current.roots) {
      auto program =
          transform::make_perfect(ir::LoopNest{next.symbols, root});
      if (!program.ok()) {
        std::fprintf(stderr, "coalescec: %s\n",
                     program.error().to_string().c_str());
        return 1;
      }
      next.symbols = std::move(program.value().symbols);
      for (auto& piece : program.value().roots) {
        next.roots.push_back(std::move(piece));
      }
    }
    current = std::move(next);
  }

  if (options.locality) {
    // Locality stage: reorder each nest so its most contiguous axis runs
    // innermost BEFORE coalescing fixes the dispatch order. DOALL flags are
    // re-proved for the permuted order so coalescing sees fresh marks.
    per_root([&](ir::LoopNest nest, ir::Program& next) {
      ir::LoopNest permuted = codegen::permute_for_locality(nest);
      if (options.analyze) analysis::analyze_and_mark(permuted);
      next.symbols = std::move(permuted.symbols);
      next.roots.push_back(permuted.root);
      return true;
    });
  }

  if (options.do_coalesce) {
    transform::CoalesceOptions copts;
    copts.levels = options.collapse;
    copts.recovery = options.mixed_radix
                         ? transform::RecoveryStyle::kMixedRadix
                         : transform::RecoveryStyle::kPaperClosedForm;
    if (options.guarded) {
      if (current.roots.size() != 1) {
        std::fprintf(stderr,
                     "coalescec: --guarded requires one top-level loop\n");
        return 1;
      }
      auto result = transform::coalesce_guarded(
          ir::LoopNest{current.symbols, current.roots[0]}, copts);
      if (!result.ok()) {
        std::fprintf(stderr, "coalescec: %s\n",
                     result.error().to_string().c_str());
        return 1;
      }
      current.symbols = std::move(result.value().nest.symbols);
      current.roots = {result.value().nest.root};
    } else {
      const auto result = transform::coalesce_program(current, copts);
      current = ir::Program{result.program.symbols, result.program.roots};
    }
  }

  const bool tracing = !options.trace_path.empty();
  if (options.verify || tracing || options.jit) {
    // Verify root-for-root is impossible after make_perfect; run both whole
    // programs and compare final array contents. The transformed program
    // runs through the sequential interpreter, or — with --trace / --jit —
    // on the thread pool, so the trace (and the JIT kernels) show the
    // execution --verify actually checks.
    ir::Evaluator eval_a(original.symbols);
    for (const auto& root : original.roots) eval_a.run(*root);

    ir::ArrayStore store_b(current.symbols);
    bool partial = false;  // stopped early: skip the equivalence check
    if (tracing || options.jit) {
      runtime::RunControl control;
      if (options.deadline_ms > 0) {
        control.deadline = support::Deadline::after_ms(options.deadline_ms);
      }
      runtime::fault::FaultPlan plan;
      if (!options.inject_fault.empty()) {
        if (!runtime::fault::kEnabled) {
          std::fprintf(stderr,
                       "coalescec: --inject-fault requires a build with "
                       "COALESCE_ENABLE_FAULTS=ON\n");
          return 2;
        }
        if (!parse_fault_spec(options.inject_fault, plan)) {
          std::fprintf(stderr,
                       "coalescec: bad --inject-fault spec '%s' "
                       "(throw@K | stall@W:MS | cancel@C)\n",
                       options.inject_fault.c_str());
          return 2;
        }
        plan.install();
      }
      trace::Recorder recorder;
      if (tracing) recorder.install();
      std::string failure;
      {
        const std::size_t workers =
            options.trace_workers > 0
                ? options.trace_workers
                : std::max(1u, std::thread::hardware_concurrency());
        runtime::ThreadPool pool(workers, options.pin);
        auto parsed_schedule = support::parse_schedule(options.schedule);
        if (!parsed_schedule.ok()) {
          std::fprintf(stderr, "coalescec: %s\n",
                       parsed_schedule.error().to_string().c_str());
          return 2;
        }
        runtime::ScheduleParams schedule = parsed_schedule.value();
        schedule.sharded = options.locality;
        try {
          const auto stats = runtime::execute_program(
              pool, current, schedule, store_b, control,
              options.jit ? runtime::ExecMode::kJit
                          : runtime::ExecMode::kInterpret);
          if (!stats.ok()) {
            std::fprintf(stderr, "coalescec: %s\n",
                         stats.error().to_string().c_str());
            return 1;
          }
          std::fprintf(stderr,
                       "coalescec: traced %llu parallel / %llu sequential "
                       "roots, %llu iterations, %llu dispatch ops on %zu "
                       "workers\n",
                       static_cast<unsigned long long>(stats.value().parallel_roots),
                       static_cast<unsigned long long>(stats.value().sequential_roots),
                       static_cast<unsigned long long>(stats.value().iterations),
                       static_cast<unsigned long long>(stats.value().dispatch_ops),
                       workers);
          if (stats.value().cancelled) {
            std::fprintf(stderr,
                         "coalescec: execution cancelled after %llu "
                         "iterations (partial results)\n",
                         static_cast<unsigned long long>(
                             stats.value().iterations));
            partial = true;
          }
          if (stats.value().deadline_expired) {
            std::fprintf(stderr,
                         "coalescec: deadline (%lld ms) expired after %llu "
                         "iterations (partial results)\n",
                         options.deadline_ms,
                         static_cast<unsigned long long>(
                             stats.value().iterations));
            partial = true;
          }
        } catch (const std::exception& e) {
          // The executor rethrows the first body exception at the join
          // point; the pool is already drained, so the trace can still be
          // written below.
          failure = e.what();
        }
      }  // pool joins before the recorder is read
      plan.uninstall();
      recorder.uninstall();
      if (options.jit) {
        const auto jit_stats = codegen::default_jit_cache().stats();
        std::fprintf(stderr,
                     "coalescec: jit: compiles=%llu hits=%llu failures=%llu "
                     "entries=%zu\n",
                     static_cast<unsigned long long>(jit_stats.compiles),
                     static_cast<unsigned long long>(jit_stats.hits),
                     static_cast<unsigned long long>(jit_stats.failures),
                     jit_stats.entries);
      }
      if (tracing) {
        std::ofstream out(options.trace_path);
        if (!out) {
          std::fprintf(stderr, "coalescec: cannot write %s\n",
                       options.trace_path.c_str());
          return 1;
        }
        trace::write_chrome_trace(recorder, out);
        std::fprintf(stderr, "coalescec: wrote trace to %s\n",
                     options.trace_path.c_str());
        if (options.trace_summary) {
          std::fputs(trace::worker_summary(recorder).c_str(), stderr);
        }
      }
      if (!failure.empty()) {
        std::fprintf(stderr, "coalescec: execution failed: %s\n",
                     failure.c_str());
        return 3;
      }
    } else {
      ir::Evaluator eval_b(current.symbols);
      for (const auto& root : current.roots) eval_b.run(*root);
      store_b = std::move(eval_b.store());
    }

    if (options.verify && partial) {
      std::fprintf(stderr,
                   "coalescec: skipping verification (execution stopped "
                   "early; results are partial)\n");
    } else if (options.verify) {
      for (std::uint32_t raw = 0; raw < original.symbols.size(); ++raw) {
        const ir::VarId id{raw};
        if (original.symbols.kind(id) != ir::SymbolKind::kArray) continue;
        const auto other = current.symbols.lookup(original.symbols.name(id));
        if (!other.has_value()) {
          std::fprintf(stderr, "coalescec: verification lost array %s\n",
                       original.symbols.name(id).c_str());
          return 1;
        }
        const auto da = eval_a.store().data(id);
        const auto db = store_b.data(*other);
        if (!std::equal(da.begin(), da.end(), db.begin(), db.end())) {
          std::fprintf(stderr, "coalescec: VERIFICATION FAILED on %s\n",
                       original.symbols.name(id).c_str());
          return 1;
        }
      }
      std::fprintf(stderr, "coalescec: verified equivalent\n");
    }
  }

  if (options.stats) {
    print_stats("before", original);
    print_stats("after", current);
  }

  if (options.emit == "ir") {
    std::fputs(frontend::declarations_to_string(current.symbols).c_str(),
               stdout);
    for (const auto& root : current.roots) {
      std::fputs(ir::to_string(*root, current.symbols).c_str(), stdout);
    }
  } else {
    codegen::EmitOptions emit;
    emit.openmp = options.openmp;
    emit.standalone_main = options.emit == "c-main";
    std::fputs(codegen::emit_c_program(current, emit).c_str(), stdout);
  }
  return 0;
}
