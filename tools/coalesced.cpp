// coalesced — the persistent loop-program service daemon.
//
// Accepts framed .loop submissions over a Unix-domain socket (and
// optionally loopback TCP), admission-checks each one (parse + IR verify +
// coalesce-lint), and schedules the survivors through one shared Engine.
// See docs/SERVICE.md for the protocol and coalesce-client for the
// matching CLI.
//
// Usage:
//   coalesced --socket=PATH [options]
//
// Options:
//   --socket=PATH        Unix-domain socket to listen on (unlinked on exit)
//   --tcp=PORT           also listen on loopback TCP (0 = ephemeral; the
//                        bound port is printed at startup)
//   --workers=N          engine worker threads (default: hardware)
//   --queue=N            engine region-queue capacity (default 64); a full
//                        queue sheds new submissions instead of buffering
//   --tenant-quota=N     max in-flight submissions per tenant (default 8)
//   --diag-format=F      rejection diagnostics format: json (default)|sarif
//   --schedule=SPEC      schedule for every parallel root (static-block,
//                        static-cyclic, self, chunked:N, guided, factoring,
//                        trapezoid, auto; default guided); a per-request
//                        schedule in the submission overrides it
//   --auto-schedule      shorthand for --schedule=auto: resolve every root
//                        through the engine's adaptive controller, which
//                        learns per-shape schedules from run feedback
//   --locality           locality-aware execution: permute admitted nests
//                        for contiguity before coalescing and dispatch
//                        through the cache-sharded dispatcher
//   --jit                execute parallel roots through the JIT backend
//                        (native chunk kernels, IR-keyed compile cache);
//                        falls back to the interpreter per root when the
//                        nest is incompatible or no compiler is on PATH
//   --pin                pin engine workers to CPUs (best-effort; Linux
//                        sched_setaffinity, no-op elsewhere)
//   --pidfile=PATH       write the daemon pid to PATH (removed on exit)
//
// Shutdown: SIGINT/SIGTERM or a kShutdown frame. Either way the daemon
// finishes in-flight programs, drains the engine, prints a counters
// summary to stderr, and exits 0.
#include <unistd.h>

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "coalesce.hpp"

namespace {

using namespace coalesce;

volatile std::sig_atomic_t g_signal = 0;

void on_signal(int sig) { g_signal = sig; }

struct Options {
  std::string socket_path;
  bool tcp = false;
  std::uint16_t tcp_port = 0;
  std::size_t workers = 0;
  std::size_t queue = 64;
  std::size_t tenant_quota = 8;
  std::string diag_format = "json";
  std::string schedule;
  bool auto_schedule = false;
  bool locality = false;
  bool jit = false;
  bool pin = false;
  std::string pidfile;
};

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --socket=PATH [--tcp=PORT] [--workers=N] "
               "[--queue=N] [--tenant-quota=N] [--diag-format=json|sarif] "
               "[--schedule=SPEC] [--auto-schedule] "
               "[--locality] [--jit] [--pin] [--pidfile=PATH]\n",
               argv0);
  return 2;
}

bool parse_size(const std::string& text, std::size_t* out) {
  char* end = nullptr;
  const unsigned long long v = std::strtoull(text.c_str(), &end, 10);
  if (end == text.c_str() || *end != '\0') return false;
  *out = static_cast<std::size_t>(v);
  return true;
}

bool parse_args(int argc, char** argv, Options& options) {
  for (int a = 1; a < argc; ++a) {
    const std::string arg = argv[a];
    if (arg.rfind("--socket=", 0) == 0) {
      options.socket_path = arg.substr(9);
    } else if (arg.rfind("--tcp=", 0) == 0) {
      std::size_t port = 0;
      if (!parse_size(arg.substr(6), &port) || port > 65535) return false;
      options.tcp = true;
      options.tcp_port = static_cast<std::uint16_t>(port);
    } else if (arg.rfind("--workers=", 0) == 0) {
      if (!parse_size(arg.substr(10), &options.workers)) return false;
    } else if (arg.rfind("--queue=", 0) == 0) {
      if (!parse_size(arg.substr(8), &options.queue) || options.queue == 0)
        return false;
    } else if (arg.rfind("--tenant-quota=", 0) == 0) {
      if (!parse_size(arg.substr(15), &options.tenant_quota)) return false;
    } else if (arg.rfind("--diag-format=", 0) == 0) {
      options.diag_format = arg.substr(14);
      if (options.diag_format != "json" && options.diag_format != "sarif")
        return false;
    } else if (arg.rfind("--schedule=", 0) == 0) {
      options.schedule = arg.substr(11);
    } else if (arg == "--auto-schedule") {
      options.auto_schedule = true;
    } else if (arg == "--locality") {
      options.locality = true;
    } else if (arg == "--jit") {
      options.jit = true;
    } else if (arg == "--pin") {
      options.pin = true;
    } else if (arg.rfind("--pidfile=", 0) == 0) {
      options.pidfile = arg.substr(10);
    } else {
      return false;
    }
  }
  return !options.socket_path.empty() || options.tcp;
}

}  // namespace

int main(int argc, char** argv) {
  Options options;
  if (!parse_args(argc, argv, options)) return usage(argv[0]);

  service::ServerOptions server_options;
  server_options.unix_path = options.socket_path;
  server_options.tcp = options.tcp;
  server_options.tcp_port = options.tcp_port;
  server_options.engine_workers = options.workers;
  server_options.queue_capacity = options.queue;
  server_options.tenant_quota = options.tenant_quota;
  server_options.diagnostics = options.diag_format == "sarif"
                                   ? service::DiagnosticsFormat::kSarif
                                   : service::DiagnosticsFormat::kJson;
  server_options.locality = options.locality;
  server_options.jit = options.jit;
  server_options.pin_workers = options.pin;
  server_options.auto_schedule = options.auto_schedule;
  if (!options.schedule.empty()) {
    auto parsed = support::parse_schedule(options.schedule);
    if (!parsed.ok()) {
      std::fprintf(stderr, "coalesced: %s\n",
                   parsed.error().to_string().c_str());
      return 2;
    }
    if (parsed.value().kind == runtime::Schedule::kAuto) {
      server_options.auto_schedule = true;
    } else {
      server_options.schedule = parsed.value();
    }
  }

  auto server = service::Server::create(std::move(server_options));
  if (!server.ok()) {
    std::fprintf(stderr, "coalesced: %s\n",
                 server.error().to_string().c_str());
    return 1;
  }

  if (!options.pidfile.empty()) {
    std::FILE* pid = std::fopen(options.pidfile.c_str(), "w");
    if (pid == nullptr) {
      std::fprintf(stderr, "coalesced: cannot write pidfile %s\n",
                   options.pidfile.c_str());
      return 1;
    }
    std::fprintf(pid, "%ld\n", static_cast<long>(::getpid()));
    std::fclose(pid);
  }

  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);
  std::signal(SIGPIPE, SIG_IGN);

  service::Server& daemon = *server.value();
  daemon.start();
  if (!daemon.unix_path().empty()) {
    std::fprintf(stdout, "coalesced: listening on %s\n",
                 daemon.unix_path().c_str());
  }
  if (options.tcp) {
    std::fprintf(stdout, "coalesced: listening on tcp 127.0.0.1:%u\n",
                 static_cast<unsigned>(daemon.tcp_port()));
  }
  std::fprintf(stdout, "coalesced: %zu engine workers, queue %zu, "
               "tenant quota %zu\n",
               daemon.engine_workers(), options.queue, options.tenant_quota);
  std::fflush(stdout);

  // The stop request can come from a kShutdown frame (daemon.wait_for_stop
  // sees it) or from a signal (g_signal); poll both.
  for (;;) {
    if (daemon.wait_for_stop(200)) break;
    if (g_signal != 0) {
      std::fprintf(stderr, "coalesced: caught signal %d, shutting down\n",
                   static_cast<int>(g_signal));
      daemon.request_stop();
      break;
    }
  }
  daemon.stop();

  // Same block format as coalesce-client --stats, so logs diff cleanly.
  const auto counters = daemon.counters();
  std::fprintf(stderr,
               "coalesced: counters: connections=%llu accepted=%llu "
               "completed=%llu rejected=%llu shed=%llu steals=%llu "
               "queue_depth=%llu imbalance=%.3f steals_p50=%llu "
               "steals_p99=%llu\n",
               static_cast<unsigned long long>(counters.connections),
               static_cast<unsigned long long>(counters.accepted),
               static_cast<unsigned long long>(counters.completed),
               static_cast<unsigned long long>(counters.rejected),
               static_cast<unsigned long long>(counters.shed),
               static_cast<unsigned long long>(counters.steals),
               static_cast<unsigned long long>(counters.queue_depth),
               counters.mean_imbalance,
               static_cast<unsigned long long>(counters.steals_p50),
               static_cast<unsigned long long>(counters.steals_p99));
  if (options.jit) {
    const auto jit = codegen::default_jit_cache().stats();
    std::fprintf(stderr,
                 "coalesced: jit: compiles=%llu hits=%llu failures=%llu "
                 "entries=%zu\n",
                 static_cast<unsigned long long>(jit.compiles),
                 static_cast<unsigned long long>(jit.hits),
                 static_cast<unsigned long long>(jit.failures),
                 jit.entries);
  }

  if (!options.pidfile.empty()) std::remove(options.pidfile.c_str());
  return 0;
}
