#!/usr/bin/env sh
# Regenerates the golden C-emission snapshots in tests/golden/ from
# examples/loops/. Run after an intentional emitter change, then review the
# diff — the snapshots are the reviewable artifact of the change.
#
# Usage: tools/regen_golden.sh [path/to/coalescec]
set -eu

root="$(cd "$(dirname "$0")/.." && pwd)"
coalescec="${1:-$root/build/tools/coalescec}"

if [ ! -x "$coalescec" ]; then
  echo "regen_golden: coalescec not found at $coalescec" >&2
  echo "regen_golden: build first, or pass the binary path" >&2
  exit 1
fi

mkdir -p "$root/tests/golden"
for loop in "$root"/examples/loops/*.loop; do
  name="$(basename "$loop" .loop)"
  # Parse-only emission: no analysis, no coalescing — golden_test.cpp
  # emits the same way (emit_c_program on the parsed program).
  "$coalescec" --no-analyze --no-coalesce --emit=c-main "$loop" \
    > "$root/tests/golden/$name.expected.c"
  echo "regenerated tests/golden/$name.expected.c"
done
